"""Frame sources: where an unbounded detector stream comes from.

A *frame* is one temporal variant — an array of ``coord_shape`` pixels
(scalar, vector, or 2-D image).  A source hands out frames in chunks of
``(k,) + coord_shape`` via :meth:`FrameSource.read`; an empty return
means the stream is exhausted (a source constructed with
``n_frames=None`` never is).

The load-bearing contract shared by every source: **the frame sequence
is a function of the frame index alone**, never of the chunk sizes the
consumer happened to read with.  Stateful randomness is derived per
frame from ``SeedSequence(entropy=seed, spawn_key=(i,))`` — the same
spawn-tree children the trial runtime uses — so ``read(1)`` a thousand
times and ``read(1000)`` once produce bit-identical frames, and a
checkpointed source can resume mid-stream from nothing but its saved
state.

Three sources cover the paper's workload shapes:

* :class:`SyntheticWalkSource` — the Eq. (1) Gaussian random walk,
  one step per frame (the NGST temporal-variant model, unbounded).
* :class:`ArraySource` — replay of an in-memory stack or an ``.npy`` /
  ``.npz`` file (``.npy`` is memory-mapped, keeping replay O(chunk)).
* :class:`DownlinkSource` — an adapter that pushes each frame of an
  inner source through the packetised CRC/ARQ downlink of
  :mod:`repro.ngst.downlink`, so transport artefacts (including the
  rare undetected CRC escapes) appear inline in the stream.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.config import NGSTDatasetConfig
from repro.data.ngst import U16_MAX
from repro.exceptions import ConfigurationError, DataFormatError
from repro.ngst.downlink import ARQDownlink, DownlinkConfig
from repro.stream.buffer import BackpressurePolicy, RingBuffer
from repro.stream.checkpoint import decode_array, encode_array


def frame_rng(seed: int, index: int) -> np.random.Generator:
    """The per-frame Generator: child *index* of the seed's spawn tree.

    ``SeedSequence(entropy=seed, spawn_key=(index,))`` is exactly the
    ``index``-th child ``SeedSequence(seed).spawn(...)`` would produce,
    but constructed directly so a resumed stream can jump to any frame
    without replaying the spawn sequence.
    """
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


class FrameSource:
    """Base class for frame sources.

    Subclasses must set ``coord_shape`` (the per-frame shape) and
    ``dtype``, and implement :meth:`_read` plus exact
    :meth:`state_dict` / :meth:`load_state` round-trips.
    """

    coord_shape: tuple[int, ...]
    dtype: np.dtype

    def read(self, k: int) -> np.ndarray:
        """Return the next ``m <= k`` frames as ``(m,) + coord_shape``.

        ``m == 0`` signals exhaustion.  ``k`` must be >= 1.
        """
        if k < 1:
            raise ConfigurationError(f"read size must be >= 1, got {k}")
        return self._read(int(k))

    def _read(self, k: int) -> np.ndarray:
        raise NotImplementedError

    def _empty(self) -> np.ndarray:
        return np.empty((0,) + self.coord_shape, dtype=self.dtype)

    def state_dict(self) -> dict:
        raise NotImplementedError

    def load_state(self, state: dict) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable identity (also used in checkpoint fingerprints)."""
        return type(self).__name__


def read_all(source: FrameSource, read_chunk: int = 4096) -> np.ndarray:
    """Materialize a finite source into one ``(T,) + coord_shape`` stack.

    This is the batch side of the streaming-equals-batch contract: the
    property tests stream one source instance chunk by chunk and
    ``read_all`` a freshly constructed twin, then require bit-identical
    results.  Unbounded sources never return an empty chunk, so calling
    this on one would spin forever — guard with ``n_frames``.
    """
    chunks = []
    while True:
        chunk = source.read(read_chunk)
        if chunk.shape[0] == 0:
            break
        chunks.append(chunk)
    if not chunks:
        return source._empty()
    return np.concatenate(chunks, axis=0)


class SyntheticWalkSource(FrameSource):
    """Unbounded Eq. (1) Gaussian-random-walk frames (§2.2.1).

    Every coordinate runs an independent walk ``Π(i+1) = Π(i) + Θᵢ``
    with ``Θᵢ ~ N(0, σ)``; the float64 walk state is kept unclipped
    (matching :func:`repro.data.ngst.generate_walk`) and each emitted
    frame is the state rounded and clipped into the uint16 range.  The
    step of frame *i* is drawn from :func:`frame_rng` child *i*, which
    makes the stream chunk-invariant and the source resumable from a
    checkpointed ``(index, walk-state)`` pair.

    Args:
        shape: coordinate shape of each frame (``()`` for a scalar pixel).
        config: walk parameters (σ, initial value, background floor).
        seed: root entropy of the per-frame spawn tree.
        n_frames: total frames to emit, or ``None`` for an unbounded
            stream.
    """

    def __init__(
        self,
        shape: tuple[int, ...] = (),
        config: NGSTDatasetConfig | None = None,
        seed: int = 0,
        n_frames: int | None = None,
    ) -> None:
        if n_frames is not None and n_frames < 1:
            raise ConfigurationError(f"n_frames must be >= 1, got {n_frames}")
        self.shape = tuple(int(s) for s in shape)
        self.config = config or NGSTDatasetConfig()
        self.seed = int(seed)
        self.n_frames = n_frames
        self.coord_shape = self.shape
        self.dtype = np.dtype(np.uint16)
        self._next = 0
        self._walk: np.ndarray | None = None

    def _read(self, k: int) -> np.ndarray:
        if self.n_frames is not None:
            k = min(k, self.n_frames - self._next)
            if k <= 0:
                return self._empty()
        cfg = self.config
        out = np.empty((k,) + self.shape, dtype=np.uint16)
        for j in range(k):
            index = self._next + j
            if index == 0:
                self._walk = np.full(
                    self.shape, float(cfg.initial_value), dtype=np.float64
                )
            else:
                step = frame_rng(self.seed, index).normal(0.0, cfg.sigma, self.shape)
                assert self._walk is not None
                self._walk = self._walk + step
            out[j] = np.clip(
                np.rint(self._walk), cfg.background_floor, U16_MAX
            ).astype(np.uint16)
        self._next += k
        return out

    def state_dict(self) -> dict:
        return {
            "next": self._next,
            "walk": None if self._walk is None else encode_array(self._walk),
        }

    def load_state(self, state: dict) -> None:
        self._next = int(state["next"])
        self._walk = None if state["walk"] is None else decode_array(state["walk"])

    def describe(self) -> str:
        return (
            f"walk(shape={self.shape}, sigma={self.config.sigma}, "
            f"init={self.config.initial_value}, floor={self.config.background_floor}, "
            f"seed={self.seed}, n={self.n_frames})"
        )


class ArraySource(FrameSource):
    """Replay the frames of an in-memory stack or an ``.npy``/``.npz`` file.

    Args:
        frames: array of shape ``(T,) + coord_shape``; axis 0 is the
            frame axis.
        label: identity used in :meth:`describe` (defaults to the array
            shape; :meth:`from_file` sets the file path).
    """

    def __init__(self, frames: np.ndarray, label: str | None = None) -> None:
        frames = np.asarray(frames)
        if frames.ndim < 1:
            raise DataFormatError("frames must have a leading frame axis")
        self._frames = frames
        self._pos = 0
        self.coord_shape = frames.shape[1:]
        self.dtype = frames.dtype
        self._label = label or f"array{tuple(frames.shape)}"

    @classmethod
    def from_file(cls, path: "str | Path", key: str = "frames") -> "ArraySource":
        """Open an ``.npy`` (memory-mapped) or ``.npz`` (by *key*) replay.

        Memory-mapping keeps an ``.npy`` replay's resident footprint at
        O(chunk): frames are paged in as :meth:`read` copies them out.
        """
        path = Path(path)
        if path.suffix == ".npz":
            with np.load(path) as archive:
                if key not in archive.files:
                    raise DataFormatError(
                        f"{path} has no array {key!r} (found {archive.files})"
                    )
                frames = archive[key]
        else:
            frames = np.load(path, mmap_mode="r")
        return cls(frames, label=f"file({path.name}:{key})")

    def _read(self, k: int) -> np.ndarray:
        chunk = np.asarray(self._frames[self._pos : self._pos + k]).copy()
        self._pos += chunk.shape[0]
        return chunk

    def state_dict(self) -> dict:
        return {"pos": self._pos}

    def load_state(self, state: dict) -> None:
        self._pos = int(state["pos"])

    def describe(self) -> str:
        return self._label


class LimitedSource(FrameSource):
    """Bound an inner source by frame count and/or wall-clock budget.

    Both bounds end the stream *cleanly* — :meth:`read` returns an
    empty chunk, so the pipeline flushes its stages and reports
    ``completed=True`` — which is what demos and load tests over an
    otherwise unbounded :class:`SyntheticWalkSource` need to terminate
    deterministically without killing the process (contrast
    ``limit_chunks``, which pauses mid-stream for a later resume).

    The frame bound is part of the stream's semantics (it decides where
    the stream *ends*) and therefore appears in :meth:`describe`; the
    time bound is a wall-clock property of one process and deliberately
    does not — a resumed run gets a fresh budget.

    Args:
        inner: the source being bounded.
        max_frames: total frames to deliver, or ``None`` for no frame
            bound.
        max_seconds: wall-clock budget measured from the first read, or
            ``None`` for no time bound.
        clock: monotonic time function (injectable for tests).
    """

    def __init__(
        self,
        inner: FrameSource,
        max_frames: int | None = None,
        max_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_frames is None and max_seconds is None:
            raise ConfigurationError(
                "LimitedSource needs max_frames and/or max_seconds"
            )
        if max_frames is not None and max_frames < 1:
            raise ConfigurationError(f"max_frames must be >= 1, got {max_frames}")
        if max_seconds is not None and max_seconds <= 0:
            raise ConfigurationError(f"max_seconds must be > 0, got {max_seconds}")
        self.inner = inner
        self.max_frames = None if max_frames is None else int(max_frames)
        self.max_seconds = None if max_seconds is None else float(max_seconds)
        self.clock = clock
        self.coord_shape = inner.coord_shape
        self.dtype = inner.dtype
        self._delivered = 0
        self._started_at: float | None = None

    def _read(self, k: int) -> np.ndarray:
        if self._started_at is None:
            self._started_at = self.clock()
        if (
            self.max_seconds is not None
            and self.clock() - self._started_at >= self.max_seconds
        ):
            return self._empty()
        if self.max_frames is not None:
            k = min(k, self.max_frames - self._delivered)
            if k <= 0:
                return self._empty()
        chunk = self.inner.read(k)
        self._delivered += chunk.shape[0]
        return chunk

    def state_dict(self) -> dict:
        return {"delivered": self._delivered, "inner": self.inner.state_dict()}

    def load_state(self, state: dict) -> None:
        self._delivered = int(state["delivered"])
        self.inner.load_state(state["inner"])

    def describe(self) -> str:
        return f"limited({self.inner.describe()}, max_frames={self.max_frames})"


class PushFrameSource(FrameSource):
    """Frames arrive by push; :meth:`read` serves the buffer, never blocks.

    The serve layer's ingest substrate: a network handler calls
    :meth:`push` with whatever a client delivered, and the pipeline
    drains full transport chunks via ``step()``/``pump()``.  An empty
    :meth:`read` means "nothing buffered *right now*", not end of
    stream, so a push source must be driven incrementally — never with
    ``StreamPipeline.run()``, which treats empty as exhaustion.

    Buffering is a bounded :class:`RingBuffer` under the tenant's
    backpressure policy: ``block`` refuses the overflow (the push
    reports how many frames were accepted, and the producer must resend
    the rest), ``drop-oldest`` keeps only the freshest frames, and
    ``error`` raises.  ``received`` counts the frames accepted into the
    stream's history — exactly the index a resuming producer must
    continue from.

    Args:
        coord_shape: per-frame coordinate shape.
        dtype: frame dtype.
        capacity: buffered-frame bound (the per-connection backpressure
            window).
        policy: overflow behaviour; see :class:`BackpressurePolicy`.
        label: identity used in :meth:`describe` and therefore in
            checkpoint fingerprints — give each tenant stream a unique,
            stable label.
    """

    def __init__(
        self,
        coord_shape: tuple[int, ...],
        dtype: "np.dtype | str",
        capacity: int = 4096,
        policy: "str | BackpressurePolicy" = BackpressurePolicy.BLOCK,
        label: str = "push",
    ) -> None:
        self.coord_shape = tuple(int(s) for s in coord_shape)
        self.dtype = np.dtype(dtype)
        self.policy = BackpressurePolicy.parse(policy)
        self._buffer = RingBuffer(capacity, self.policy)
        self._label = str(label)
        self._received = 0
        self._delivered = 0

    @property
    def received(self) -> int:
        """Frames accepted into the stream history so far."""
        return self._received

    @property
    def delivered(self) -> int:
        """Frames already handed to the pipeline."""
        return self._delivered

    @property
    def buffered(self) -> int:
        """Frames accepted but not yet read."""
        return len(self._buffer)

    @property
    def free(self) -> int:
        """Frames that can be pushed right now without overflow."""
        return self._buffer.free

    def push(self, frames: np.ndarray) -> int:
        """Offer a ``(k,) + coord_shape`` chunk; returns frames accepted.

        Under ``drop-oldest`` every offered frame counts as accepted
        (the evicted ones entered the history and were then superseded);
        under ``block`` the tail that does not fit is refused and must
        be offered again after the pipeline drains the buffer.
        """
        frames = np.asarray(frames)
        if frames.shape[1:] != self.coord_shape:
            raise DataFormatError(
                f"pushed frame shape {frames.shape[1:]} != {self.coord_shape}"
            )
        if frames.dtype != self.dtype:
            raise DataFormatError(
                f"pushed dtype {frames.dtype} != {self.dtype}"
            )
        accepted = self._buffer.push(frames)
        self._received += accepted
        return accepted

    def _read(self, k: int) -> np.ndarray:
        if len(self._buffer) == 0:
            return self._empty()
        chunk = self._buffer.pop(k)
        self._delivered += chunk.shape[0]
        return chunk

    def state_dict(self) -> dict:
        return {
            "received": self._received,
            "delivered": self._delivered,
            "buffer": self._buffer.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self._received = int(state["received"])
        self._delivered = int(state["delivered"])
        self._buffer.load_state(state["buffer"])

    def describe(self) -> str:
        return (
            f"{self._label}(shape={self.coord_shape}, dtype={self.dtype.str})"
        )


class DownlinkSource(FrameSource):
    """Frames of an inner source received through the CRC/ARQ downlink.

    Each frame's bytes are packetised and transferred over the
    Gilbert–Elliott burst channel with stop-and-wait ARQ
    (:class:`repro.ngst.downlink.ARQDownlink`); the receiver-side bytes
    are reassembled into the frame the pipeline sees.  CRC-clean
    corruption (≈2⁻¹⁶ per damaged packet) therefore shows up inline, as
    it would on a real link.  Each frame uses its own
    :func:`frame_rng`-seeded channel, keeping the stream chunk-invariant
    and resumable.

    A frame that exhausts its retransmission budget raises
    :class:`repro.exceptions.CodecError` — the stream, like the
    paper's Figure 1 link, has no out-of-band recovery path.

    Args:
        inner: the source whose frames are transmitted.
        config: packet framing and ARQ policy.
        seed: root entropy for the per-frame channel randomness.
    """

    def __init__(
        self,
        inner: FrameSource,
        config: DownlinkConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.config = config or DownlinkConfig()
        self.seed = int(seed)
        self.coord_shape = inner.coord_shape
        self.dtype = inner.dtype
        self._next = 0
        self.n_transmissions = 0
        self.n_crc_rejections = 0
        self.n_undetected_errors = 0
        self.bits_on_wire = 0

    def _read(self, k: int) -> np.ndarray:
        frames = self.inner.read(k)
        out = np.empty_like(frames)
        for j in range(frames.shape[0]):
            link = ARQDownlink(
                self.config,
                seed=np.random.SeedSequence(
                    entropy=self.seed, spawn_key=(self._next + j,)
                ),
            )
            report = link.transmit(frames[j].tobytes())
            out[j] = np.frombuffer(report.delivered, dtype=self.dtype).reshape(
                self.coord_shape
            )
            self.n_transmissions += report.n_transmissions
            self.n_crc_rejections += report.n_crc_rejections
            self.n_undetected_errors += report.n_undetected_errors
            self.bits_on_wire += report.bits_on_wire
        self._next += frames.shape[0]
        return out

    def state_dict(self) -> dict:
        return {
            "next": self._next,
            "inner": self.inner.state_dict(),
            "n_transmissions": self.n_transmissions,
            "n_crc_rejections": self.n_crc_rejections,
            "n_undetected_errors": self.n_undetected_errors,
            "bits_on_wire": self.bits_on_wire,
        }

    def load_state(self, state: dict) -> None:
        self._next = int(state["next"])
        self.inner.load_state(state["inner"])
        self.n_transmissions = int(state["n_transmissions"])
        self.n_crc_rejections = int(state["n_crc_rejections"])
        self.n_undetected_errors = int(state["n_undetected_errors"])
        self.bits_on_wire = int(state["bits_on_wire"])

    def describe(self) -> str:
        return (
            f"downlink({self.inner.describe()}, "
            f"payload={self.config.payload_bytes}, seed={self.seed})"
        )
