"""Stream telemetry: per-stage throughput, queue depth, and latency.

Extends the :mod:`repro.runtime.telemetry` hub with streaming events —
the same synchronous pub/sub :class:`~repro.runtime.telemetry.Telemetry`
class carries them, so one subscriber can watch a trial campaign and a
stream in the same process.  The pipeline emits one
:class:`StreamStarted` per run, one :class:`ChunkCompleted` per chunk
(with inlet queue depth and high-water mark), and one
:class:`StreamCompleted` with the per-stage totals.

:class:`StreamProgressPrinter` is the stock subscriber behind
``repro stream --progress``; it renders stream events as one-line
messages and delegates any runtime event to
:class:`~repro.runtime.telemetry.ProgressPrinter`, so it can be
subscribed to a shared hub.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TextIO, Union

from repro.runtime.telemetry import (
    ProgressPrinter,
    RunCompleted,
    RunStarted,
    ShardCompleted,
    Telemetry,
)

__all__ = [
    "ChunkCompleted",
    "LambdaAdjusted",
    "StageStats",
    "StreamCompleted",
    "StreamProgressPrinter",
    "StreamStarted",
    "Telemetry",
]


@dataclass(frozen=True)
class StreamStarted:
    """Emitted when a streaming run begins (or resumes).

    Attributes:
        source: the source's :meth:`~repro.stream.source.FrameSource.describe`.
        stages: stage names, pipeline order.
        chunk_frames: transport chunk size in frames.
        policy: the inlet buffer's backpressure policy value.
        resumed_frames: frames restored from a checkpoint (0 for a
            fresh run).
    """

    source: str
    stages: tuple[str, ...]
    chunk_frames: int
    policy: str
    resumed_frames: int


@dataclass(frozen=True)
class ChunkCompleted:
    """Emitted as each transport chunk clears the whole pipeline.

    Attributes:
        chunk_index: which chunk completed (counting resumed ones).
        frames_in: frames pulled from the source for this chunk.
        frames_out: frames the final stage emitted during this chunk.
        elapsed_s: wall-clock seconds for the chunk, all stages.
        frames_per_sec: chunk throughput (input frames / elapsed).
        queue_depth: inlet buffer occupancy after the chunk drained.
        high_water: inlet buffer high-water mark so far.
    """

    chunk_index: int
    frames_in: int
    frames_out: int
    elapsed_s: float
    frames_per_sec: float
    queue_depth: int
    high_water: int


@dataclass(frozen=True)
class LambdaAdjusted:
    """Emitted when the online autotuner commits a sensitivity change.

    Fired by :class:`repro.stream.autotune_stage.AutotuneVoterStage`
    after the hysteresis rule (``confirm`` consecutive agreeing
    estimates at least ``min_delta`` away from the current Λ) accepts a
    new operating point.  The Λ trajectory of a stream is the ordered
    sequence of these events.

    Attributes:
        label: the stage's owner label ('' for plain CLI streams; the
            tenant name under ``repro serve``).
        stack_index: stacks processed when the change took effect (the
            next stack runs at ``new_sensitivity``).
        frame_index: input frames consumed when the change took effect.
        old_sensitivity: the Λ being replaced.
        new_sensitivity: the Λ now in force.
        estimated_sigma: σ̂ of the window estimate that won.
        estimated_gamma: Γ̂ of the window estimate that won.
    """

    label: str
    stack_index: int
    frame_index: int
    old_sensitivity: float
    new_sensitivity: float
    estimated_sigma: float
    estimated_gamma: float


@dataclass(frozen=True)
class StageStats:
    """Lifetime accounting for one pipeline stage.

    Attributes:
        name: the stage's name.
        frames_in: frames the stage consumed.
        frames_out: frames the stage emitted (trails ``frames_in`` by
            the stage's window/stack lag until the flush).
        elapsed_s: cumulative seconds spent inside the stage.
        frames_per_sec: stage throughput (consumed frames / elapsed).
        max_buffered: most frames the stage ever carried between chunks.
    """

    name: str
    frames_in: int
    frames_out: int
    elapsed_s: float
    frames_per_sec: float
    max_buffered: int


@dataclass(frozen=True)
class StreamCompleted:
    """Emitted once when the source is exhausted and all stages flushed.

    Attributes:
        n_frames_in: total frames pulled from the source.
        n_frames_out: total frames emitted by the final stage.
        n_chunks: transport chunks processed (counting resumed ones).
        elapsed_s: end-to-end wall-clock seconds for this process's part
            of the run (resumed chunks excluded).
        frames_per_sec: overall throughput over ``elapsed_s``.
        stages: per-stage totals, pipeline order.
        high_water: inlet buffer high-water mark.
    """

    n_frames_in: int
    n_frames_out: int
    n_chunks: int
    elapsed_s: float
    frames_per_sec: float
    stages: tuple[StageStats, ...]
    high_water: int


StreamEvent = Union[StreamStarted, ChunkCompleted, LambdaAdjusted, StreamCompleted]


class StreamProgressPrinter:
    """Stock subscriber: one line per stream event, runtime events passed on.

    Args:
        stream: output stream (default stderr, keeping stdout clean for
            result tables and JSON).
        every: print only every *n*-th :class:`ChunkCompleted` (start
            and completion always print); chunks can be subsecond, so
            the default thins the chunk chatter.
    """

    def __init__(self, stream: TextIO | None = None, every: int = 1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.every = max(1, int(every))

    def __call__(self, event: object) -> None:
        if isinstance(event, ChunkCompleted) and event.chunk_index % self.every:
            return
        line = self.format(event)
        if line:
            print(line, file=self.stream, flush=True)

    @staticmethod
    def format(event: object) -> str:
        """The one-line rendering of *event* ('' to stay silent)."""
        if isinstance(event, StreamStarted):
            resumed = (
                f", resumed at frame {event.resumed_frames}"
                if event.resumed_frames
                else ""
            )
            return (
                f"[stream] start: {' -> '.join(event.stages) or 'passthrough'} "
                f"over {event.source}; chunk={event.chunk_frames} "
                f"policy={event.policy}{resumed}"
            )
        if isinstance(event, ChunkCompleted):
            return (
                f"[stream] chunk {event.chunk_index}: {event.frames_in} frame(s) "
                f"in {event.elapsed_s:.3f}s ({event.frames_per_sec:.1f} frames/s; "
                f"depth {event.queue_depth}, high-water {event.high_water})"
            )
        if isinstance(event, LambdaAdjusted):
            owner = f"{event.label}: " if event.label else ""
            return (
                f"[stream] {owner}lambda {event.old_sensitivity:g} -> "
                f"{event.new_sensitivity:g} at stack {event.stack_index} "
                f"(frame {event.frame_index}; sigma~{event.estimated_sigma:.1f}, "
                f"gamma~{event.estimated_gamma:.2g})"
            )
        if isinstance(event, StreamCompleted):
            per_stage = "; ".join(
                f"{s.name} {s.frames_per_sec:.0f} f/s (lag<={s.max_buffered})"
                for s in event.stages
            )
            return (
                f"[stream] done: {event.n_frames_in} frame(s) in "
                f"{event.n_chunks} chunk(s), {event.elapsed_s:.3f}s "
                f"({event.frames_per_sec:.1f} frames/s)"
                + (f" | {per_stage}" if per_stage else "")
            )
        if isinstance(event, (RunStarted, ShardCompleted, RunCompleted)):
            return ProgressPrinter.format(event)  # shared-hub runtime events
        return ""
