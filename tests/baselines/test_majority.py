"""Tests for Algorithm 3 (bitwise majority voting) and variants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis.extra import numpy as hnp

from repro.baselines.majority import (
    majority_vote_spatial,
    majority_vote_temporal,
    majority_vote_window,
)
from repro.exceptions import ConfigurationError, DataFormatError


class TestTemporalMajority:
    def test_constant_sequence_unchanged(self):
        seq = np.full(8, 0xABCD, dtype=np.uint16)
        assert np.array_equal(majority_vote_temporal(seq), seq)

    def test_single_bit_outlier_removed(self):
        seq = np.full(8, 1000, dtype=np.uint16)
        seq[3] ^= 1 << 12
        out = majority_vote_temporal(seq)
        assert out[3] == 1000

    def test_all_bits_vote_independently(self):
        # One pixel flipped at two distinct bits: both revert.
        seq = np.full(8, 0x0F0F, dtype=np.uint16)
        seq[4] ^= (1 << 15) | 1
        out = majority_vote_temporal(seq)
        assert out[4] == 0x0F0F

    def test_edge_padding_matches_paper(self):
        # P(0) = P(3): the first pixel votes with pixels[1] and pixels[2].
        seq = np.array([0, 0xFFFF, 0xFFFF, 0xFFFF, 0, 0, 0, 0], dtype=np.uint16)
        out = majority_vote_temporal(seq)
        assert out[0] == 0xFFFF

    def test_preserves_shape_on_stack(self, walk_stack):
        out = majority_vote_temporal(walk_stack)
        assert out.shape == walk_stack.shape

    def test_rejects_short_sequence(self):
        with pytest.raises(DataFormatError):
            majority_vote_temporal(np.zeros(3, dtype=np.uint16))

    def test_rejects_float(self):
        with pytest.raises(DataFormatError):
            majority_vote_temporal(np.zeros(8, dtype=np.float64))

    @given(hnp.arrays(dtype=np.uint16, shape=(10, 3)))
    def test_idempotent_on_majority_stable_bits(self, stack):
        once = majority_vote_temporal(stack)
        twice = majority_vote_temporal(once)
        # Bits already majority-stable stay put; a second pass changes
        # strictly fewer bits than the first (convergence).
        diff1 = np.bitwise_count(stack ^ once).sum()
        diff2 = np.bitwise_count(once ^ twice).sum()
        assert diff2 <= diff1


class TestSpatialMajority:
    def test_constant_field_unchanged(self):
        field = np.full((8, 8), 0x1234, dtype=np.uint16)
        assert np.array_equal(majority_vote_spatial(field), field)

    def test_isolated_bit_flip_removed(self):
        field = np.full((8, 8), 1000, dtype=np.uint16)
        field[4, 4] ^= 1 << 14
        out = majority_vote_spatial(field)
        assert out[4, 4] == 1000

    def test_float32_path(self):
        field = np.full((8, 8), 7.5, dtype=np.float32)
        assert np.array_equal(majority_vote_spatial(field), field)

    def test_cube_path(self):
        cube = np.full((2, 8, 8), 7.5, dtype=np.float32)
        assert majority_vote_spatial(cube).shape == cube.shape

    def test_horizontal_only_variant(self):
        field = np.full((8, 8), 1000, dtype=np.uint16)
        out = majority_vote_spatial(field, axis_pairs=False)
        assert np.array_equal(out, field)

    def test_rejects_1d_unsigned(self):
        with pytest.raises(DataFormatError):
            majority_vote_spatial(np.zeros(8, dtype=np.uint16))

    def test_rejects_tiny_field(self):
        with pytest.raises(DataFormatError):
            majority_vote_spatial(np.zeros((2, 2), dtype=np.uint16))


class TestWindowedMajority:
    def test_matches_window3_on_interior(self):
        seq = np.full(12, 4096, dtype=np.uint16)
        seq[5] ^= 1 << 9
        out3 = majority_vote_window(seq, window=3)
        assert out3[5] == 4096

    def test_window5_survives_adjacent_pair(self):
        # Two adjacent pixels flipped at the same bit defeat window 3 for
        # the midpoint but not window 5.
        seq = np.full(12, 4096, dtype=np.uint16)
        seq[5] ^= 1 << 9
        seq[6] ^= 1 << 9
        out5 = majority_vote_window(seq, window=5)
        assert out5[5] == 4096 and out5[6] == 4096

    def test_rejects_even_window(self):
        with pytest.raises(ConfigurationError):
            majority_vote_window(np.zeros(8, dtype=np.uint16), window=4)

    def test_rejects_short_input(self):
        with pytest.raises(DataFormatError):
            majority_vote_window(np.zeros(3, dtype=np.uint16), window=5)
