"""Tests for Algorithm 2 (median smoothing) and its spatial variant."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis.extra import numpy as hnp

from repro.baselines.median import median_smooth_spatial, median_smooth_temporal
from repro.exceptions import ConfigurationError, DataFormatError


class TestTemporalMedian:
    def test_constant_sequence_unchanged(self):
        seq = np.full(10, 500, dtype=np.uint16)
        assert np.array_equal(median_smooth_temporal(seq), seq)

    def test_single_outlier_removed(self):
        seq = np.full(10, 500, dtype=np.uint16)
        seq[4] = 40000
        out = median_smooth_temporal(seq)
        assert out[4] == 500

    def test_matches_algorithm2_interior(self):
        # Interior: P(i) = median{P(i-1), P(i), P(i+1)}.
        seq = np.array([1, 9, 2, 8, 3, 7, 4], dtype=np.uint16)
        out = median_smooth_temporal(seq)
        for i in range(1, 6):
            assert out[i] == sorted(seq[i - 1 : i + 2])[1]

    def test_edge_handling_uses_first_window(self):
        # P(1) = median{P(1), P(2), P(3)} in the paper's 1-based notation.
        seq = np.array([100, 1, 2, 3, 4], dtype=np.uint16)
        out = median_smooth_temporal(seq)
        assert out[0] == 2

    def test_works_on_stacks(self, walk_stack):
        out = median_smooth_temporal(walk_stack)
        assert out.shape == walk_stack.shape
        assert out.dtype == walk_stack.dtype

    def test_wider_window(self):
        seq = np.array([0, 0, 100, 0, 0, 0, 0], dtype=np.uint16)
        assert median_smooth_temporal(seq, window=5)[2] == 0

    def test_rejects_even_window(self):
        with pytest.raises(ConfigurationError):
            median_smooth_temporal(np.zeros(8, dtype=np.uint16), window=4)

    def test_rejects_short_sequence(self):
        with pytest.raises(DataFormatError):
            median_smooth_temporal(np.zeros(2, dtype=np.uint16))

    def test_input_not_mutated(self):
        seq = np.array([1, 9, 2, 8, 3], dtype=np.uint16)
        snapshot = seq.copy()
        median_smooth_temporal(seq)
        assert np.array_equal(seq, snapshot)

    @given(hnp.arrays(dtype=np.uint16, shape=(12,)))
    def test_output_within_input_range(self, seq):
        out = median_smooth_temporal(seq)
        assert out.min() >= seq.min()
        assert out.max() <= seq.max()


class TestSpatialMedian:
    def test_constant_field_unchanged(self):
        field = np.full((8, 8), 9.0, dtype=np.float32)
        assert np.allclose(median_smooth_spatial(field), 9.0)

    def test_isolated_spike_removed(self):
        field = np.full((8, 8), 10.0, dtype=np.float32)
        field[4, 4] = 1e6
        out = median_smooth_spatial(field)
        assert out[4, 4] == pytest.approx(10.0)

    def test_works_on_uint16(self, blob_dn):
        out = median_smooth_spatial(blob_dn)
        assert out.dtype == np.uint16

    def test_cube_processed_per_band(self):
        cube = np.full((3, 8, 8), 5.0, dtype=np.float32)
        assert median_smooth_spatial(cube).shape == cube.shape

    def test_rejects_1d(self):
        with pytest.raises(DataFormatError):
            median_smooth_spatial(np.zeros(8, dtype=np.float32))

    def test_rejects_small_field(self):
        with pytest.raises(DataFormatError):
            median_smooth_spatial(np.zeros((2, 8), dtype=np.float32))

    def test_rejects_even_window(self):
        with pytest.raises(ConfigurationError):
            median_smooth_spatial(np.zeros((8, 8), dtype=np.float32), window=2)
