"""Tests for the §4 catalogue of generic smoothers."""

import numpy as np
import pytest

from repro.baselines.smoothing import (
    bisquare_smooth,
    inverse_square_smooth,
    mean_smooth,
    negative_exponential_smooth,
    running_average_smooth,
)
from repro.exceptions import ConfigurationError, DataFormatError

ALL_WINDOWED = [
    mean_smooth,
    negative_exponential_smooth,
    inverse_square_smooth,
    bisquare_smooth,
]


@pytest.mark.parametrize("smoother", ALL_WINDOWED)
class TestWindowedSmoothersCommon:
    def test_constant_sequence_unchanged(self, smoother):
        seq = np.full(12, 700, dtype=np.uint16)
        assert np.array_equal(smoother(seq), seq)

    def test_output_dtype_preserved(self, smoother):
        seq = np.arange(12, dtype=np.uint16)
        assert smoother(seq).dtype == np.uint16

    def test_reduces_outlier(self, smoother):
        seq = np.full(12, 700, dtype=np.uint16)
        seq[6] = 30000
        out = smoother(seq)
        assert out[6] < 30000

    def test_rejects_short_input(self, smoother):
        with pytest.raises(DataFormatError):
            smoother(np.zeros(2, dtype=np.uint16))

    def test_works_on_stacks(self, smoother, walk_stack):
        out = smoother(walk_stack)
        assert out.shape == walk_stack.shape


class TestMeanSmooth:
    def test_window3_exact(self):
        seq = np.array([3.0, 6.0, 9.0, 12.0], dtype=np.float64)
        out = mean_smooth(seq)
        assert out[1] == pytest.approx(6.0)
        assert out[2] == pytest.approx(9.0)

    def test_less_robust_than_median(self):
        # The §4.1 claim: median beats mean on outliers.
        from repro.baselines.median import median_smooth_temporal

        seq = np.full(12, 700, dtype=np.uint16)
        seq[6] = 60000
        mean_err = abs(int(mean_smooth(seq)[5]) - 700)
        median_err = abs(int(median_smooth_temporal(seq)[5]) - 700)
        assert median_err < mean_err

    def test_rejects_even_window(self):
        with pytest.raises(ConfigurationError):
            mean_smooth(np.zeros(8, dtype=np.uint16), window=4)


class TestRunningAverage:
    def test_alpha_one_is_identity(self):
        seq = np.array([1, 5, 2, 9], dtype=np.uint16)
        assert np.array_equal(running_average_smooth(seq, alpha=1.0), seq)

    def test_smooths_forward(self):
        seq = np.array([0.0, 100.0, 0.0, 0.0], dtype=np.float64)
        out = running_average_smooth(seq, alpha=0.5)
        assert out[1] == pytest.approx(50.0)
        assert out[2] == pytest.approx(25.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            running_average_smooth(np.zeros(4, dtype=np.uint16), alpha=0.0)

    def test_rejects_short(self):
        with pytest.raises(DataFormatError):
            running_average_smooth(np.zeros(1, dtype=np.uint16))


class TestKernelShapes:
    def test_negative_exponential_scale_validated(self):
        with pytest.raises(ConfigurationError):
            negative_exponential_smooth(np.zeros(8, dtype=np.uint16), scale=0)

    def test_inverse_square_weights_decay(self):
        # A distant outlier perturbs less than an adjacent one.
        seq = np.full(13, 100.0, dtype=np.float64)
        seq_adjacent = seq.copy()
        seq_adjacent[7] = 1100.0
        seq_far = seq.copy()
        seq_far[8] = 1100.0
        adj = inverse_square_smooth(seq_adjacent, window=5)[6]
        far = inverse_square_smooth(seq_far, window=5)[6]
        assert abs(adj - 100) > abs(far - 100)

    def test_bisquare_zero_at_edge(self):
        # The bi-square weight at the window edge is small but positive
        # inside the window; the kernel is symmetric.
        seq = np.full(13, 100.0, dtype=np.float64)
        out = bisquare_smooth(seq, window=5)
        assert np.allclose(out, 100.0)
