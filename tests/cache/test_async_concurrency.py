"""One ArtifactCache, many asyncio tasks, one process.

The serve layer shares a single cache between worker-pool threads
driven from the event loop, so the disk tier must tolerate concurrent
``get_or_create`` / ``get`` / ``stats`` calls racing in one process.
(Cross-*process* disk-tier races are covered in test_store.py; this is
the in-process, thread-offloaded shape ``repro serve`` produces.)
"""

import asyncio

import numpy as np

from repro.cache import ArtifactCache, CachedArtifact


def _make(key: str) -> CachedArtifact:
    seed = sum(key.encode())
    return CachedArtifact.build(
        {"data": np.random.default_rng(seed).integers(0, 2**16, 256)},
        {"key": key},
    )


async def _hammer(cache: ArtifactCache, keys, rounds: int):
    """Every round races a get_or_create for each key across threads."""

    async def one(key):
        artifact = await asyncio.to_thread(
            cache.get_or_create, key, lambda k=key: _make(k)
        )
        return key, artifact.arrays["data"].tobytes()

    seen = {}
    for _ in range(rounds):
        for key, payload in await asyncio.gather(*(one(k) for k in keys)):
            seen.setdefault(key, payload)
            assert seen[key] == payload, f"{key} changed between reads"
    return seen


class TestAsyncConcurrency:
    def test_concurrent_get_or_create_on_disk_tier(self, tmp_path):
        cache = ArtifactCache(max_memory_bytes=0, directory=tmp_path)
        keys = [f"artifact-{i}" for i in range(12)]
        seen = asyncio.run(_hammer(cache, keys, rounds=6))
        # Every key always resolved to one stable payload...
        assert set(seen) == set(keys)
        for key in keys:
            again = cache.get(key)
            assert again is not None
            assert again.arrays["data"].tobytes() == seen[key]
        # ...and after the first round, reads were disk hits.
        stats = cache.stats()
        assert stats.disk_hits > 0
        assert stats.n_disk_entries == len(keys)

    def test_memory_tier_under_concurrent_promotion(self, tmp_path):
        entry_bytes = _make("probe").nbytes
        cache = ArtifactCache(
            max_memory_bytes=entry_bytes * 4, directory=tmp_path
        )
        keys = [f"hot-{i}" for i in range(16)]  # 4x the memory tier
        seen = asyncio.run(_hammer(cache, keys, rounds=5))
        assert set(seen) == set(keys)
        stats = cache.stats()
        # Constant eviction pressure, yet the books still balance.
        assert stats.memory_evictions > 0
        assert stats.n_memory_entries <= 4
        assert stats.n_disk_entries == len(keys)

    def test_stats_scrape_races_with_writers(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)

        async def scenario():
            async def writer(i):
                await asyncio.to_thread(
                    cache.get_or_create, f"w-{i}", lambda i=i: _make(f"w-{i}")
                )

            async def scraper():
                for _ in range(20):
                    snapshot = await asyncio.to_thread(cache.stats)
                    assert snapshot.puts >= 0
                    await asyncio.sleep(0)

            await asyncio.gather(*(writer(i) for i in range(20)), scraper())

        asyncio.run(scenario())
        assert cache.stats().puts == 20
