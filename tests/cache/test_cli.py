"""Tests for the ``repro cache`` subcommand (stats / clear)."""

import json

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachedArtifact
from repro.cache.cli import main as cache_main
from repro.cli import main as repro_main


def _populate(directory, n=2):
    cache = ArtifactCache(directory=directory)
    for i in range(n):
        cache.put(
            f"key-{i}",
            CachedArtifact.build({"data": np.full(64, i, dtype=np.uint64)}),
        )
    return cache.stats().disk_bytes


class TestStats:
    def test_reports_entries_and_bytes(self, tmp_path, capsys):
        disk_bytes = _populate(tmp_path, n=2)
        assert cache_main(["stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "2" in out
        assert str(disk_bytes) in out

    def test_json_output_is_parseable(self, tmp_path, capsys):
        disk_bytes = _populate(tmp_path, n=3)
        assert cache_main(["stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == {
            "directory": str(tmp_path),
            "n_disk_entries": 3,
            "disk_bytes": disk_bytes,
            "kinds": {"other": {"entries": 3, "bytes": doc["kinds"]["other"]["bytes"]}},
        }
        assert doc["kinds"]["other"]["bytes"] > 0

    def test_missing_directory_reads_as_empty(self, tmp_path, capsys):
        target = tmp_path / "never-created"
        assert cache_main(["stats", "--cache-dir", str(target), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_disk_entries"] == 0
        assert doc["disk_bytes"] == 0


class TestClear:
    def test_clears_and_reports_counts(self, tmp_path, capsys):
        _populate(tmp_path, n=2)
        assert cache_main(["clear", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cleared 2 entries" in out
        assert ArtifactCache(directory=tmp_path).stats().n_disk_entries == 0

    def test_singular_grammar(self, tmp_path, capsys):
        _populate(tmp_path, n=1)
        assert cache_main(["clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared 1 entry " in capsys.readouterr().out

    def test_missing_directory_is_one_line_exit_2(self, tmp_path, capsys):
        target = tmp_path / "never-created"
        assert cache_main(["clear", "--cache-dir", str(target)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert str(target) in lines[0]


class TestDispatch:
    def test_repro_cache_routes_to_subcommand(self, tmp_path, capsys):
        _populate(tmp_path, n=1)
        assert repro_main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "disk entries:    1" in capsys.readouterr().out

    def test_unknown_action_exits_2(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cache_main(["defrag", "--cache-dir", str(tmp_path)])
        assert excinfo.value.code == 2


class TestKindBreakdown:
    def test_dag_store_breaks_down_by_node_kind(self, tmp_path, capsys):
        cache = ArtifactCache(directory=tmp_path)
        cache.put(
            "d1",
            CachedArtifact.build(
                {"x": np.zeros(32)}, {"node_kind": "dataset"}
            ),
        )
        cache.put(
            "s1",
            CachedArtifact.build({"x": np.zeros(4)}, {"node_kind": "score"}),
        )
        assert cache_main(["stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "by node kind:" in out
        assert "dataset" in out and "score" in out

    def test_json_kinds_after_dag_run(self, tmp_path, capsys):
        from repro.dag import DagScheduler, TaskGraph, TaskNode

        graph = TaskGraph("g")
        graph.add(
            TaskNode(
                name="d", kind="dataset",
                run=lambda ctx: {"x": np.zeros(8)}, key_parts=("d",),
            )
        )
        DagScheduler(cache=ArtifactCache(directory=tmp_path)).run(graph)
        assert cache_main(["stats", "--cache-dir", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kinds"]["dataset"]["entries"] == 1
