"""Cache-key invalidation properties for :mod:`repro.cache.fingerprint`.

The contract under test: byte-identical configurations always produce
the same key (hits), and changing *any* field — or the SeedSequence
entropy/spawn position — produces a different key (misses).  A stale
hit would silently serve the wrong artifact, so these properties guard
the whole caching design.
"""

import dataclasses
from enum import Enum

import numpy as np
import pytest

from repro.cache import canonicalize, fingerprint, seed_fingerprint
from repro.config import (
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
    UncorrelatedFaultConfig,
)
from repro.exceptions import ConfigurationError


class TestDeterminism:
    def test_equal_configs_hit(self):
        a = NGSTDatasetConfig(n_variants=32, sigma=25.0)
        b = NGSTDatasetConfig(n_variants=32, sigma=25.0)
        assert fingerprint(a) == fingerprint(b)

    def test_repeated_calls_are_stable(self):
        cfg = CorrelatedFaultConfig(gamma_ini=0.05)
        assert fingerprint(cfg, (16, 16)) == fingerprint(cfg, (16, 16))

    def test_list_and_tuple_parts_are_equivalent(self):
        assert fingerprint([1, 2, 3]) == fingerprint((1, 2, 3))

    def test_equal_seed_sequences_hit(self):
        assert seed_fingerprint(np.random.SeedSequence(7)) == seed_fingerprint(
            np.random.SeedSequence(7)
        )

    def test_spawned_children_match_respawned_children(self):
        a = np.random.SeedSequence(7).spawn(3)
        b = np.random.SeedSequence(7).spawn(3)
        assert [seed_fingerprint(s) for s in a] == [
            seed_fingerprint(s) for s in b
        ]


def _candidate_values(value):
    if isinstance(value, bool):
        yield not value
    elif isinstance(value, int):
        yield value + 1
        yield max(value - 1, 1)
    elif isinstance(value, float):
        yield value + 1.0
        yield value / 2 + 1e-3
        yield value * 0.9 + 1e-4
    elif isinstance(value, str):
        yield value + "x"


def _variants(config):
    """One *valid* single-field mutation per mutable field of a config."""
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        for candidate in _candidate_values(value):
            try:
                mutated = dataclasses.replace(config, **{field.name: candidate})
            except ConfigurationError:
                continue  # candidate violates the config's invariants
            yield field.name, mutated
            break


class TestInvalidation:
    @pytest.mark.parametrize(
        "config",
        [
            NGSTDatasetConfig(),
            NGSTConfig(),
            UncorrelatedFaultConfig(),
            CorrelatedFaultConfig(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_any_field_change_misses(self, config):
        base = fingerprint(config)
        for name, mutated in _variants(config):
            assert fingerprint(mutated) != base, f"field {name} not keyed"

    def test_entropy_change_misses(self):
        assert seed_fingerprint(np.random.SeedSequence(1)) != seed_fingerprint(
            np.random.SeedSequence(2)
        )

    def test_sibling_spawned_seeds_differ(self):
        a, b = np.random.SeedSequence(7).spawn(2)
        assert seed_fingerprint(a) != seed_fingerprint(b)

    def test_spawned_child_differs_from_root(self):
        root = np.random.SeedSequence(7)
        (child,) = root.spawn(1)
        assert seed_fingerprint(child) != seed_fingerprint(root)

    def test_float_precision_is_significant(self):
        assert fingerprint(0.1) != fingerprint(0.1000000001)

    def test_int_and_float_do_not_collide(self):
        assert fingerprint(1) != fingerprint(1.0)

    def test_equal_fields_of_different_dataclasses_do_not_collide(self):
        @dataclasses.dataclass(frozen=True)
        class A:
            x: int = 1

        @dataclasses.dataclass(frozen=True)
        class B:
            x: int = 1

        assert fingerprint(A()) != fingerprint(B())

    def test_part_boundaries_are_significant(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")

    def test_array_content_is_keyed(self):
        a = np.arange(8, dtype=np.uint16)
        b = a.copy()
        assert fingerprint(a) == fingerprint(b)
        b[3] ^= 1
        assert fingerprint(a) != fingerprint(b)

    def test_array_dtype_and_shape_are_keyed(self):
        a = np.zeros(8, dtype=np.uint16)
        assert fingerprint(a) != fingerprint(a.astype(np.uint32))
        assert fingerprint(a) != fingerprint(a.reshape(2, 4))


class TestCanonicalize:
    def test_rejects_opaque_objects(self):
        with pytest.raises(ConfigurationError, match="stable cache key"):
            canonicalize(object())

    def test_rejects_non_string_mapping_keys(self):
        with pytest.raises(ConfigurationError, match="must be str"):
            canonicalize({1: "x"})

    def test_enum_members_are_distinct(self):
        class Mode(Enum):
            A = 1
            B = 2

        assert fingerprint(Mode.A) != fingerprint(Mode.B)

    def test_numpy_scalars_match_python_scalars(self):
        assert fingerprint(np.int64(5)) == fingerprint(5)

    def test_bytes_are_content_keyed(self):
        assert fingerprint(b"abc") == fingerprint(b"abc")
        assert fingerprint(b"abc") != fingerprint(b"abd")

    def test_nested_structures(self):
        cfg = NGSTDatasetConfig()
        nested = {"dataset": cfg, "grid": [0.1, 0.2], "meta": None}
        assert fingerprint(nested) == fingerprint(dict(nested))
