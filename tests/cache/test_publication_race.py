"""Cross-process publication races: atomic ``os.replace`` keeps the
store consistent when two *processes* publish the same content key.

The in-process concurrency tests cover thread races; this module forks
real processes against one shared disk directory — the situation a
cluster re-dispatch creates when a "dead" worker was merely slow and
two publications of the same deterministic artifact land at once.
Both must succeed silently, and the surviving entry must verify.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.cache.store import ArtifactCache, CachedArtifact

KEY = "a" * 64


def _artifact(stamp: int) -> CachedArtifact:
    # Deterministic payload: publications of one content key are
    # bit-identical by construction, exactly like re-dispatched shards.
    return CachedArtifact.build(
        {"values": np.arange(2048, dtype=np.float64)},
        {"kind": "race", "stamp": stamp},
    )


def _publish_many(directory: str, barrier, n_puts: int, error_queue) -> None:
    try:
        cache = ArtifactCache(max_memory_bytes=0, directory=directory)
        barrier.wait(timeout=30)
        for i in range(n_puts):
            cache.put(KEY, _artifact(stamp=7))
    except Exception as exc:  # pragma: no cover - failure reporting
        error_queue.put(f"{type(exc).__name__}: {exc}")


class TestCrossProcessPublicationRace:
    @pytest.mark.parametrize("n_processes", [2, 4])
    def test_concurrent_same_key_publications_all_succeed(
        self, tmp_path, n_processes
    ):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(n_processes)
        errors = ctx.Queue()
        procs = [
            ctx.Process(
                target=_publish_many,
                args=(str(tmp_path), barrier, 25, errors),
            )
            for _ in range(n_processes)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
        assert all(p.exitcode == 0 for p in procs)
        assert errors.empty()
        # The surviving entry is intact and verifies end to end.
        reader = ArtifactCache(max_memory_bytes=0, directory=str(tmp_path))
        assert reader.contains(KEY)
        artifact = reader.get(KEY)
        np.testing.assert_array_equal(
            artifact.arrays["values"], np.arange(2048, dtype=np.float64)
        )
        assert artifact.meta["kind"] == "race"
        # No temp droppings left behind by either publisher.
        assert not list(tmp_path.glob("*.tmp-*"))

    def test_racing_with_reader_never_sees_torn_state(self, tmp_path):
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        errors = ctx.Queue()
        writer = ctx.Process(
            target=_publish_many, args=(str(tmp_path), barrier, 50, errors)
        )
        writer.start()
        barrier.wait(timeout=30)
        reader = ArtifactCache(max_memory_bytes=0, directory=str(tmp_path))
        seen = 0
        while writer.is_alive():
            artifact = reader.get(KEY)
            if artifact is not None:
                seen += 1
                # A visible entry is always the complete publication.
                assert artifact.arrays["values"].shape == (2048,)
        writer.join(timeout=120)
        assert writer.exitcode == 0
        assert errors.empty()
        assert reader.get(KEY) is not None
