"""Tests for :class:`repro.cache.SharedArtifactMap`: zero-copy
broadcast, worker attachment across both start methods, pickled handle
size, and guaranteed segment cleanup."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.cache import CachedArtifact, SharedArtifactMap
from tests.runtime.test_backend import needs_fork, needs_spawn


def _entries(n=3, frames=4, side=8):
    rng = np.random.default_rng(11)
    return {
        f"key-{i}": CachedArtifact.build(
            {
                "pristine": rng.integers(
                    0, 2**16, size=(frames, side, side)
                ).astype(np.uint16),
                "corrupted": rng.integers(
                    0, 2**16, size=(frames, side, side)
                ).astype(np.uint16),
            },
            {"tag": i},
        )
        for i in range(n)
    }


class TestBroadcast:
    def test_round_trips_every_entry(self):
        entries = _entries()
        with SharedArtifactMap.broadcast(entries) as shared:
            assert set(shared) == set(entries)
            assert len(shared) == len(entries)
            for key, artifact in entries.items():
                got = shared[key]
                assert got.meta == artifact.meta
                for name, array in artifact.arrays.items():
                    np.testing.assert_array_equal(got.arrays[name], array)
            del got  # release the last view before the owner unlinks

    def test_views_are_read_only(self):
        with SharedArtifactMap.broadcast(_entries(1)) as shared:
            with pytest.raises(ValueError):
                shared["key-0"].arrays["pristine"][0, 0, 0] = 1

    def test_nbytes_matches_payload(self):
        entries = _entries()
        expected = sum(a.nbytes for a in entries.values())
        with SharedArtifactMap.broadcast(entries) as shared:
            assert shared.nbytes == expected

    def test_empty_broadcast(self):
        with SharedArtifactMap.broadcast({}) as shared:
            assert len(shared) == 0
            assert shared.nbytes == 0

    def test_views_share_pages_not_copies(self):
        """Entries materialized twice are the *same* views: the map does
        not silently copy the segment into private memory."""
        with SharedArtifactMap.broadcast(_entries(1)) as shared:
            first = shared["key-0"].arrays["pristine"]
            second = shared["key-0"].arrays["pristine"]
            assert first is second
            del first, second  # release views before the owner unlinks


class TestHandle:
    def test_pickled_handle_is_small(self):
        """The whole point: the handle's wire size must not scale with
        the artifact payload it carries."""
        entries = _entries(n=4, frames=16, side=32)
        with SharedArtifactMap.broadcast(entries) as shared:
            handle_bytes = len(pickle.dumps(shared))
            assert handle_bytes < shared.nbytes / 50
            assert handle_bytes < 8192

    def test_pickle_drops_the_segment_object(self):
        with SharedArtifactMap.broadcast(_entries(1)) as shared:
            clone = pickle.loads(pickle.dumps(shared))
            assert clone._shm is None
            assert clone._owner is False
            assert clone.segment_name == shared.segment_name
            np.testing.assert_array_equal(
                clone["key-0"].arrays["pristine"],
                shared["key-0"].arrays["pristine"],
            )

    def test_worker_view_is_not_an_owner(self):
        with SharedArtifactMap.broadcast(_entries(1)) as shared:
            view = shared.worker_view()
            assert view._owner is False
            assert view._finalizer is None
            # The view reuses the owner's open segment: no re-attach.
            assert view._shm is shared._shm
            np.testing.assert_array_equal(
                view["key-0"].arrays["corrupted"],
                shared["key-0"].arrays["corrupted"],
            )
            view.shutdown()  # release views before the owner unlinks


def _read_in_worker(args):
    """Worker: materialize a handle and checksum one array."""
    handle, key, name = args
    return int(np.asarray(handle[key].arrays[name], dtype=np.uint64).sum())


class TestWorkers:
    @needs_fork
    def test_fork_workers_see_identical_bytes(self):
        entries = _entries()
        with SharedArtifactMap.broadcast(entries) as shared:
            view = shared.worker_view()
            jobs = [
                (view, key, name)
                for key in entries
                for name in ("pristine", "corrupted")
            ]
            with multiprocessing.get_context("fork").Pool(2) as pool:
                sums = pool.map(_read_in_worker, jobs)
            expected = [
                int(np.asarray(entries[key].arrays[name], dtype=np.uint64).sum())
                for _, key, name in jobs
            ]
            assert sums == expected

    @needs_spawn
    def test_spawn_workers_attach_by_name(self):
        """Spawn pickles the handle; workers attach to the named segment
        and must not unlink it when they exit (the owner still reads)."""
        entries = _entries(n=2)
        with SharedArtifactMap.broadcast(entries) as shared:
            jobs = [(shared.worker_view(), key, "pristine") for key in entries]
            with multiprocessing.get_context("spawn").Pool(2) as pool:
                sums = pool.map(_read_in_worker, jobs)
            expected = [
                int(np.asarray(entries[key].arrays["pristine"], dtype=np.uint64).sum())
                for key in entries
            ]
            assert sums == expected
            # Workers have exited; the owner's segment must still be live.
            np.testing.assert_array_equal(
                shared["key-0"].arrays["pristine"],
                entries["key-0"].arrays["pristine"],
            )


class TestLifecycle:
    def _segment_exists(self, name):
        from multiprocessing import shared_memory

        try:
            probe = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        probe.close()
        from repro.cache.sharedmem import _unregister_from_tracker

        _unregister_from_tracker(probe)
        return True

    def test_shutdown_unlinks_the_segment(self):
        shared = SharedArtifactMap.broadcast(_entries(1))
        name = shared.segment_name
        assert self._segment_exists(name)
        shared.shutdown()
        assert not self._segment_exists(name)

    def test_shutdown_is_idempotent(self):
        shared = SharedArtifactMap.broadcast(_entries(1))
        shared.shutdown()
        shared.shutdown()  # must not raise

    def test_context_manager_unlinks_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedArtifactMap.broadcast(_entries(1)) as shared:
                name = shared.segment_name
                raise RuntimeError("boom")
        assert not self._segment_exists(name)

    def test_garbage_collection_backstop(self):
        """Dropping the owner without shutdown must still unlink."""
        shared = SharedArtifactMap.broadcast(_entries(1))
        name = shared.segment_name
        del shared
        assert not self._segment_exists(name)

    def test_worker_view_shutdown_never_unlinks(self):
        with SharedArtifactMap.broadcast(_entries(1)) as shared:
            view = shared.worker_view()
            view.shutdown()
            assert self._segment_exists(shared.segment_name)
