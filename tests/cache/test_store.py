"""Tests for :class:`repro.cache.ArtifactCache`: LRU tier, disk tier,
atomic publication, corruption handling, and concurrent writers."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.cache import ArtifactCache, CachedArtifact
from repro.exceptions import ConfigurationError


def _artifact(nbytes=1024, fill=1, meta=None):
    return CachedArtifact.build(
        {"data": np.full(nbytes // 8, fill, dtype=np.uint64)}, meta or {}
    )


class TestMemoryTier:
    def test_round_trip(self):
        cache = ArtifactCache()
        art = _artifact(meta={"tag": 3})
        cache.put("k", art)
        got = cache.get("k")
        assert got is not None
        assert got.meta == {"tag": 3}
        np.testing.assert_array_equal(got.arrays["data"], art.arrays["data"])

    def test_miss_returns_none_and_counts(self):
        cache = ArtifactCache()
        assert cache.get("absent") is None
        assert cache.stats().misses == 1

    def test_entries_are_read_only(self):
        cache = ArtifactCache()
        cache.put("k", _artifact())
        entry = cache.get("k")
        with pytest.raises(ValueError):
            entry.arrays["data"][0] = 99

    def test_put_copies_protect_against_later_mutation(self):
        cache = ArtifactCache()
        source = np.zeros(4, dtype=np.uint64)
        cache.put("k", CachedArtifact.build({"data": source}))
        entry = cache.get("k")
        assert entry.arrays["data"].flags.writeable is False

    def test_lru_eviction_order(self):
        entry_bytes = _artifact().nbytes
        cache = ArtifactCache(max_memory_bytes=entry_bytes * 2)
        cache.put("a", _artifact(fill=1))
        cache.put("b", _artifact(fill=2))
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", _artifact(fill=3))
        assert cache.peek("b") is None
        assert cache.peek("a") is not None
        assert cache.peek("c") is not None
        assert cache.stats().memory_evictions == 1

    def test_zero_memory_budget_disables_tier(self):
        cache = ArtifactCache(max_memory_bytes=0)
        cache.put("k", _artifact())
        assert cache.peek("k") is None
        assert cache.get("k") is None

    def test_peek_does_not_touch_counters(self):
        cache = ArtifactCache()
        cache.put("k", _artifact())
        before = cache.stats()
        cache.peek("k")
        cache.peek("absent")
        after = cache.stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_get_or_create_runs_factory_once(self):
        cache = ArtifactCache()
        calls = []

        def factory():
            calls.append(1)
            return _artifact()

        cache.get_or_create("k", factory)
        cache.get_or_create("k", factory)
        assert len(calls) == 1

    def test_bytes_saved_accumulates(self):
        cache = ArtifactCache()
        cache.put("k", _artifact(nbytes=2048))
        cache.get("k")
        cache.get("k")
        assert cache.stats().bytes_saved == 2 * 2048

    def test_hit_rate(self):
        cache = ArtifactCache()
        cache.put("k", _artifact())
        cache.get("k")
        cache.get("absent")
        assert cache.stats().hit_rate == 0.5

    def test_rejects_bad_budgets(self):
        with pytest.raises(ConfigurationError):
            ArtifactCache(max_memory_bytes=-1)
        with pytest.raises(ConfigurationError):
            ArtifactCache(max_disk_bytes=0)


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        ArtifactCache(directory=tmp_path).put("k", _artifact(meta={"m": 1}))
        fresh = ArtifactCache(directory=tmp_path)
        got = fresh.get("k")
        assert got is not None and got.meta == {"m": 1}
        assert fresh.stats().disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ArtifactCache(directory=tmp_path).put("k", _artifact())
        fresh = ArtifactCache(directory=tmp_path)
        fresh.get("k")
        assert fresh.peek("k") is not None  # memory tier now warm
        fresh.get("k")
        assert fresh.stats().memory_hits == 1

    def test_meta_preserves_rng_state_round_trip(self, tmp_path):
        """The captured generator state must survive the JSON sidecar,
        resuming the stream exactly where it was captured."""
        rng = np.random.default_rng(3)
        rng.integers(100)  # advance past the seed state
        state = rng.bit_generator.state
        expected = int(rng.integers(2**31))  # the next draw after capture
        ArtifactCache(directory=tmp_path).put(
            "k", CachedArtifact.build({"d": np.ones(2)}, {"rng_state": state})
        )
        got = ArtifactCache(directory=tmp_path).get("k")
        resumed = np.random.default_rng(0)
        resumed.bit_generator.state = got.meta["rng_state"]
        assert int(resumed.integers(2**31)) == expected

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        for i in range(4):
            cache.put(f"k{i}", _artifact(fill=i))
        assert not [p for p in tmp_path.iterdir() if ".tmp-" in p.name]

    def test_size_cap_evicts_oldest_first(self, tmp_path):
        probe = ArtifactCache(directory=tmp_path)
        probe.put("probe", _artifact())
        entry_disk_bytes = probe.stats().disk_bytes
        probe.clear()

        cache = ArtifactCache(
            directory=tmp_path, max_disk_bytes=2 * entry_disk_bytes
        )
        for i, key in enumerate(("a", "b", "c")):
            cache.put(key, _artifact(fill=i))
            os.utime(tmp_path / f"{key}.npz", (i + 1, i + 1))
        cache.put("d", _artifact(fill=9))
        stats = cache.stats()
        assert stats.disk_evictions >= 1
        assert cache._disk_read("d") is not None  # newest always survives
        assert cache._disk_read("a") is None  # oldest goes first

    def test_tiny_cap_never_evicts_newest(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path, max_disk_bytes=1)
        cache.put("only", _artifact())
        assert ArtifactCache(directory=tmp_path).get("only") is not None

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        cache.put("a", _artifact())
        cache.put("b", _artifact())
        cache.clear()
        assert cache.stats().n_disk_entries == 0
        assert cache.get("a") is None


class TestCorruption:
    """Crash-mid-write and torn-pair scenarios must read as misses."""

    def _write_one(self, tmp_path, key="k"):
        ArtifactCache(directory=tmp_path).put(key, _artifact(meta={"m": 1}))

    def test_truncated_payload_is_dropped(self, tmp_path):
        self._write_one(tmp_path)
        payload = tmp_path / "k.npz"
        payload.write_bytes(payload.read_bytes()[:-7])
        cache = ArtifactCache(directory=tmp_path)
        assert cache.get("k") is None
        assert not payload.exists()  # corrupt pair deleted, not reserved

    def test_flipped_payload_byte_is_dropped(self, tmp_path):
        self._write_one(tmp_path)
        payload = tmp_path / "k.npz"
        blob = bytearray(payload.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        payload.write_bytes(bytes(blob))
        assert ArtifactCache(directory=tmp_path).get("k") is None

    def test_torn_pair_sidecar_without_payload(self, tmp_path):
        self._write_one(tmp_path)
        (tmp_path / "k.npz").unlink()
        assert ArtifactCache(directory=tmp_path).get("k") is None

    def test_garbage_sidecar_is_dropped(self, tmp_path):
        self._write_one(tmp_path)
        (tmp_path / "k.json").write_text("{not json")
        assert ArtifactCache(directory=tmp_path).get("k") is None

    def test_key_mismatch_is_dropped(self, tmp_path):
        """A sidecar renamed onto the wrong key must not be served."""
        self._write_one(tmp_path, key="a")
        self._write_one(tmp_path, key="b")
        (tmp_path / "a.json").rename(tmp_path / "stolen.json")
        (tmp_path / "a.npz").rename(tmp_path / "stolen.npz")
        assert ArtifactCache(directory=tmp_path).get("stolen") is None

    def test_wrong_sidecar_version_is_dropped(self, tmp_path):
        self._write_one(tmp_path)
        sidecar = tmp_path / "k.json"
        doc = json.loads(sidecar.read_text())
        doc["version"] = 999
        sidecar.write_text(json.dumps(doc))
        assert ArtifactCache(directory=tmp_path).get("k") is None

    def test_interrupted_writer_leaves_readable_cache(self, tmp_path):
        """A killed writer's temp files never shadow the committed entry."""
        self._write_one(tmp_path)
        # Simulate a crash mid-write: stale temp files from a dead pid.
        (tmp_path / "k.npz.tmp-999-deadbeef").write_bytes(b"partial")
        (tmp_path / "k.json.tmp-999-deadbeef").write_text("partial")
        got = ArtifactCache(directory=tmp_path).get("k")
        assert got is not None and got.meta == {"m": 1}


def _hammer(args):
    directory, worker = args
    cache = ArtifactCache(directory=directory)
    for i in range(8):
        cache.put("shared", _artifact(fill=7))
        got = cache.get("shared")
        if got is None:
            continue  # another writer mid-replace: a miss is legal
        if int(got.arrays["data"][0]) != 7:
            return f"worker {worker} read torn value"
    return None


class TestConcurrentWriters:
    def test_parallel_same_key_writers_never_serve_torn_data(self, tmp_path):
        """N processes hammering one key: every successful read returns
        a fully committed artifact (last-writer-wins, never a mix)."""
        with multiprocessing.get_context("fork").Pool(4) as pool:
            problems = pool.map(_hammer, [(str(tmp_path), w) for w in range(4)])
        assert [p for p in problems if p] == []
        final = ArtifactCache(directory=tmp_path).get("shared")
        assert final is not None
        assert int(final.arrays["data"][0]) == 7


class TestContains:
    def test_memory_hit_without_counter_churn(self):
        cache = ArtifactCache()
        cache.put("k", _artifact())
        before = cache.counters()
        assert cache.contains("k")
        assert not cache.contains("missing")
        assert cache.counters() == before

    def test_disk_hit_verifies_without_promotion(self, tmp_path):
        ArtifactCache(directory=tmp_path).put("k", _artifact())
        cache = ArtifactCache(directory=tmp_path)
        assert cache.contains("k")
        assert cache.stats().n_memory_entries == 0

    def test_corrupt_payload_reads_as_absent(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        cache.put("k", _artifact())
        (tmp_path / "k.npz").write_bytes(b"\x00" * 16)
        fresh = ArtifactCache(directory=tmp_path)
        assert not fresh.contains("k")

    def test_torn_pair_reads_as_absent(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        cache.put("k", _artifact())
        (tmp_path / "k.json").unlink()
        fresh = ArtifactCache(directory=tmp_path)
        assert not fresh.contains("k")


class TestKindBreakdown:
    def test_groups_by_stamped_node_kind(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        cache.put("k1", _artifact(meta={"node_kind": "score"}))
        cache.put("k2", _artifact(meta={"node_kind": "score"}))
        cache.put("k3", _artifact(nbytes=4096, meta={"node_kind": "dataset"}))
        breakdown = cache.disk_kind_breakdown()
        assert breakdown["score"]["entries"] == 2
        assert breakdown["dataset"]["entries"] == 1
        assert breakdown["dataset"]["bytes"] > 0

    def test_sorted_by_descending_bytes(self, tmp_path):
        cache = ArtifactCache(directory=tmp_path)
        cache.put("small", _artifact(nbytes=256, meta={"node_kind": "score"}))
        cache.put("big", _artifact(nbytes=8192, meta={"node_kind": "dataset"}))
        assert list(cache.disk_kind_breakdown()) == ["dataset", "score"]

    def test_legacy_entries_fall_back_to_array_names(self, tmp_path):
        from repro.cache.store import infer_node_kind

        assert infer_node_kind(["pristine"], {}) == "dataset"
        assert infer_node_kind(["corrupted"], {}) == "fault"
        assert infer_node_kind(["values"], {}) == "other"
        cache = ArtifactCache(directory=tmp_path)
        cache.put(
            "legacy",
            CachedArtifact.build({"pristine": np.zeros(8)}),
        )
        assert "dataset" in cache.disk_kind_breakdown()

    def test_memory_only_cache_has_empty_breakdown(self):
        cache = ArtifactCache()
        cache.put("k", _artifact())
        assert cache.disk_kind_breakdown() == {}
