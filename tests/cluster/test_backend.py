"""ClusterBackend against in-thread workers: equivalence and degradation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.cluster import (
    ClusterBackend,
    ClusterError,
    Worker,
    parse_worker_list,
)
from repro.cluster.coordinator import WorkerStats
from repro.exceptions import ConfigurationError
from repro.runtime import SerialBackend, resolve_backend
from repro.runtime.plan import Shard, TrialPlan


@pytest.fixture
def worker():
    """A real Worker served from a daemon thread in this process."""
    w = Worker()
    thread = threading.Thread(target=w.serve_forever, daemon=True)
    thread.start()
    yield w
    w.stop()


def _backend(*workers, **overrides) -> ClusterBackend:
    overrides.setdefault("heartbeat_interval_s", 0.1)
    overrides.setdefault("heartbeat_timeout_s", 2.0)
    return ClusterBackend([w.address for w in workers], **overrides)


def _trial_shard_fn(shard: Shard) -> list:
    return [float(np.random.default_rng(seed).normal()) for seed in shard.seeds]


class TestClusterBackend:
    def test_values_match_serial_bit_for_bit(self, worker):
        plan = TrialPlan(n_trials=17, seed=3, shard_size=4)
        serial = [
            r.values
            for r in SerialBackend().run_shards(_trial_shard_fn, plan.shards)
        ]
        with _backend(worker) as backend:
            results = sorted(
                backend.run_shards(_trial_shard_fn, plan.shards),
                key=lambda r: r.index,
            )
        assert [r.values for r in results] == serial

    def test_lambda_shard_fn_ships(self, worker):
        shards = [Shard(index=i, start=i, stop=i + 1, seeds=(i,)) for i in range(4)]
        with _backend(worker) as backend:
            results = sorted(
                backend.run_shards(lambda s: [s.start * 3], shards),
                key=lambda r: r.index,
            )
        assert [r.values for r in results] == [[0], [3], [6], [9]]

    def test_meta_tuples_travel(self, worker):
        shards = [Shard(index=0, start=0, stop=1, seeds=(1,))]
        with _backend(worker) as backend:
            (result,) = list(
                backend.run_shards(lambda s: ([1.0], {"tag": "x"}), shards)
            )
        assert result.meta == {"tag": "x"}

    def test_function_blob_sent_once_per_connection(self, worker):
        shards = [Shard(index=i, start=i, stop=i + 1, seeds=(i,)) for i in range(6)]

        def fn(shard):
            return [shard.index]

        with _backend(worker) as backend:
            list(backend.run_shards(fn, shards))
            sent_after_first = backend._links[
                f"{worker.address[0]}:{worker.address[1]}"
            ].channel.bytes_sent
            list(backend.run_shards(fn, shards))
            link = backend._links[f"{worker.address[0]}:{worker.address[1]}"]
            assert len(link.sent_fns) == 1  # same fn_id → no re-send
            resend_bytes = link.channel.bytes_sent - sent_after_first
        # The second run shipped only dispatch headers + Shard blobs.
        assert resend_bytes < sent_after_first

    def test_shard_error_raises_cluster_error(self, worker):
        def broken(shard):
            raise ValueError("deliberate")

        shards = [Shard(index=0, start=0, stop=1, seeds=(1,))]
        with _backend(worker) as backend:
            with pytest.raises(ClusterError, match="deliberate"):
                list(backend.run_shards(broken, shards))

    def test_unshippable_fn_degrades_to_serial_with_warning(self, worker):
        import repro.cluster.coordinator as coordinator

        lock = threading.Lock()

        def locked(shard):
            with lock:
                return [shard.index]

        shards = [Shard(index=0, start=0, stop=1, seeds=(1,))]
        coordinator._SHIP_FALLBACK_WARNED = False
        try:
            with _backend(worker) as backend:
                with pytest.warns(RuntimeWarning, match="cannot be shipped"):
                    (result,) = list(backend.run_shards(locked, shards))
                assert result.values == [0]
                # Warn-once: a second degraded run stays silent.
                import warnings as warnings_module

                with warnings_module.catch_warnings():
                    warnings_module.simplefilter("error")
                    list(backend.run_shards(locked, shards))
        finally:
            coordinator._SHIP_FALLBACK_WARNED = False

    def test_no_reachable_worker_raises(self):
        backend = ClusterBackend(
            "127.0.0.1:1", connect_timeout_s=0.5
        )  # port 1: nothing listens
        shards = [Shard(index=0, start=0, stop=1, seeds=(1,))]
        with pytest.raises(ClusterError, match="no cluster worker reachable"):
            list(backend.run_shards(lambda s: [0], shards))

    def test_closed_backend_refuses_work(self, worker):
        backend = _backend(worker)
        backend.close()
        with pytest.raises(ClusterError, match="closed"):
            list(
                backend.run_shards(
                    lambda s: [0], [Shard(index=0, start=0, stop=1, seeds=(1,))]
                )
            )

    def test_empty_shards_is_a_noop(self, worker):
        with _backend(worker) as backend:
            assert list(backend.run_shards(lambda s: [0], [])) == []

    def test_heartbeat_validation(self):
        with pytest.raises(ConfigurationError, match="must exceed"):
            ClusterBackend(
                "127.0.0.1:9", heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5
            )


class TestHandshake:
    def test_protocol_mismatch_rejected(self, worker):
        import socket

        from repro.cluster import shipping
        from repro.cluster.protocol import Channel

        sock = socket.create_connection(worker.address, timeout=5.0)
        channel = Channel(sock)
        channel.send(
            {"type": "hello", "protocol": 999, "python": shipping.python_tag()}
        )
        header, _ = channel.recv()
        assert header["type"] == "reject"
        assert "protocol mismatch" in header["reason"]
        channel.close()

    def test_python_mismatch_rejected(self, worker):
        import socket

        from repro.cluster.protocol import PROTOCOL_VERSION, Channel

        sock = socket.create_connection(worker.address, timeout=5.0)
        channel = Channel(sock)
        channel.send(
            {"type": "hello", "protocol": PROTOCOL_VERSION, "python": "cpython-2.7"}
        )
        header, _ = channel.recv()
        assert header["type"] == "reject"
        assert "python mismatch" in header["reason"]
        channel.close()


class TestParseWorkerList:
    def test_parses_comma_separated_addresses(self):
        assert parse_worker_list("a:1, b:2 ,c:3") == [
            ("a", 1),
            ("b", 2),
            ("c", 3),
        ]

    def test_rejects_missing_port(self):
        with pytest.raises(ConfigurationError, match="not host:port"):
            parse_worker_list("nohost")

    def test_rejects_non_integer_port(self):
        with pytest.raises(ConfigurationError, match="non-integer port"):
            parse_worker_list("host:http")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            parse_worker_list(" , ")


class TestResolveBackend:
    def test_inference_matches_legacy_flags(self):
        assert resolve_backend(None).describe().startswith("SerialBackend")
        assert resolve_backend(None, threads=3).jobs == 3
        assert resolve_backend(None, jobs=2).describe().startswith(
            "ProcessPoolBackend"
        )

    def test_explicit_names(self):
        assert resolve_backend("serial").jobs == 1
        assert resolve_backend("thread", threads=2).jobs == 2
        assert resolve_backend("process", jobs=2).jobs == 2

    def test_cluster_needs_workers(self):
        with pytest.raises(ConfigurationError, match="--workers"):
            resolve_backend("cluster")

    def test_cluster_resolves(self):
        backend = resolve_backend("cluster", workers="127.0.0.1:9999")
        assert isinstance(backend, ClusterBackend)
        assert backend.ships_artifacts and backend.crosses_process_boundary

    def test_workers_without_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="only applies"):
            resolve_backend("serial", workers="127.0.0.1:9999")

    def test_workers_alone_imply_cluster(self):
        assert isinstance(
            resolve_backend(None, workers="127.0.0.1:9999"), ClusterBackend
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            resolve_backend("quantum")


class TestWorkerStats:
    def test_hit_rate(self):
        stats = WorkerStats(address="h:1", local_hits=3, artifact_pulls=1)
        assert stats.cache_hit_rate == 0.75
        assert WorkerStats(address="h:1").cache_hit_rate == 0.0

    def test_as_dict_is_jsonable(self):
        import json

        json.dumps(WorkerStats(address="h:1", elapsed_s=1.23456).as_dict())
