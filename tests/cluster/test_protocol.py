"""Wire framing and the artifact wire format."""

from __future__ import annotations

import socket
import threading

import numpy as np
import pytest

from repro.cache.store import CachedArtifact
from repro.cluster.protocol import (
    Channel,
    ChannelClosed,
    ClusterError,
    pack_artifact,
    unpack_artifact,
)


def _channel_pair() -> tuple[Channel, Channel]:
    a, b = socket.socketpair()
    return Channel(a, name="a"), Channel(b, name="b")


class TestChannel:
    def test_header_round_trips(self):
        a, b = _channel_pair()
        a.send({"type": "hello", "n": 3})
        header, blobs = b.recv()
        assert header == {"type": "hello", "n": 3}
        assert blobs == ()
        a.close(), b.close()

    def test_blobs_round_trip_in_order(self):
        a, b = _channel_pair()
        payload = (b"first", b"", b"x" * 100_000)
        a.send({"type": "task"}, payload)
        _, blobs = b.recv()
        assert blobs == payload
        a.close(), b.close()

    def test_eof_raises_channel_closed(self):
        a, b = _channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv()
        b.close()

    def test_mid_message_eof_raises(self):
        a, b = _channel_pair()
        a.sock.sendall(b"\x00\x00\x01")  # truncated length prefix
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv()
        b.close()

    def test_oversized_header_rejected(self):
        a, b = _channel_pair()
        import struct

        a.sock.sendall(struct.pack("!I", 1 << 30))
        with pytest.raises(ClusterError, match="exceeds protocol cap"):
            b.recv()
        a.close(), b.close()

    def test_undecodable_header_rejected(self):
        a, b = _channel_pair()
        import struct

        junk = b"\xff\xfe{no json"
        a.sock.sendall(struct.pack("!I", len(junk)) + junk)
        with pytest.raises(ClusterError, match="undecodable header"):
            b.recv()
        a.close(), b.close()

    def test_byte_counters_track_traffic(self):
        a, b = _channel_pair()
        a.send({"type": "x"}, (b"1234",))
        b.recv()
        assert a.bytes_sent > 0
        assert b.bytes_received == a.bytes_sent
        a.close(), b.close()

    def test_concurrent_sends_do_not_interleave(self):
        a, b = _channel_pair()
        n_each = 50

        def sender(tag):
            for i in range(n_each):
                a.send({"type": tag, "i": i}, (bytes([i]) * 1000,))

        threads = [
            threading.Thread(target=sender, args=(tag,)) for tag in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        seen = []
        for _ in range(2 * n_each):
            header, blobs = b.recv()
            assert blobs[0] == bytes([header["i"]]) * 1000
            seen.append(header["type"])
        for t in threads:
            t.join()
        assert seen.count("t1") == n_each and seen.count("t2") == n_each
        a.close(), b.close()

    def test_close_is_idempotent(self):
        a, b = _channel_pair()
        a.close()
        a.close()
        b.close()


class TestArtifactWireFormat:
    def _artifact(self) -> CachedArtifact:
        return CachedArtifact.build(
            {
                "pristine": np.arange(12, dtype=np.uint16).reshape(3, 4),
                "noise": np.linspace(0, 1, 5),
            },
            {"kind": "dataset", "seed": 7},
        )

    def test_round_trip_preserves_arrays_and_meta(self):
        artifact = self._artifact()
        header, blob = pack_artifact(artifact)
        out = unpack_artifact(header, blob)
        assert sorted(out.arrays) == sorted(artifact.arrays)
        for name in artifact.arrays:
            np.testing.assert_array_equal(out.arrays[name], artifact.arrays[name])
            assert out.arrays[name].dtype == artifact.arrays[name].dtype
        assert out.meta == artifact.meta

    def test_wire_form_is_deterministic(self):
        artifact = self._artifact()
        header, blob = pack_artifact(artifact)
        header2, blob2 = pack_artifact(unpack_artifact(header, blob))
        assert header2 == header
        assert blob2 == blob

    def test_name_mismatch_rejected(self):
        header, blob = pack_artifact(self._artifact())
        header["names"] = ["tampered"]
        with pytest.raises(ClusterError, match="do not match"):
            unpack_artifact(header, blob)
