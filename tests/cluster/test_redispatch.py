"""Fault tolerance: a SIGKILLed worker's shard re-dispatches, bit-identically.

These tests fork real worker processes through :class:`LocalCluster`
and kill one mid-shard with SIGKILL — no shutdown handshake, no flush.
The coordinator must detect the death (heartbeat silence or connection
reset), re-dispatch the in-flight shard to a survivor, and produce
values bit-identical to a serial run, because every shard is a
deterministic function of its plan seeds.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import LocalCluster
from repro.runtime import SerialBackend
from repro.runtime.plan import Shard


def _slow_shard_fn(shard: Shard) -> list:
    # Slow enough that a mid-run SIGKILL lands while a shard is in
    # flight on every box, fast enough to keep the suite snappy.
    time.sleep(0.25)
    return [float(seed * 3 + shard.index) for seed in shard.seeds]


def _shards(n: int) -> list[Shard]:
    return [
        Shard(index=i, start=i, stop=i + 1, seeds=(100 + i,)) for i in range(n)
    ]


class TestRedispatch:
    def test_sigkilled_worker_shard_reruns_bit_identically(self):
        shards = _shards(8)
        reference = [
            r.values for r in SerialBackend().run_shards(_slow_shard_fn, shards)
        ]
        with LocalCluster(n_workers=2) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0
            )
            killer = threading.Timer(0.4, cluster.kill, args=(0,))
            killer.start()
            try:
                results = sorted(
                    backend.run_shards(_slow_shard_fn, shards),
                    key=lambda r: r.index,
                )
            finally:
                killer.cancel()
                backend.close()
        assert [r.values for r in results] == reference
        stats = backend.stats()
        assert sum(w.redispatches for w in stats.values()) >= 1
        # The survivor carried the rest of the run.
        assert sum(w.shards for w in stats.values()) == len(shards)

    def test_all_workers_dead_falls_back_to_serial(self):
        shards = _shards(4)
        reference = [
            r.values for r in SerialBackend().run_shards(_slow_shard_fn, shards)
        ]
        with LocalCluster(n_workers=1) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.1, heartbeat_timeout_s=1.0
            )
            killer = threading.Timer(0.3, cluster.kill, args=(0,))
            killer.start()
            try:
                with pytest.warns(RuntimeWarning, match="died"):
                    results = sorted(
                        backend.run_shards(_slow_shard_fn, shards),
                        key=lambda r: r.index,
                    )
            finally:
                killer.cancel()
                backend.close()
        assert [r.values for r in results] == reference
