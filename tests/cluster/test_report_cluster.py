"""The acceptance path: a DAG report run over loopback workers is
byte-identical to serial, and artifacts travel by content address."""

from __future__ import annotations

import json

from repro.cache.store import ArtifactCache
from repro.cluster import LocalCluster
from repro.dag.build import json_payload
from repro.dag.report import PANELS_NODE, build_report_graph
from repro.dag.scheduler import DagScheduler


class TestReportOverCluster:
    def test_fig2_report_byte_identical_to_serial(self):
        graph = build_report_graph(["fig2"], quick=True)
        serial = DagScheduler(cache=ArtifactCache())
        reference = json_payload(
            serial.run(graph, targets=(PANELS_NODE,))[PANELS_NODE]
        )
        with LocalCluster(n_workers=2) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.2, heartbeat_timeout_s=5.0
            )
            scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
            panels = json_payload(
                scheduler.run(graph, targets=(PANELS_NODE,))[PANELS_NODE]
            )
            stats = backend.stats()
            backend.close()
        assert json.dumps(panels, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        # Both workers did real work, resolved inputs by key, and
        # published node outputs into their local caches.
        assert all(w.shards > 0 for w in stats.values())
        assert all(w.publishes > 0 for w in stats.values())
        assert sum(w.local_hits for w in stats.values()) > 0
        assert sum(w.artifact_pulls for w in stats.values()) > 0

    def test_cluster_run_is_recoverable_from_the_store(self, tmp_path):
        # Artifacts published by a cluster run survey as done — the
        # same filesystem-recovery contract as every other backend.
        graph = build_report_graph(["fig2"], quick=True)
        cache = ArtifactCache(directory=tmp_path / "store")
        with LocalCluster(n_workers=2) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.2, heartbeat_timeout_s=5.0
            )
            scheduler = DagScheduler(cache=cache, backend=backend)
            scheduler.run(graph, targets=(PANELS_NODE,))
            backend.close()
        survey = DagScheduler(
            cache=ArtifactCache(directory=tmp_path / "store")
        ).survey(graph, targets=(PANELS_NODE,))
        assert survey.n_pending == 0
