"""By-value function shipping: what crosses the TCP boundary."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cluster import shipping

SCALE = 7


def module_level(x):
    return x * 2


def uses_module_global(x):
    return x * SCALE


class TestShipping:
    def test_lambda_round_trips(self):
        fn = shipping.loads(shipping.dumps(lambda x: x + 41))
        assert fn(1) == 42

    def test_closure_cells_round_trip(self):
        offset = 100

        def shifted(x):
            return x + offset

        fn = shipping.loads(shipping.dumps(shifted))
        assert fn(1) == 101

    def test_defaults_and_kwdefaults_round_trip(self):
        def fn(a, b=10, *, c=20):
            return a + b + c

        out = shipping.loads(shipping.dumps(fn))
        assert out(1) == 31
        assert out(1, b=2, c=3) == 6

    def test_recursive_closure_round_trips(self):
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)

        fn = shipping.loads(shipping.dumps(fact))
        assert fn(5) == 120

    def test_module_level_function_ships_by_reference(self):
        blob = shipping.dumps(module_level)
        assert shipping.loads(blob) is module_level
        # Stdlib pickle would have handled it too — no code object inside.
        assert pickle.loads(blob) is module_level

    def test_unimportable_function_carries_referenced_globals(self):
        # This test module is not importable as `tests.cluster…` was
        # never the point — the *captured* path matters: strip the
        # module so the shipped blob must carry SCALE itself.
        fn = uses_module_global
        captured = shipping._referenced_globals(fn.__code__, fn.__globals__)
        assert captured["SCALE"] == 7

    def test_nested_lambdas_ship(self):
        make = lambda k: (lambda x: x * k)  # noqa: E731
        fn = shipping.loads(shipping.dumps(make(3)))
        assert fn(5) == 15

    def test_numpy_closures_ship(self):
        weights = np.arange(4.0)

        def dot(x):
            return float(weights @ x)

        fn = shipping.loads(shipping.dumps(dot))
        assert fn(np.ones(4)) == pytest.approx(6.0)

    def test_unpicklable_closure_raises(self):
        import threading

        lock = threading.Lock()

        def locked(x):
            with lock:
                return x

        with pytest.raises(Exception):
            shipping.dumps(locked)

    def test_blob_id_is_content_addressed(self):
        a = shipping.dumps(module_level)
        assert shipping.blob_id(a) == shipping.blob_id(a)
        assert shipping.blob_id(a) != shipping.blob_id(b"other")

    def test_python_tag_pins_major_minor(self):
        import sys

        tag = shipping.python_tag()
        assert tag == f"cpython-{sys.version_info[0]}.{sys.version_info[1]}"
