"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NGSTDatasetConfig
from repro.data.ngst import generate_walk
from repro.data.otis import blob
from repro.otis.quantize import encode_dn


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; reseed per test."""
    return np.random.default_rng(20030622)


@pytest.fixture
def walk_stack(rng: np.random.Generator) -> np.ndarray:
    """A 32-variant Eq.(1) walk over an 8x8 coordinate grid."""
    config = NGSTDatasetConfig(n_variants=32, sigma=25.0)
    return generate_walk(config, rng, shape=(8, 8))


@pytest.fixture
def flat_stack() -> np.ndarray:
    """A constant 16-variant stack (the easiest correction target)."""
    return np.full((16, 4, 4), 27000, dtype=np.uint16)


@pytest.fixture
def blob_dn(rng: np.random.Generator) -> np.ndarray:
    """The 'Blob' OTIS dataset in its DN storage encoding (32x32)."""
    return encode_dn(blob(32, 32, rng))
