"""Behavioural tests for Algorithm 1 (Algo_NGST)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError, DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.confusion import bit_confusion
from repro.metrics.relative_error import psi


class TestConstruction:
    def test_default_config(self):
        assert AlgoNGST().config.upsilon == 4

    def test_rejects_zero_sensitivity(self):
        with pytest.raises(ConfigurationError, match="sensitivity"):
            AlgoNGST(NGSTConfig(sensitivity=0))

    def test_rejects_scalar_input(self):
        with pytest.raises(DataFormatError):
            AlgoNGST()(np.uint16(5))

    def test_rejects_float_stack(self):
        with pytest.raises(DataFormatError):
            AlgoNGST()(np.zeros((8, 2), dtype=np.float32))


class TestSingleFlipRepair:
    @pytest.mark.parametrize("bit", [10, 12, 14, 15])
    def test_high_bit_flip_on_flat_stack_repaired(self, flat_stack, bit):
        damaged = flat_stack.copy()
        damaged[5, 1, 2] ^= np.uint16(1 << bit)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(damaged)
        assert result.corrected[5, 1, 2] == 27000
        assert result.n_bits_corrected >= 1

    def test_clean_flat_stack_untouched(self, flat_stack):
        result = AlgoNGST(NGSTConfig(sensitivity=80))(flat_stack)
        assert np.array_equal(result.corrected, flat_stack)
        assert result.n_pixels_corrected == 0

    def test_neighbours_not_falsely_corrected(self, flat_stack):
        damaged = flat_stack.copy()
        damaged[5, 1, 2] ^= np.uint16(1 << 14)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(damaged)
        mask = np.ones_like(damaged, dtype=bool)
        mask[5, 1, 2] = False
        assert np.array_equal(result.corrected[mask], flat_stack[mask])

    def test_multiple_isolated_flips_repaired(self, flat_stack):
        damaged = flat_stack.copy()
        damaged[2, 0, 0] ^= np.uint16(1 << 13)
        damaged[9, 3, 3] ^= np.uint16(1 << 15)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(damaged)
        assert np.array_equal(result.corrected, flat_stack)


class TestStatisticalBehaviour:
    def test_improves_psi_on_realistic_faults(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
        assert psi(result.corrected, walk_stack) < psi(corrupted, walk_stack) / 3

    def test_precision_reasonable(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
        conf = bit_confusion(walk_stack, corrupted, result.corrected)
        assert conf.precision > 0.5

    def test_correction_vectors_consistent(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        result = AlgoNGST()(corrupted)
        assert np.array_equal(
            np.bitwise_xor(corrupted, result.correction_vectors),
            result.corrected,
        )

    def test_window_c_never_touched(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.02), seed=5
        ).inject(walk_stack)
        result = AlgoNGST(NGSTConfig(sensitivity=70))(corrupted)
        vectors = result.correction_vectors.astype(np.uint64)
        window_c = result.windows.window_c()
        # No correction bit may fall inside window C at its coordinate.
        assert not np.any(vectors & window_c[None])

    def test_deterministic(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        algo = AlgoNGST()
        first = algo(corrupted)
        second = algo(corrupted)
        assert np.array_equal(first.corrected, second.corrected)

    def test_input_not_mutated(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        snapshot = corrupted.copy()
        AlgoNGST()(corrupted)
        assert np.array_equal(corrupted, snapshot)

    def test_works_on_1d_sequences(self):
        pixels = np.full(64, 27000, dtype=np.uint16)
        pixels[10] ^= np.uint16(1 << 14)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(pixels)
        assert result.corrected[10] == 27000

    def test_global_thresholds_variant(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=3
        ).inject(walk_stack)
        cfg = NGSTConfig(sensitivity=80, per_coordinate_thresholds=False)
        result = AlgoNGST(cfg)(corrupted)
        assert psi(result.corrected, walk_stack) < psi(corrupted, walk_stack)


class TestUpsilonVariants:
    @pytest.mark.parametrize("upsilon", [2, 4, 6, 8])
    def test_all_upsilons_run(self, walk_stack, upsilon):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.005), seed=3
        ).inject(walk_stack)
        result = AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=80))(corrupted)
        assert result.corrected.shape == corrupted.shape

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=63),
        st.sampled_from([30.0, 60.0, 90.0]),
    )
    def test_never_worse_than_raw_on_flat_data(self, bit, index, lam):
        """Property: on constant data a single flip never makes Psi worse."""
        pixels = np.full(64, 20000, dtype=np.uint16)
        damaged = pixels.copy()
        damaged[index] ^= np.uint16(1 << bit)
        result = AlgoNGST(NGSTConfig(sensitivity=lam))(damaged)
        pristine = np.full(64, 20000, dtype=np.uint16)
        assert psi(result.corrected, pristine) <= psi(damaged, pristine)
