"""Behavioural tests for Algo_OTIS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.config import OTISBounds, OTISConfig
from repro.core.algo_otis import AlgoOTIS, spatial_median
from repro.data.otis import blob
from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn


class TestInputValidation:
    def test_rejects_float64(self):
        with pytest.raises(DataFormatError):
            AlgoOTIS()(np.zeros((8, 8)))

    def test_rejects_1d(self):
        with pytest.raises(DataFormatError):
            AlgoOTIS()(np.zeros(8, dtype=np.float32))

    def test_rejects_tiny_band(self):
        with pytest.raises(DataFormatError):
            AlgoOTIS()(np.zeros((2, 8), dtype=np.float32))

    def test_accepts_uint16_dn(self, blob_dn):
        result = AlgoOTIS()(blob_dn)
        assert result.corrected.dtype == np.uint16

    def test_accepts_float32(self):
        field = blob(16, 16)
        result = AlgoOTIS()(field)
        assert result.corrected.dtype == np.float32


class TestBoundsScreen:
    def test_out_of_bounds_repaired(self, blob_dn):
        cfg = OTISConfig(sensitivity=0)
        damaged = blob_dn.copy()
        damaged[4, 4] = np.uint16(60000)  # 240 physical > 200 bound
        result = AlgoOTIS(cfg)(damaged)
        assert result.n_bounds_repairs == 1
        value = float(result.corrected[4, 4]) * cfg.dn_scale
        lo, hi = cfg.bounds.effective()
        assert lo <= value <= hi

    def test_nan_float_repaired(self):
        field = blob(16, 16)
        damaged = field.copy()
        damaged[3, 3] = np.float32(np.nan)
        result = AlgoOTIS(OTISConfig(sensitivity=0))(damaged)
        assert np.isfinite(result.corrected).all()
        assert result.n_bounds_repairs == 1

    def test_inf_float_repaired(self):
        field = blob(16, 16)
        damaged = field.copy()
        damaged[3, 3] = np.float32(np.inf)
        result = AlgoOTIS(OTISConfig(sensitivity=0))(damaged)
        assert np.isfinite(result.corrected).all()

    def test_geographic_bounds_tighten(self, blob_dn):
        bounds = OTISBounds(lower=0.0, upper=200.0, geographic_upper=100.0)
        cfg = OTISConfig(sensitivity=0, bounds=bounds)
        damaged = blob_dn.copy()
        damaged[2, 2] = np.uint16(30000)  # 120 physical: ok globally, not arctic
        result = AlgoOTIS(cfg)(damaged)
        assert result.n_bounds_repairs >= 1

    def test_clean_field_zero_bounds_repairs(self, blob_dn):
        result = AlgoOTIS(OTISConfig(sensitivity=0))(blob_dn)
        assert result.n_bounds_repairs == 0
        assert np.array_equal(result.corrected, blob_dn)


class TestVoterStage:
    def test_isolated_flip_repaired(self, blob_dn):
        damaged = blob_dn.copy()
        damaged[10, 10] ^= np.uint16(1 << 13)
        result = AlgoOTIS(OTISConfig(trend_exemption=False))(damaged)
        assert abs(int(result.corrected[10, 10]) - int(blob_dn[10, 10])) < (1 << 10)

    def test_improves_psi_under_random_faults(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.02), seed=9
        ).inject(blob_dn)
        result = AlgoOTIS()(corrupted)
        pristine = decode_dn(blob_dn)
        assert psi(decode_dn(result.corrected), pristine) < psi(
            decode_dn(corrupted), pristine
        ) / 3

    def test_iterations_help_or_equal(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.05), seed=9
        ).inject(blob_dn)
        pristine = decode_dn(blob_dn)
        one = AlgoOTIS(OTISConfig(iterations=1))(corrupted)
        three = AlgoOTIS(OTISConfig(iterations=3))(corrupted)
        assert psi(decode_dn(three.corrected), pristine) <= psi(
            decode_dn(one.corrected), pristine
        ) * 1.1

    def test_corrections_respect_bounds(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.05), seed=9
        ).inject(blob_dn)
        cfg = OTISConfig()
        result = AlgoOTIS(cfg)(corrupted)
        values = result.corrected.astype(np.float64) * cfg.dn_scale
        lo, hi = cfg.bounds.effective()
        # Every pixel the algorithm touched must land inside bounds.
        touched = result.corrected != corrupted
        assert np.all(values[touched] >= lo)
        assert np.all(values[touched] <= hi)

    def test_upsilon8_runs(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.02), seed=9
        ).inject(blob_dn)
        result = AlgoOTIS(OTISConfig(upsilon=8))(corrupted)
        assert result.corrected.shape == corrupted.shape

    def test_global_thresholds_tile_zero(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.02), seed=9
        ).inject(blob_dn)
        result = AlgoOTIS(OTISConfig(tile=0))(corrupted)
        pristine = decode_dn(blob_dn)
        assert psi(decode_dn(result.corrected), pristine) < psi(
            decode_dn(corrupted), pristine
        )


class TestTrendExemption:
    def test_natural_hotspot_preserved(self):
        # A genuine 3x3 hyper-thermal anomaly must survive preprocessing.
        field = np.full((24, 24), 95.0, dtype=np.float32)
        field[10:13, 10:13] = 180.0
        dn = encode_dn(field)
        result = AlgoOTIS(OTISConfig(trend_exemption=True))(dn)
        centre = float(result.corrected[11, 11]) * 0.004
        assert centre > 150.0

    def test_exemption_counter_reports(self):
        field = np.full((24, 24), 95.0, dtype=np.float32)
        field[10:13, 10:13] = 180.0
        dn = encode_dn(field)
        result = AlgoOTIS(OTISConfig(trend_exemption=True))(dn)
        without = AlgoOTIS(OTISConfig(trend_exemption=False))(dn)
        assert result.n_trend_exemptions >= 0
        # Without the exemption the anomaly is (wrongly) flattened more.
        centre_with = float(result.corrected[11, 11])
        centre_without = float(without.corrected[11, 11])
        assert centre_with >= centre_without


class TestCube:
    def test_cube_processed_per_band(self, blob_dn):
        cube = np.stack([blob_dn, blob_dn, blob_dn])
        result = AlgoOTIS()(cube)
        assert result.corrected.shape == cube.shape

    def test_cube_counts_aggregate(self, blob_dn):
        damaged = blob_dn.copy()
        damaged[4, 4] = np.uint16(60000)
        cube = np.stack([damaged, damaged])
        result = AlgoOTIS(OTISConfig(sensitivity=0))(cube)
        assert result.n_bounds_repairs == 2


class TestSpatialMedian:
    def test_constant_field(self):
        field = np.full((5, 5), 7.0)
        assert np.allclose(spatial_median(field), 7.0)

    def test_excludes_centre(self):
        field = np.zeros((5, 5))
        field[2, 2] = 100.0
        assert spatial_median(field)[2, 2] == 0.0


class TestPropertyBased:
    """Hypothesis invariants on arbitrary DN fields."""

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=st.tuples(
                st.integers(4, 10), st.integers(4, 10)
            ),
        )
    )
    def test_output_always_within_bounds(self, field):
        cfg = OTISConfig()
        result = AlgoOTIS(cfg)(field)
        lo, hi = cfg.bounds.effective()
        values = result.corrected.astype(np.float64) * cfg.dn_scale
        # Every pixel the algorithm *touched* must be in bounds; pixels
        # it left alone keep whatever (possibly out-of-bounds... no:
        # the bounds pre-pass repairs those too).
        assert np.all(values >= lo - cfg.dn_scale)
        assert np.all(values <= hi + cfg.dn_scale)

    @settings(max_examples=15, deadline=None)
    @given(
        hnp.arrays(dtype=np.uint16, shape=(8, 8)),
    )
    def test_deterministic_and_nonmutating(self, field):
        snapshot = field.copy()
        first = AlgoOTIS()(field)
        second = AlgoOTIS()(field)
        assert np.array_equal(first.corrected, second.corrected)
        assert np.array_equal(field, snapshot)

    @settings(max_examples=15, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=(8, 8),
            elements={"min_value": 20000, "max_value": 30000},
        )
    )
    def test_in_bounds_fields_only_voter_changes(self, field):
        """Fields already inside bounds get no bounds repairs."""
        result = AlgoOTIS()(field)
        assert result.n_bounds_repairs == 0
