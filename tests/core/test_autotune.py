"""Tests for ground-truth-free sensitivity selection."""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.autotune import (
    autotune_sensitivity,
    estimate_gamma,
    estimate_sigma,
)
from repro.data.ngst import generate_walk
from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi


def world(sigma, gamma, seed=42, shape=(16, 16)):
    rng = np.random.default_rng(seed)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=sigma), rng, shape
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(gamma), seed=3).inject(
        pristine
    )
    return pristine, corrupted


class TestEstimateSigma:
    def test_recovers_sigma(self):
        _, corrupted = world(sigma=100.0, gamma=0.0)
        assert estimate_sigma(corrupted) == pytest.approx(100.0, rel=0.2)

    def test_robust_to_flips(self):
        _, corrupted = world(sigma=100.0, gamma=0.01)
        assert estimate_sigma(corrupted) == pytest.approx(100.0, rel=0.3)

    def test_zero_sigma(self):
        _, corrupted = world(sigma=0.0, gamma=0.001)
        assert estimate_sigma(corrupted) < 5.0

    def test_rejects_single_variant(self):
        with pytest.raises(DataFormatError):
            estimate_sigma(np.zeros((1, 4), dtype=np.uint16))


class TestEstimateGamma:
    @pytest.mark.parametrize("gamma", [0.001, 0.01, 0.05])
    def test_recovers_gamma(self, gamma):
        _, corrupted = world(sigma=25.0, gamma=gamma)
        sigma_hat = estimate_sigma(corrupted)
        estimate = estimate_gamma(corrupted, sigma_hat)
        assert estimate == pytest.approx(gamma, rel=0.45)

    def test_clean_data_near_zero(self):
        _, corrupted = world(sigma=25.0, gamma=0.0)
        assert estimate_gamma(corrupted, 25.0) < 1e-3

    def test_turbulent_fallback_bits(self):
        _, corrupted = world(sigma=8000.0, gamma=0.01)
        sigma_hat = estimate_sigma(corrupted)
        # Works (falls back to the top two bits) and stays in [0, 0.5].
        estimate = estimate_gamma(corrupted, sigma_hat)
        assert 0.0 <= estimate < 0.5


class TestAutotune:
    @pytest.mark.parametrize(
        "sigma,gamma", [(0.0, 0.01), (25.0, 0.001), (25.0, 0.05), (250.0, 0.01)]
    )
    def test_within_striking_distance_of_oracle(self, sigma, gamma):
        pristine, corrupted = world(sigma=sigma, gamma=gamma)
        result = autotune_sensitivity(corrupted)
        auto = psi(
            AlgoNGST(NGSTConfig(sensitivity=result.sensitivity))(
                corrupted
            ).corrected,
            pristine,
        )
        oracle = min(
            psi(
                AlgoNGST(NGSTConfig(sensitivity=lam))(corrupted).corrected,
                pristine,
            )
            for lam in (10, 30, 50, 70, 90, 100)
        )
        assert auto <= oracle * 1.5 + 1e-12

    def test_result_fields(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        result = autotune_sensitivity(corrupted)
        assert result.sensitivity in (10.0, 30.0, 50.0, 70.0, 90.0, 100.0)
        assert result.estimated_sigma >= 0
        assert 0 <= result.estimated_gamma < 0.5
        assert result.calibration_psi >= 0

    def test_deterministic(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        a = autotune_sensitivity(corrupted, seed=5)
        b = autotune_sensitivity(corrupted, seed=5)
        assert a == b

    def test_custom_grid_respected(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        result = autotune_sensitivity(corrupted, lambda_grid=(40.0, 60.0))
        assert result.sensitivity in (40.0, 60.0)


#: Stacks the estimators must never choke on: any uint16 content, any
#: stack depth >= 2, flat or with coordinates.
def _stacks(min_variants=2):
    return st.tuples(
        st.integers(min_value=min_variants, max_value=8),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=0xFFFF),
        st.randoms(use_true_random=False),
    ).map(
        lambda t: (
            np.asarray(
                [
                    [(t[2] + t[3].randint(-(2**15), 2**15)) & 0xFFFF for _ in range(t[1])]
                    for _ in range(t[0])
                ],
                dtype=np.uint16,
            )
        )
    )


class TestEstimatorProperties:
    """Hypothesis sweeps over the estimator edge cases.

    The estimators run unattended in the online autotuner; a NaN, a
    RuntimeWarning, or an unraised error on a degenerate window would
    poison the Λ trajectory silently.  Every property below is asserted
    under ``warnings.catch_warnings(error)`` so numpy's empty-slice and
    invalid-value warnings fail loudly.
    """

    @settings(max_examples=60, deadline=None)
    @given(stack=_stacks())
    def test_estimates_are_finite_and_warning_free(self, stack):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sigma_hat = estimate_sigma(stack)
            gamma_hat = estimate_gamma(stack, sigma_hat)
        assert np.isfinite(sigma_hat) and sigma_hat >= 0.0
        assert np.isfinite(gamma_hat) and 0.0 <= gamma_hat < 0.5

    @settings(max_examples=30, deadline=None)
    @given(
        value=st.integers(min_value=0, max_value=0xFFFF),
        n=st.integers(min_value=2, max_value=16),
        width=st.integers(min_value=1, max_value=8),
    )
    def test_constant_frames_estimate_exactly_zero(self, value, n, width):
        # σ̂ = 0 and Γ̂ = 0 on a constant stack — no adjacent difference,
        # no top-bit disagreement, and no warnings along the way.
        stack = np.full((n, width), value, dtype=np.uint16)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sigma_hat = estimate_sigma(stack)
            gamma_hat = estimate_gamma(stack, sigma_hat)
        assert sigma_hat == 0.0
        assert gamma_hat == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16), sigma=st.sampled_from([1.0, 25.0, 250.0]))
    def test_fault_free_walks_estimate_gamma_zero(self, seed, sigma):
        rng = np.random.default_rng(seed)
        pristine = generate_walk(
            NGSTDatasetConfig(n_variants=16, sigma=sigma), rng, (4, 4)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sigma_hat = estimate_sigma(pristine)
            gamma_hat = estimate_gamma(pristine, sigma_hat)
        assert gamma_hat < 1e-2

    @settings(max_examples=20, deadline=None)
    @given(
        width=st.integers(min_value=0, max_value=5),
        value=st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_single_variant_stacks_raise_cleanly(self, width, value):
        # One variant (or zero) has no adjacent pair: both estimators
        # must raise DataFormatError instead of warning + NaN.
        shape = (1, width) if width else (1,)
        stack = np.full(shape, value, dtype=np.uint16)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(DataFormatError):
                estimate_sigma(stack)
            with pytest.raises(DataFormatError):
                estimate_gamma(stack, 25.0)
            with pytest.raises(DataFormatError):
                estimate_gamma(stack[:0], 25.0)

    @settings(max_examples=15, deadline=None)
    @given(stack=_stacks())
    def test_estimators_are_pure(self, stack):
        before = stack.copy()
        sigma_a = estimate_sigma(stack)
        gamma_a = estimate_gamma(stack, sigma_a)
        sigma_b = estimate_sigma(stack)
        gamma_b = estimate_gamma(stack, sigma_b)
        assert (sigma_a, gamma_a) == (sigma_b, gamma_b)
        assert stack.tobytes() == before.tobytes()
