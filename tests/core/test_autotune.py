"""Tests for ground-truth-free sensitivity selection."""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.core.autotune import (
    autotune_sensitivity,
    estimate_gamma,
    estimate_sigma,
)
from repro.data.ngst import generate_walk
from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi


def world(sigma, gamma, seed=42, shape=(16, 16)):
    rng = np.random.default_rng(seed)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=sigma), rng, shape
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(gamma), seed=3).inject(
        pristine
    )
    return pristine, corrupted


class TestEstimateSigma:
    def test_recovers_sigma(self):
        _, corrupted = world(sigma=100.0, gamma=0.0)
        assert estimate_sigma(corrupted) == pytest.approx(100.0, rel=0.2)

    def test_robust_to_flips(self):
        _, corrupted = world(sigma=100.0, gamma=0.01)
        assert estimate_sigma(corrupted) == pytest.approx(100.0, rel=0.3)

    def test_zero_sigma(self):
        _, corrupted = world(sigma=0.0, gamma=0.001)
        assert estimate_sigma(corrupted) < 5.0

    def test_rejects_single_variant(self):
        with pytest.raises(DataFormatError):
            estimate_sigma(np.zeros((1, 4), dtype=np.uint16))


class TestEstimateGamma:
    @pytest.mark.parametrize("gamma", [0.001, 0.01, 0.05])
    def test_recovers_gamma(self, gamma):
        _, corrupted = world(sigma=25.0, gamma=gamma)
        sigma_hat = estimate_sigma(corrupted)
        estimate = estimate_gamma(corrupted, sigma_hat)
        assert estimate == pytest.approx(gamma, rel=0.45)

    def test_clean_data_near_zero(self):
        _, corrupted = world(sigma=25.0, gamma=0.0)
        assert estimate_gamma(corrupted, 25.0) < 1e-3

    def test_turbulent_fallback_bits(self):
        _, corrupted = world(sigma=8000.0, gamma=0.01)
        sigma_hat = estimate_sigma(corrupted)
        # Works (falls back to the top two bits) and stays in [0, 0.5].
        estimate = estimate_gamma(corrupted, sigma_hat)
        assert 0.0 <= estimate < 0.5


class TestAutotune:
    @pytest.mark.parametrize(
        "sigma,gamma", [(0.0, 0.01), (25.0, 0.001), (25.0, 0.05), (250.0, 0.01)]
    )
    def test_within_striking_distance_of_oracle(self, sigma, gamma):
        pristine, corrupted = world(sigma=sigma, gamma=gamma)
        result = autotune_sensitivity(corrupted)
        auto = psi(
            AlgoNGST(NGSTConfig(sensitivity=result.sensitivity))(
                corrupted
            ).corrected,
            pristine,
        )
        oracle = min(
            psi(
                AlgoNGST(NGSTConfig(sensitivity=lam))(corrupted).corrected,
                pristine,
            )
            for lam in (10, 30, 50, 70, 90, 100)
        )
        assert auto <= oracle * 1.5 + 1e-12

    def test_result_fields(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        result = autotune_sensitivity(corrupted)
        assert result.sensitivity in (10.0, 30.0, 50.0, 70.0, 90.0, 100.0)
        assert result.estimated_sigma >= 0
        assert 0 <= result.estimated_gamma < 0.5
        assert result.calibration_psi >= 0

    def test_deterministic(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        a = autotune_sensitivity(corrupted, seed=5)
        b = autotune_sensitivity(corrupted, seed=5)
        assert a == b

    def test_custom_grid_respected(self):
        _, corrupted = world(sigma=25.0, gamma=0.01)
        result = autotune_sensitivity(corrupted, lambda_grid=(40.0, 60.0))
        assert result.sensitivity in (40.0, 60.0)
