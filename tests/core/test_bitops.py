"""Unit and property tests for repro.core.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import bitops
from repro.exceptions import DataFormatError

UINT16S = hnp.arrays(
    dtype=np.uint16, shape=hnp.array_shapes(max_dims=3, max_side=8)
)


class TestBitWidth:
    def test_known_widths(self):
        assert bitops.bit_width(np.uint8) == 8
        assert bitops.bit_width(np.uint16) == 16
        assert bitops.bit_width(np.uint32) == 32
        assert bitops.bit_width(np.uint64) == 64

    def test_rejects_signed(self):
        with pytest.raises(DataFormatError):
            bitops.bit_width(np.int16)

    def test_rejects_float(self):
        with pytest.raises(DataFormatError):
            bitops.bit_width(np.float32)


class TestRequireUnsigned:
    def test_accepts_uint16(self):
        arr = np.zeros(3, dtype=np.uint16)
        assert bitops.require_unsigned(arr) is arr

    def test_rejects_list(self):
        with pytest.raises(DataFormatError, match="numpy array"):
            bitops.require_unsigned([1, 2, 3])

    def test_rejects_float_array(self):
        with pytest.raises(DataFormatError, match="unsigned"):
            bitops.require_unsigned(np.zeros(3, dtype=np.float64))


class TestCeilPow2:
    def test_scalar_zero(self):
        assert bitops.ceil_pow2(0) == 1

    def test_scalar_one(self):
        assert bitops.ceil_pow2(1) == 1

    def test_scalar_exact_power(self):
        assert bitops.ceil_pow2(64) == 64

    def test_scalar_above_power(self):
        assert bitops.ceil_pow2(65) == 128

    def test_array(self):
        out = bitops.ceil_pow2(np.array([0, 3, 4, 5, 65535]))
        assert out.tolist() == [1, 4, 4, 8, 65536]

    @given(st.integers(min_value=0, max_value=2**32))
    def test_result_is_enclosing_power(self, value):
        result = int(bitops.ceil_pow2(value))
        assert result & (result - 1) == 0  # a power of two
        assert result >= max(value, 1)
        assert result // 2 < max(value, 1)


class TestMaskAtOrAbove:
    def test_bit0(self):
        assert bitops.mask_at_or_above(1, 16) == 0xFFFF

    def test_bit3(self):
        assert bitops.mask_at_or_above(8, 16) == 0xFFF8

    def test_top_bit(self):
        assert bitops.mask_at_or_above(1 << 15, 16) == 0x8000

    def test_beyond_top_is_empty(self):
        assert bitops.mask_at_or_above(1 << 16, 16) == 0

    def test_rejects_non_power(self):
        with pytest.raises(DataFormatError, match="power of two"):
            bitops.mask_at_or_above(3, 16)

    def test_rejects_zero(self):
        with pytest.raises(DataFormatError, match="power of two"):
            bitops.mask_at_or_above(0, 16)

    def test_rejects_odd_width(self):
        with pytest.raises(DataFormatError, match="nbits"):
            bitops.mask_at_or_above(1, 12)

    def test_array_input(self):
        out = bitops.mask_at_or_above(np.array([1, 2, 4], dtype=np.uint64), 8)
        assert out.tolist() == [0xFF, 0xFE, 0xFC]


class TestPopcountHamming:
    def test_popcount_known(self):
        arr = np.array([0, 1, 3, 0xFFFF], dtype=np.uint16)
        assert bitops.popcount(arr).tolist() == [0, 1, 2, 16]

    def test_hamming_distance_self_is_zero(self):
        arr = np.array([5, 9], dtype=np.uint16)
        assert bitops.hamming_distance(arr, arr).tolist() == [0, 0]

    def test_hamming_distance_known(self):
        a = np.array([0b1010], dtype=np.uint16)
        b = np.array([0b0110], dtype=np.uint16)
        assert bitops.hamming_distance(a, b).tolist() == [2]

    def test_hamming_rejects_dtype_mismatch(self):
        with pytest.raises(DataFormatError, match="mismatch"):
            bitops.hamming_distance(
                np.zeros(2, dtype=np.uint16), np.zeros(2, dtype=np.uint32)
            )

    @given(UINT16S)
    def test_popcount_bounds(self, arr):
        counts = bitops.popcount(arr)
        assert np.all(counts <= 16)
        assert np.all(counts >= 0)


class TestFloatViews:
    def test_roundtrip(self):
        arr = np.array([1.5, -2.25, 0.0], dtype=np.float32)
        assert np.array_equal(
            bitops.bits_to_float32(bitops.float32_to_bits(arr)), arr
        )

    def test_float32_to_bits_rejects_float64(self):
        with pytest.raises(DataFormatError):
            bitops.float32_to_bits(np.zeros(2, dtype=np.float64))

    def test_bits_to_float32_rejects_uint16(self):
        with pytest.raises(DataFormatError):
            bitops.bits_to_float32(np.zeros(2, dtype=np.uint16))

    @given(
        hnp.arrays(
            dtype=np.uint32, shape=hnp.array_shapes(max_dims=2, max_side=6)
        )
    )
    def test_bits_roundtrip_is_identity_on_patterns(self, bits):
        back = bitops.float32_to_bits(
            np.ascontiguousarray(bitops.bits_to_float32(bits))
        )
        assert np.array_equal(back, bits)


class TestBitPlanes:
    def test_bit_plane_msb(self):
        arr = np.array([0x8000, 0x7FFF], dtype=np.uint16)
        assert bitops.bit_plane(arr, 15).tolist() == [1, 0]

    def test_bit_plane_rejects_out_of_range(self):
        with pytest.raises(DataFormatError):
            bitops.bit_plane(np.zeros(2, dtype=np.uint16), 16)

    def test_planes_shape(self):
        arr = np.zeros((3, 4), dtype=np.uint16)
        assert bitops.to_bit_planes(arr).shape == (16, 3, 4)

    def test_plane_zero_is_msb(self):
        arr = np.array([0x8000], dtype=np.uint16)
        planes = bitops.to_bit_planes(arr)
        assert planes[0, 0] == 1
        assert planes[1:, 0].sum() == 0

    @given(UINT16S)
    def test_roundtrip(self, arr):
        planes = bitops.to_bit_planes(arr)
        assert np.array_equal(bitops.from_bit_planes(planes, np.uint16), arr)

    def test_from_planes_rejects_wrong_count(self):
        with pytest.raises(DataFormatError, match="planes"):
            bitops.from_bit_planes(np.zeros((8, 2), dtype=np.uint8), np.uint16)


class TestFlipBits:
    def test_flip_is_xor(self):
        arr = np.array([0b1100], dtype=np.uint16)
        mask = np.array([0b1010], dtype=np.uint16)
        assert bitops.flip_bits(arr, mask).tolist() == [0b0110]

    def test_double_flip_is_identity(self):
        arr = np.array([123, 456], dtype=np.uint16)
        mask = np.array([7, 0xFF00], dtype=np.uint16)
        once = bitops.flip_bits(arr, mask)
        assert np.array_equal(bitops.flip_bits(once, mask), arr)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataFormatError, match="shape"):
            bitops.flip_bits(
                np.zeros(3, dtype=np.uint16), np.zeros(4, dtype=np.uint16)
            )

    @given(UINT16S)
    def test_involution_property(self, arr):
        mask = np.full_like(arr, 0x5A5A)
        assert np.array_equal(
            bitops.flip_bits(bitops.flip_bits(arr, mask), mask), arr
        )


class TestHighestSetBit:
    def test_known_values(self):
        arr = np.array([0, 1, 2, 3, 255, 0x8000], dtype=np.uint16)
        out = bitops.highest_set_bit_value(arr)
        assert out.tolist() == [0, 1, 2, 2, 128, 0x8000]

    @given(st.integers(min_value=1, max_value=0xFFFF))
    def test_is_power_and_bounds(self, value):
        out = int(
            bitops.highest_set_bit_value(np.array([value], dtype=np.uint16))[0]
        )
        assert out & (out - 1) == 0
        assert out <= value < out * 2
