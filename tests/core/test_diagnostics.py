"""Tests for the Υ/Λ tuning diagnostics."""

import numpy as np
import pytest

from repro.config import NGSTConfig
from repro.core.diagnostics import (
    analyze_windows,
    render_profile,
    sensitivity_profile,
)
from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel


class TestAnalyzeWindows:
    def test_windows_partition_word(self, walk_stack):
        diag = analyze_windows(walk_stack)
        total = diag.window_a_bits + diag.window_b_bits + diag.window_c_bits
        assert total == pytest.approx(16.0)

    def test_rejects_zero_sensitivity(self, walk_stack):
        with pytest.raises(DataFormatError):
            analyze_windows(walk_stack, NGSTConfig(sensitivity=0))

    def test_fractions_in_unit_interval(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=1
        ).inject(walk_stack)
        diag = analyze_windows(corrupted)
        assert 0.0 <= diag.voter_survival <= 1.0
        assert 0.0 <= diag.active_pixel_fraction <= 1.0
        assert 0.0 <= diag.correction_pressure <= 1.0

    def test_clean_flat_stack_zero_pressure(self, flat_stack):
        diag = analyze_windows(flat_stack, NGSTConfig(sensitivity=80))
        assert diag.correction_pressure == 0.0


class TestSensitivityProfile:
    def test_voter_survival_grows_with_lambda(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=1
        ).inject(walk_stack)
        profile = sensitivity_profile(corrupted, lambdas=(10.0, 50.0, 100.0))
        survivals = [d.voter_survival for d in profile]
        assert survivals == sorted(survivals)

    def test_correction_pressure_grows_with_lambda(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=1
        ).inject(walk_stack)
        profile = sensitivity_profile(corrupted, lambdas=(10.0, 100.0))
        assert profile[-1].correction_pressure >= profile[0].correction_pressure

    def test_render(self, walk_stack):
        profile = sensitivity_profile(walk_stack, lambdas=(50.0,))
        table = render_profile(profile)
        assert "A bits" in table
        assert "50" in table
