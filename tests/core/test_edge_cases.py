"""Edge-case coverage across the core algorithms."""

import numpy as np
import pytest

from repro.config import NGSTConfig, OTISBounds, OTISConfig
from repro.core import bitops
from repro.core.algo_ngst import AlgoNGST
from repro.core.algo_otis import AlgoOTIS
from repro.core.voter import VoterMatrix
from repro.exceptions import DataFormatError


class TestBitopsOtherWidths:
    def test_popcount_uint8(self):
        arr = np.array([0xFF, 0x0F], dtype=np.uint8)
        assert bitops.popcount(arr).tolist() == [8, 4]

    def test_popcount_uint64(self):
        arr = np.array([(1 << 64) - 1], dtype=np.uint64)
        assert bitops.popcount(arr).tolist() == [64]

    def test_mask_at_or_above_64bit(self):
        mask = bitops.mask_at_or_above(1 << 63, 64)
        assert mask == 1 << 63

    def test_bit_planes_uint32(self):
        arr = np.array([1 << 31], dtype=np.uint32)
        planes = bitops.to_bit_planes(arr)
        assert planes.shape == (32, 1)
        assert planes[0, 0] == 1
        assert np.array_equal(bitops.from_bit_planes(planes, np.uint32), arr)

    def test_highest_set_bit_uint32(self):
        arr = np.array([0x80000000, 0x00000001], dtype=np.uint32)
        out = bitops.highest_set_bit_value(arr)
        assert out.tolist() == [0x80000000, 1]


class TestAlgoNGSTShapes:
    def test_3d_coordinate_stack(self):
        stack = np.full((16, 2, 3, 4), 5000, dtype=np.uint16)
        stack[7, 1, 2, 3] ^= np.uint16(1 << 13)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(stack)
        assert result.corrected[7, 1, 2, 3] == 5000

    def test_minimum_viable_stack(self):
        # Upsilon 2 requires more than 1 variant.
        stack = np.full(4, 1000, dtype=np.uint16)
        result = AlgoNGST(NGSTConfig(upsilon=2, sensitivity=80))(stack)
        assert result.corrected.shape == (4,)

    def test_all_zero_stack(self):
        stack = np.zeros((16, 4), dtype=np.uint16)
        result = AlgoNGST()(stack)
        assert not result.corrected.any()

    def test_all_max_stack(self):
        stack = np.full((16, 4), 0xFFFF, dtype=np.uint16)
        result = AlgoNGST()(stack)
        assert np.all(result.corrected == 0xFFFF)

    def test_single_coordinate_column(self):
        stack = np.full((32, 1), 27000, dtype=np.uint16)
        stack[5, 0] ^= np.uint16(1 << 15)
        result = AlgoNGST(NGSTConfig(sensitivity=80))(stack)
        assert result.corrected[5, 0] == 27000


class TestVoterMatrixUpsilon8:
    def test_offsets(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 8)
        assert matrix.offsets == [1, -1, 2, -2, 3, -3, 4, -4]

    def test_thresholds_shape(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 8)
        thr = matrix.thresholds(50)
        assert thr.shape == (8,) + walk_stack.shape[1:]


class TestAlgoOTISEdges:
    def test_minimum_field(self):
        field = np.full((3, 3), 23750, dtype=np.uint16)
        result = AlgoOTIS()(field)
        assert result.corrected.shape == (3, 3)

    def test_non_square_field(self, rng):
        field = np.full((5, 40), 23750, dtype=np.uint16)
        field[2, 20] ^= np.uint16(1 << 14)
        result = AlgoOTIS(OTISConfig(trend_exemption=False))(field)
        assert result.corrected.shape == (5, 40)

    def test_tile_larger_than_field_is_global(self):
        field = np.full((8, 8), 23750, dtype=np.uint16)
        result = AlgoOTIS(OTISConfig(tile=64))(field)
        assert np.array_equal(result.corrected, field)

    def test_all_pixels_out_of_bounds(self):
        cfg = OTISConfig(sensitivity=0, bounds=OTISBounds(lower=10.0, upper=20.0))
        field = np.full((6, 6), 60000, dtype=np.uint16)  # 240 physical
        result = AlgoOTIS(cfg)(field)
        values = result.corrected.astype(np.float64) * cfg.dn_scale
        assert np.all(values >= 10.0 - cfg.dn_scale)
        assert np.all(values <= 20.0 + cfg.dn_scale)
        assert result.n_bounds_repairs == 36

    def test_float32_negative_values_screened(self):
        field = np.full((6, 6), 95.0, dtype=np.float32)
        field[2, 2] = -50.0
        result = AlgoOTIS(OTISConfig(sensitivity=0))(field)
        lo, _ = OTISConfig().bounds.effective()
        assert result.corrected[2, 2] >= lo
