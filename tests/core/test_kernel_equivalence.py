"""Property tests: every vectorized kernel is bit-identical to its
``_reference_*`` oracle.

PR 2 rewrote the hot-path kernels (correlated flip grid, voter
combiners, bitops, sliding-window baselines, OTIS scan gather/scatter)
as vectorized NumPy with the explicit contract that outputs match the
original implementations bit for bit.  The originals are kept as
``_reference_*`` functions; these tests sweep randomized shapes, dtypes
and seeds against them so any drift in the fast paths is caught exactly,
not approximately.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.baselines import majority, median, smoothing
from repro.core import bitops, voter
from repro.faults.correlated import (
    _reference_correlated_flip_grid,
    correlated_flip_grid,
)
from repro.native import kernel_tier, native_available
from repro.otis import scan

UNSIGNED_DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64]

#: Tier parametrization for the dispatched kernels: the native column
#: skips cleanly when no extension can be built (no compiler / no cffi).
TIER_PARAMS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("reference", id="reference"),
    pytest.param(
        "native",
        id="native",
        marks=pytest.mark.skipif(
            not native_available(), reason="native extension unavailable"
        ),
    ),
]


def _random_unsigned(rng, shape, dtype):
    info = np.iinfo(dtype)
    return rng.integers(0, int(info.max), size=shape, dtype=dtype, endpoint=True)


# ---------------------------------------------------------------------------
# bitops
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
def test_ceil_pow2_matches_reference(rng, dtype):
    values = _random_unsigned(rng, (257,), dtype).astype(np.uint64)
    edges = np.array([0, 1, 2, 3, 4, 5, 1023, 1024, 1025, 2**63], dtype=np.uint64)
    for arr in (values, edges):
        assert np.array_equal(bitops.ceil_pow2(arr), bitops._reference_ceil_pow2(arr))
    assert bitops.ceil_pow2(0) == bitops._reference_ceil_pow2(0) == 1
    assert bitops.ceil_pow2(1000) == bitops._reference_ceil_pow2(1000)


@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("shape", [(), (1,), (13,), (5, 9), (3, 4, 7)])
def test_bit_planes_roundtrip_matches_reference(rng, dtype, shape):
    arr = _random_unsigned(rng, shape, dtype)
    planes = bitops.to_bit_planes(arr)
    ref_planes = bitops._reference_to_bit_planes(arr)
    assert planes.dtype == ref_planes.dtype
    assert np.array_equal(planes, ref_planes)
    back = bitops.from_bit_planes(planes, dtype)
    ref_back = bitops._reference_from_bit_planes(ref_planes, dtype)
    assert back.dtype == ref_back.dtype
    assert np.array_equal(back, ref_back)
    assert np.array_equal(back, arr)


@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
def test_highest_set_bit_value_matches_reference(rng, dtype):
    arr = _random_unsigned(rng, (64,), dtype)
    arr.flat[0] = 0  # the zero sentinel must survive vectorization
    assert np.array_equal(
        bitops.highest_set_bit_value(arr),
        bitops._reference_highest_set_bit_value(arr),
    )


# ---------------------------------------------------------------------------
# voter combiners
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 7, 16])
def test_neighbour_indices_matches_reference(n):
    for offset in range(-2 * n, 2 * n + 1):
        assert np.array_equal(
            voter.neighbour_indices(n, offset),
            voter._reference_neighbour_indices(n, offset),
        )


@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("upsilon", [2, 4, 6, 8])
def test_voter_combiners_match_reference(rng, dtype, upsilon):
    voters = _random_unsigned(rng, (upsilon, 10, 4, 4), dtype)
    # Sparsify so leave-one-out unions actually differ from unanimity.
    voters[rng.random(voters.shape) < 0.5] = 0
    assert np.array_equal(
        voter.VoterMatrix.unanimous(voters), voter._reference_unanimous(voters)
    )
    assert np.array_equal(
        voter.VoterMatrix.grt(voters), voter._reference_grt(voters)
    )


@pytest.mark.parametrize("dtype", [np.uint8, np.uint16])
def test_pruned_no_uint64_blowup_matches_semantics(rng, dtype):
    pixels = _random_unsigned(rng, (12, 6, 6), dtype)
    matrix = voter.VoterMatrix(pixels, upsilon=4)
    thresholds = matrix.thresholds(sensitivity=0.95)
    pruned = matrix.pruned(thresholds)
    assert pruned.dtype == matrix.xors.dtype
    # Semantics: entries <= their way's threshold are zeroed, others kept.
    expanded = np.expand_dims(thresholds, axis=1)
    keep = matrix.xors.astype(np.uint64) > expanded
    assert np.array_equal(pruned, np.where(keep, matrix.xors, 0))
    # A threshold beyond the dtype's range prunes everything.
    huge = np.full_like(thresholds, np.uint64(2) ** 40)
    assert not matrix.pruned(huge).any()


# ---------------------------------------------------------------------------
# correlated fault grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("gamma", [0.02, 0.1, 0.3, 0.45, 0.49])
@pytest.mark.parametrize("max_terms", [1, 2, 4, 8, 64])
def test_correlated_flip_grid_matches_reference(gamma, max_terms):
    shapes = [(1, 1), (1, 17), (9, 1), (2, 2), (3, 7), (17, 23), (31, 64)]
    for seed, shape in enumerate(shapes):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        fast = correlated_flip_grid(shape, gamma, rng_a, max_terms)
        ref = _reference_correlated_flip_grid(shape, gamma, rng_b, max_terms)
        assert fast.dtype == ref.dtype == np.bool_
        assert np.array_equal(fast, ref), (seed, shape, gamma, max_terms)


def test_correlated_flip_grid_matches_reference_large():
    rng_a = np.random.default_rng(20030622)
    rng_b = np.random.default_rng(20030622)
    fast = correlated_flip_grid((256, 256), 0.3, rng_a)
    ref = _reference_correlated_flip_grid((256, 256), 0.3, rng_b)
    assert np.array_equal(fast, ref)


# ---------------------------------------------------------------------------
# sliding-window baselines
# ---------------------------------------------------------------------------

MEDIAN_DTYPES = [np.uint8, np.uint16, np.uint32, np.uint64, np.float32, np.float64]


@pytest.mark.parametrize("dtype", MEDIAN_DTYPES)
@pytest.mark.parametrize("window", [3, 5, 7])
def test_median_smooth_temporal_matches_reference(rng, dtype, window):
    for shape in [(window,), (window + 2, 5), (16, 4, 6)]:
        pixels = (rng.random(shape) * 60000).astype(dtype)
        fast = median.median_smooth_temporal(pixels, window)
        ref = median._reference_median_smooth_temporal(pixels, window)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)


@pytest.mark.parametrize("window", [3, 5])
def test_median_smooth_temporal_nan_poisoning(rng, window):
    pixels = rng.random((9, 6)).astype(np.float32)
    pixels[3, 2] = np.nan
    pixels[0, 0] = np.nan
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ref = median._reference_median_smooth_temporal(pixels, window)
    fast = median.median_smooth_temporal(pixels, window)
    assert np.array_equal(fast, ref, equal_nan=True)


@pytest.mark.parametrize("dtype", [np.uint16, np.uint64, np.float32, np.float64])
@pytest.mark.parametrize("window", [3, 5])
def test_median_smooth_spatial_matches_reference(rng, dtype, window):
    for shape in [(window, window), (8, 9), (3, 12, 11)]:
        if min(shape[-2:]) < window:
            continue
        field = (rng.random(shape) * 60000).astype(dtype)
        fast = median.median_smooth_spatial(field, window)
        ref = median._reference_median_smooth_spatial(field, window)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)


@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("window", [3, 5])
def test_majority_vote_window_matches_reference(rng, dtype, window):
    for shape in [(window,), (7, 6), (16, 4, 4)]:
        if shape[0] < window:
            continue
        pixels = _random_unsigned(rng, shape, dtype)
        fast = majority.majority_vote_window(pixels, window)
        ref = majority._reference_majority_vote_window(pixels, window)
        assert fast.dtype == ref.dtype
        assert np.array_equal(fast, ref)


@pytest.mark.parametrize("dtype", [np.uint16, np.float32, np.float64])
def test_weighted_window_smooth_matches_reference(rng, dtype):
    # Float accumulation order is part of the contract: the vectorized
    # path must produce bit-identical floats, not merely close ones.
    for shape in [(5,), (8, 6), (16, 3, 5)]:
        pixels = (rng.random(shape) * 1000).astype(dtype)
        for weights in (np.ones(3), np.exp(-np.abs(np.arange(-2, 3)) / 1.0)):
            if shape[0] < len(weights):
                continue
            fast = smoothing._weighted_window_smooth(pixels, weights)
            ref = smoothing._reference_weighted_window_smooth(pixels, weights)
            assert fast.dtype == ref.dtype
            assert np.array_equal(fast, ref)


# ---------------------------------------------------------------------------
# OTIS scan gather/scatter
# ---------------------------------------------------------------------------

SCAN_CONFIGS = [
    scan.ScanConfig(frame_rows=12, frame_cols=20, step_rows=4),
    scan.ScanConfig(frame_rows=9, frame_cols=5, step_rows=3),
    scan.ScanConfig(frame_rows=7, frame_cols=11, step_rows=2),
    scan.ScanConfig(frame_rows=6, frame_cols=4, step_rows=3),
]


def _corrupted_frames(config, scene_rows, seed):
    r = np.random.default_rng(seed)
    scene = (r.random((scene_rows, config.frame_cols)) * 60000).astype(np.uint16)
    frames = scan.scan_scene(scene, config)
    out = []
    for f in frames:
        dn = f.dn.copy()
        mask = r.random(dn.shape) < 0.02
        bits = r.integers(0, 16, size=int(mask.sum()), dtype=np.uint16)
        dn[mask] ^= (np.uint16(1) << bits).astype(np.uint16)
        out.append(scan.Frame(origin_row=f.origin_row, dn=dn))
    return out


@pytest.mark.parametrize("config", SCAN_CONFIGS)
def test_observation_stacks_match_reference(config):
    for seed, scene_rows in enumerate(
        (config.frame_rows, config.frame_rows + 3 * config.step_rows)
    ):
        frames = _corrupted_frames(config, scene_rows, seed)
        n_rows = max(f.origin_row + config.frame_rows for f in frames)
        stack, counts = scan._observation_stacks(frames, config, n_rows)
        ref_stack, ref_counts = scan._reference_observation_stacks(
            frames, config, n_rows
        )
        assert np.array_equal(stack, ref_stack)
        assert np.array_equal(counts, ref_counts)


@pytest.mark.parametrize("config", SCAN_CONFIGS)
def test_cross_frame_preprocess_matches_reference(config):
    if config.revisits < 3:
        pytest.skip("needs >= 3 revisits")
    for seed, scene_rows in enumerate(
        (config.frame_rows, config.frame_rows * 3 + 1)
    ):
        frames = _corrupted_frames(config, scene_rows, seed + 10)
        for min_margin in (1, 2):
            fast = scan.cross_frame_preprocess(frames, config, min_margin)
            ref = scan._reference_cross_frame_preprocess(frames, config, min_margin)
            assert len(fast) == len(ref)
            for fa, fb in zip(fast, ref):
                assert fa.origin_row == fb.origin_row
                assert np.array_equal(fa.dn, fb.dn)


@pytest.mark.parametrize("config", SCAN_CONFIGS)
def test_mosaic_matches_reference(config):
    for seed, scene_rows in enumerate(
        (config.frame_rows, config.frame_rows * 4 + 1)
    ):
        frames = _corrupted_frames(config, scene_rows, seed + 20)
        assert np.array_equal(
            scan.mosaic(frames, config), scan._reference_mosaic(frames, config)
        )


def test_observation_stacks_unobserved_row_error():
    config = scan.ScanConfig(frame_rows=4, frame_cols=3, step_rows=2)
    frames = [scan.Frame(origin_row=6, dn=np.zeros((4, 3), np.uint16))]
    for fn in (scan._observation_stacks, scan._reference_observation_stacks):
        with pytest.raises(Exception, match="ground row 0 never observed"):
            fn(frames, config, 10)


# ---------------------------------------------------------------------------
# kernel tiers (PR 7): every dispatched kernel is byte-identical across
# native / numpy / reference, on every dtype, odd shape and edge value
# ---------------------------------------------------------------------------


def _on_tier(tier, fn, *args, **kwargs):
    with kernel_tier(tier):
        return fn(*args, **kwargs)


@pytest.mark.parametrize("tier", TIER_PARAMS)
@pytest.mark.parametrize("gamma", [0.02, 0.3, 0.45, 0.49])
@pytest.mark.parametrize("max_terms", [1, 2, 8, 64])
def test_correlated_tier_identity(tier, gamma, max_terms):
    for seed, shape in enumerate([(1, 1), (1, 17), (9, 1), (5, 7), (48, 64)]):
        got = _on_tier(
            tier,
            correlated_flip_grid,
            shape,
            gamma,
            np.random.default_rng(seed),
            max_terms,
        )
        want = _on_tier(
            "reference",
            correlated_flip_grid,
            shape,
            gamma,
            np.random.default_rng(seed),
            max_terms,
        )
        assert got.dtype == want.dtype == np.bool_
        assert np.array_equal(got, want), (tier, shape, gamma, max_terms)


@pytest.mark.parametrize("tier", TIER_PARAMS)
@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("shape", [(), (1,), (13,), (5, 9), (3, 4, 7), (0, 3)])
def test_bit_planes_tier_identity(rng, tier, dtype, shape):
    arr = _random_unsigned(rng, shape, dtype)
    planes = _on_tier(tier, bitops.to_bit_planes, arr)
    want = _on_tier("reference", bitops.to_bit_planes, arr)
    assert planes.dtype == want.dtype
    assert np.array_equal(planes, want)
    back = _on_tier(tier, bitops.from_bit_planes, planes, dtype)
    assert back.dtype == np.dtype(dtype)
    assert np.array_equal(back, arr)


@pytest.mark.parametrize("tier", TIER_PARAMS)
@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("upsilon", [2, 3, 4, 7])
def test_voter_combiner_tier_identity(rng, tier, dtype, upsilon):
    for shape in [(upsilon, 9, 5), (upsilon, 4, 0, 3)]:
        voters = _random_unsigned(rng, shape, dtype)
        voters[rng.random(voters.shape) < 0.5] = 0
        for combiner in (voter.VoterMatrix.unanimous, voter.VoterMatrix.grt):
            got = _on_tier(tier, combiner, voters)
            want = _on_tier("reference", combiner, voters)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want), (tier, combiner.__name__, shape)


@pytest.mark.parametrize("tier", TIER_PARAMS)
@pytest.mark.parametrize("dtype", UNSIGNED_DTYPES)
@pytest.mark.parametrize("window", [3, 5, 15, 17])
def test_majority_window_tier_identity(rng, tier, dtype, window):
    # window 17 exceeds the C bit-sliced counter's capacity, so the
    # native tier must demote that call to NumPy and still match.
    for shape in [(window,), (window + 4, 6), (19, 3, 4)]:
        if shape[0] < window:
            continue
        pixels = _random_unsigned(rng, shape, dtype)
        got = _on_tier(tier, majority.majority_vote_window, pixels, window)
        want = _on_tier("reference", majority.majority_vote_window, pixels, window)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want), (tier, shape, window)


@pytest.mark.parametrize("tier", TIER_PARAMS)
@pytest.mark.parametrize(
    "dtype", [np.uint8, np.uint16, np.uint64, np.float32, np.float64]
)
def test_weighted_smooth_tier_identity(rng, tier, dtype):
    # Bit-identical floats, not merely close ones: accumulation order
    # and the absence of FMA contraction are part of the contract.
    # uint64 exercises the accepts-predicate demotion path.
    for shape in [(5,), (8, 6), (16, 3, 5)]:
        pixels = (rng.random(shape) * 1000).astype(dtype)
        for weights in (
            np.ones(3),
            np.exp(-np.abs(np.arange(-2, 3)) / 1.0),
            1.0 / (1.0 + np.arange(-2, 3, dtype=np.float64) ** 2),
        ):
            if shape[0] < len(weights):
                continue
            got = _on_tier(tier, smoothing._weighted_window_smooth, pixels, weights)
            want = _on_tier(
                "reference", smoothing._weighted_window_smooth, pixels, weights
            )
            assert got.dtype == want.dtype
            assert np.array_equal(got, want), (tier, shape, len(weights))


@pytest.mark.parametrize("tier", TIER_PARAMS)
def test_smoother_catalogue_tier_identity(rng, tier):
    pixels = _random_unsigned(rng, (12, 7, 5), np.uint16)
    for smooth in (
        lambda p: smoothing.mean_smooth(p, 5),
        lambda p: smoothing.negative_exponential_smooth(p, 5),
        lambda p: smoothing.inverse_square_smooth(p, 5),
        lambda p: smoothing.bisquare_smooth(p, 5),
        lambda p: majority.majority_vote_window(p, 5),
    ):
        got = _on_tier(tier, smooth, pixels)
        want = _on_tier("reference", smooth, pixels)
        assert np.array_equal(got, want)
