"""Tests for the NGST/OTIS preprocessing façades."""

import numpy as np
import pytest

from repro.config import NGSTConfig, OTISConfig
from repro.core.preprocessor import NGSTPreprocessor, OTISPreprocessor
from repro.exceptions import HeaderSanityError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.fits.file import read_fits_bytes, write_hdu
from repro.metrics.relative_error import psi


class TestNGSTStackPath:
    def test_zero_sensitivity_passthrough(self, walk_stack):
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
        outcome = pre.process_stack(walk_stack)
        assert outcome.data is walk_stack
        assert outcome.result is None

    def test_positive_sensitivity_corrects(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=1
        ).inject(walk_stack)
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=80))
        outcome = pre.process_stack(corrupted)
        assert outcome.result is not None
        assert psi(outcome.data, walk_stack) < psi(corrupted, walk_stack)


class TestNGSTFitsPath:
    def test_clean_fits_roundtrip(self, walk_stack):
        raw = write_hdu(walk_stack)
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=80))
        encoded, outcome = pre.process_fits(raw)
        assert outcome.sanity is not None and outcome.sanity.ok
        decoded = read_fits_bytes(encoded)[0].physical_data()
        assert np.array_equal(decoded, outcome.data)

    def test_zero_sensitivity_preserves_data_bit_exact(self, walk_stack):
        raw = write_hdu(walk_stack)
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
        encoded, outcome = pre.process_fits(raw)
        decoded = read_fits_bytes(encoded)[0].physical_data()
        assert np.array_equal(decoded, walk_stack)

    def test_damaged_header_repaired(self, walk_stack):
        raw = bytearray(write_hdu(walk_stack))
        # Flip the high bit of a keyword character in card 2 (BITPIX).
        raw[80] ^= 0x80
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
        encoded, outcome = pre.process_fits(bytes(raw))
        assert outcome.sanity.n_repairs >= 1
        decoded = read_fits_bytes(encoded)[0].physical_data()
        assert np.array_equal(decoded, walk_stack)

    def test_unrecoverable_header_raises(self, walk_stack):
        raw = write_hdu(walk_stack)
        # Destroy every block: no END card anywhere.
        raw = raw[:2880].replace(b"END", b"XXX") + raw[2880:]
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=0))
        with pytest.raises(HeaderSanityError):
            pre.process_fits(raw)

    def test_preprocessed_fits_corrects_pixels(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=1
        ).inject(walk_stack)
        raw = write_hdu(corrupted)
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=80))
        encoded, outcome = pre.process_fits(raw)
        assert psi(outcome.data, walk_stack) < psi(corrupted, walk_stack)


class TestOTISPreprocessor:
    def test_processes_dn_field(self, blob_dn):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.02), seed=2
        ).inject(blob_dn)
        pre = OTISPreprocessor(OTISConfig())
        outcome = pre.process(corrupted)
        assert outcome.result is not None
        assert outcome.data.shape == corrupted.shape

    def test_zero_sensitivity_still_screens_bounds(self, blob_dn):
        damaged = blob_dn.copy()
        damaged[1, 1] = np.uint16(60000)
        pre = OTISPreprocessor(OTISConfig(sensitivity=0))
        outcome = pre.process(damaged)
        assert outcome.result.n_bounds_repairs == 1
