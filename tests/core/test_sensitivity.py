"""Tests for the Λ → Φ mapping of §3.2."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sensitivity import phi_rank
from repro.exceptions import ConfigurationError


class TestPhiRank:
    def test_reference_point_lambda80(self):
        # The paper's formula anchors Λ = 80 at Φ = N/4.
        assert phi_rank(80, 64) == 16

    def test_monotone_in_lambda(self):
        ranks = [phi_rank(lam, 64) for lam in (1, 20, 40, 60, 80, 100)]
        assert ranks == sorted(ranks)

    def test_small_lambda_is_strict(self):
        assert phi_rank(1, 64) < phi_rank(80, 64)

    def test_max_lambda_is_most_lenient(self):
        assert phi_rank(100, 64) > phi_rank(80, 64)

    def test_clipped_to_at_least_one(self):
        assert phi_rank(0.01, 8) >= 1

    def test_clipped_to_n(self):
        assert phi_rank(100, 4) <= 4

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            phi_rank(0, 64)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            phi_rank(-5, 64)

    def test_rejects_above_100(self):
        with pytest.raises(ConfigurationError):
            phi_rank(101, 64)

    def test_rejects_tiny_n(self):
        with pytest.raises(ConfigurationError):
            phi_rank(50, 1)

    @given(
        st.floats(min_value=0.01, max_value=100),
        st.integers(min_value=2, max_value=4096),
    )
    def test_always_a_valid_rank(self, lam, n):
        rank = phi_rank(lam, n)
        assert 1 <= rank <= n
        assert isinstance(rank, int)

    @given(st.integers(min_value=8, max_value=1024))
    def test_monotonicity_property(self, n):
        previous = 0
        for lam in (1, 25, 50, 75, 100):
            rank = phi_rank(lam, n)
            assert rank >= previous
            previous = rank
