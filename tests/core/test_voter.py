"""Tests for the Υ-way XOR voter matrix."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.voter import VoterMatrix, neighbour_indices, reflect_index
from repro.exceptions import ConfigurationError, DataFormatError


class TestReflectIndex:
    def test_interior_unchanged(self):
        assert reflect_index(3, 10) == 3

    def test_negative_reflects(self):
        assert reflect_index(-1, 10) == 1
        assert reflect_index(-2, 10) == 2

    def test_past_end_reflects(self):
        assert reflect_index(10, 10) == 8
        assert reflect_index(11, 10) == 7

    def test_edge_not_repeated(self):
        # Reflection must not map -1 onto 0 (that would duplicate the edge).
        assert reflect_index(-1, 5) == 1

    def test_rejects_tiny_length(self):
        with pytest.raises(ConfigurationError):
            reflect_index(0, 1)

    @given(st.integers(-100, 100), st.integers(2, 50))
    def test_always_in_range(self, index, length):
        assert 0 <= reflect_index(index, length) < length


class TestNeighbourIndices:
    def test_forward_offset(self):
        idx = neighbour_indices(5, 1)
        assert idx.tolist() == [1, 2, 3, 4, 3]

    def test_backward_offset(self):
        idx = neighbour_indices(5, -1)
        assert idx.tolist() == [1, 0, 1, 2, 3]

    def test_offset_two(self):
        idx = neighbour_indices(6, 2)
        assert idx.tolist() == [2, 3, 4, 5, 4, 3]


class TestVoterMatrixConstruction:
    def test_xor_shape(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        assert matrix.xors.shape == (4,) + walk_stack.shape

    def test_offsets_alternate(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 6)
        assert matrix.offsets == [1, -1, 2, -2, 3, -3]

    def test_identical_pixels_give_zero_xors(self, flat_stack):
        matrix = VoterMatrix(flat_stack, 4)
        assert not matrix.xors.any()

    def test_xor_content_forward(self):
        pixels = np.array([1, 2, 4, 8, 16, 32], dtype=np.uint16)
        matrix = VoterMatrix(pixels, 2)
        assert matrix.xors[0, 0] == (1 ^ 2)
        assert matrix.xors[0, 4] == (16 ^ 32)

    def test_rejects_odd_upsilon(self, walk_stack):
        with pytest.raises(ConfigurationError):
            VoterMatrix(walk_stack, 3)

    def test_rejects_zero_upsilon(self, walk_stack):
        with pytest.raises(ConfigurationError):
            VoterMatrix(walk_stack, 0)

    def test_rejects_too_few_variants(self):
        with pytest.raises(DataFormatError):
            VoterMatrix(np.zeros(2, dtype=np.uint16), 4)

    def test_rejects_float_input(self):
        with pytest.raises(DataFormatError):
            VoterMatrix(np.zeros(8, dtype=np.float32), 4)


class TestThresholds:
    def test_shape_per_coordinate(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        thr = matrix.thresholds(80, per_coordinate=True)
        assert thr.shape == (4,) + walk_stack.shape[1:]

    def test_shape_global(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        thr = matrix.thresholds(80, per_coordinate=False)
        assert thr.shape == (4,)

    def test_all_powers_of_two(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        thr = matrix.thresholds(50)
        assert np.all((thr & (thr - 1)) == 0)
        assert np.all(thr >= 1)

    def test_flat_stack_minimal_thresholds(self, flat_stack):
        matrix = VoterMatrix(flat_stack, 4)
        thr = matrix.thresholds(80)
        assert np.all(thr == 1)

    def test_higher_sensitivity_lower_or_equal_threshold(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        strict = matrix.thresholds(10)
        lenient = matrix.thresholds(100)
        assert np.all(lenient <= strict)


class TestPruning:
    def test_prunes_at_or_below_threshold(self):
        pixels = np.array([100, 100, 100, 228, 100, 100], dtype=np.uint16)
        matrix = VoterMatrix(pixels, 2)
        thr = np.array([64, 64], dtype=np.uint64)
        pruned = matrix.pruned(thr)
        # XORs of value 0 and of 100^228=184 > 64 survives; zeros pruned.
        assert pruned.max() == (100 ^ 228)
        assert (pruned[pruned > 0] > 64).all()

    def test_threshold_way_count_checked(self, walk_stack):
        matrix = VoterMatrix(walk_stack, 4)
        with pytest.raises(DataFormatError):
            matrix.pruned(np.ones(3, dtype=np.uint64))


class TestCombiners:
    def test_unanimous_is_and(self):
        voters = np.array([[0b1110], [0b0111], [0b1111]], dtype=np.uint16)
        assert VoterMatrix.unanimous(voters).tolist() == [0b0110]

    def test_grt_is_all_but_one(self):
        voters = np.array(
            [[0b1000], [0b1000], [0b1000], [0b0000]], dtype=np.uint16
        )
        # Bit 3 asserted by 3 of 4 voters -> GRT sets it.
        assert VoterMatrix.grt(voters).tolist() == [0b1000]

    def test_grt_requires_quorum(self):
        voters = np.array(
            [[0b1000], [0b1000], [0b0000], [0b0000]], dtype=np.uint16
        )
        assert VoterMatrix.grt(voters).tolist() == [0]

    def test_grt_upsilon2_falls_back_to_unanimity(self):
        voters = np.array([[0b1000], [0b0000]], dtype=np.uint16)
        assert VoterMatrix.grt(voters).tolist() == [0]
        both = np.array([[0b1000], [0b1000]], dtype=np.uint16)
        assert VoterMatrix.grt(both).tolist() == [0b1000]

    @given(
        hnp.arrays(dtype=np.uint16, shape=(4, 5)),
    )
    def test_unanimous_subset_of_grt(self, voters):
        una = VoterMatrix.unanimous(voters)
        grt = VoterMatrix.grt(voters)
        assert np.all((una & grt) == una)
