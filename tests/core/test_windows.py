"""Tests for the A/B/C bit-window masks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.windows import BitWindows
from repro.exceptions import DataFormatError


def windows_from(values, nbits=16):
    return BitWindows.from_thresholds(np.array(values, dtype=np.uint64), nbits)


class TestFromThresholds:
    def test_scalar_masks(self):
        w = windows_from([4, 16])
        assert int(w.lsb_mask) == 0xFFFC  # bits >= 4
        assert int(w.msb_mask) == 0xFFF0  # bits >= 16

    def test_min_max_selection(self):
        w = windows_from([16, 4, 8, 8])
        assert int(w.lsb_mask) == 0xFFFC
        assert int(w.msb_mask) == 0xFFF0

    def test_per_coordinate_masks(self):
        thr = np.array([[1, 256], [4, 1024]], dtype=np.uint64)  # (ways, coords)
        w = BitWindows.from_thresholds(thr, 16)
        assert w.lsb_mask.shape == (2,)
        assert int(w.lsb_mask[0]) == 0xFFFF
        assert int(w.msb_mask[1]) == 0xFC00

    def test_rejects_scalar_thresholds(self):
        with pytest.raises(DataFormatError):
            BitWindows.from_thresholds(np.uint64(4), 16)


class TestWindowPartition:
    def test_windows_partition_word(self):
        w = windows_from([8, 128])
        union = int(w.window_a()) | int(w.window_b()) | int(w.window_c())
        assert union == 0xFFFF
        assert int(w.window_a()) & int(w.window_b()) == 0
        assert int(w.window_b()) & int(w.window_c()) == 0
        assert int(w.window_a()) & int(w.window_c()) == 0

    def test_equal_thresholds_empty_window_b(self):
        w = windows_from([32, 32])
        assert int(w.window_b()) == 0

    def test_threshold_one_empty_window_c(self):
        w = windows_from([1, 64])
        assert int(w.window_c()) == 0

    def test_beyond_top_all_window_c(self):
        w = windows_from([1 << 16, 1 << 16])
        assert int(w.window_c()) == 0xFFFF

    @given(
        st.integers(0, 16),
        st.integers(0, 16),
    )
    def test_partition_property(self, e1, e2):
        w = windows_from([1 << e1, 1 << e2])
        a, b, c = int(w.window_a()), int(w.window_b()), int(w.window_c())
        assert a | b | c == 0xFFFF
        assert a & b == b & c == a & c == 0


class TestCombine:
    def test_window_b_requires_unanimity(self):
        w = windows_from([2, 0x4000])  # B covers bits 1..13
        unanimous = np.array([0b0100], dtype=np.uint64)
        grt = np.array([0b1100], dtype=np.uint64)
        corr = w.combine(unanimous, grt)
        assert corr.tolist() == [0b0100]

    def test_window_a_accepts_grt(self):
        w = windows_from([2, 0x4000])
        unanimous = np.array([0], dtype=np.uint64)
        grt = np.array([0x8000], dtype=np.uint64)
        assert w.combine(unanimous, grt).tolist() == [0x8000]

    def test_window_c_blocked_even_if_unanimous(self):
        w = windows_from([16, 0x4000])
        unanimous = np.array([0b1111], dtype=np.uint64)  # bits 0-3 < 16
        grt = np.array([0b1111], dtype=np.uint64)
        assert w.combine(unanimous, grt).tolist() == [0]

    def test_combine_broadcasts_over_stack(self):
        w = windows_from([2, 0x4000])
        unanimous = np.zeros((5, 3), dtype=np.uint64)
        grt = np.zeros((5, 3), dtype=np.uint64)
        assert w.combine(unanimous, grt).shape == (5, 3)
