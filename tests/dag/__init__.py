"""Tests for the repro.dag campaign orchestrator."""
