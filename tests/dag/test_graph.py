"""Tests for TaskNode/TaskGraph: validation, topology, content keys."""

import numpy as np
import pytest

from repro.dag import NODE_KINDS, TaskGraph, TaskNode
from repro.dag.node import TaskContext, normalize_output
from repro.exceptions import ConfigurationError, DagError


def _run(ctx):
    return {"x": np.zeros(1)}


def make_node(name, deps=(), kind="score", key_parts=None):
    return TaskNode(
        name=name,
        kind=kind,
        run=_run,
        inputs=tuple(deps),
        key_parts=key_parts if key_parts is not None else ("t", name),
    )


class TestTaskNode:
    def test_rejects_empty_name_and_kind(self):
        with pytest.raises(ConfigurationError, match="name"):
            make_node("")
        with pytest.raises(ConfigurationError, match="kind"):
            make_node("a", kind="")

    def test_rejects_duplicate_inputs_and_self_dependency(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            make_node("a", deps=("b", "b"))
        with pytest.raises(ConfigurationError, match="itself"):
            make_node("a", deps=("a",))

    def test_identity_ignores_run_function(self):
        one = make_node("a", key_parts=("p",))
        two = TaskNode(
            name="a", kind="score", run=lambda ctx: {"x": np.ones(1)},
            key_parts=("p",),
        )
        assert one.identity() == two.identity()

    def test_identity_tracks_structure(self):
        base = make_node("a", key_parts=("p",))
        assert base.identity() != make_node("a", key_parts=("q",)).identity()
        assert base.identity() != make_node("a", deps=("d",), key_parts=("p",)).identity()

    def test_kind_vocabulary_is_stable(self):
        assert NODE_KINDS == (
            "dataset", "fault", "score", "aggregate", "figure", "experiment"
        )

    def test_context_is_loud_on_typos(self):
        node = make_node("a", deps=("b",))
        ctx = TaskContext(
            node=node, inputs={}, output_key="0" * 64,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(DagError, match="declared inputs"):
            ctx.input("b")

    def test_normalize_output_rejects_scalars(self):
        with pytest.raises(DagError, match="must return"):
            normalize_output(make_node("a"), 1.0)


class TestTaskGraph:
    def test_duplicate_name_is_error_but_ensure_dedupes(self):
        graph = TaskGraph("g")
        graph.add(make_node("a"))
        with pytest.raises(ConfigurationError, match="already has"):
            graph.add(make_node("a"))
        assert graph.ensure(make_node("a")) is graph.node("a")
        assert len(graph) == 1

    def test_ensure_rejects_structural_collision(self):
        graph = TaskGraph("g")
        graph.add(make_node("a", key_parts=("p",)))
        with pytest.raises(ConfigurationError, match="structurally different"):
            graph.ensure(make_node("a", key_parts=("q",)))

    def test_merge_shares_upstream_nodes(self):
        left, right = TaskGraph("l"), TaskGraph("r")
        for graph in (left, right):
            graph.add(make_node("shared", kind="dataset"))
        left.add(make_node("x", deps=("shared",)))
        right.add(make_node("y", deps=("shared",)))
        left.merge(right)
        assert sorted(left) == ["shared", "x", "y"]

    def test_unknown_dependency_is_loud(self):
        graph = TaskGraph("g")
        graph.add(make_node("a", deps=("ghost",)))
        with pytest.raises(ConfigurationError, match="unknown node 'ghost'"):
            graph.validate()

    def test_cycle_detection_names_the_path(self):
        graph = TaskGraph("cyc")
        graph.add(make_node("p", deps=("q",)))
        graph.add(make_node("q", deps=("p",)))
        with pytest.raises(ConfigurationError, match="cycle.*(p -> q -> p|q -> p -> q)"):
            graph.topo_order()

    def test_topo_order_respects_edges(self):
        graph = TaskGraph("g")
        graph.add(make_node("c", deps=("a", "b")))
        graph.add(make_node("a"))
        graph.add(make_node("b", deps=("a",)))
        order = graph.topo_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_sinks_and_dependents(self):
        graph = TaskGraph("g")
        graph.add(make_node("a"))
        graph.add(make_node("b", deps=("a",)))
        assert graph.sinks() == ("b",)
        assert graph.dependents()["a"] == ("b",)


class TestOutputKeys:
    def test_explicit_key_wins(self):
        graph = TaskGraph("g")
        graph.add(
            TaskNode(name="d", kind="dataset", run=_run, explicit_key="k" * 64)
        )
        assert graph.output_key("d") == "k" * 64

    def test_upstream_change_re_addresses_subtree(self):
        def keys(seed_parts):
            graph = TaskGraph("g")
            graph.add(make_node("root", key_parts=seed_parts))
            graph.add(make_node("mid", deps=("root",)))
            graph.add(make_node("leaf", deps=("mid",)))
            return {n: graph.output_key(n) for n in graph}

        before, after = keys(("v1",)), keys(("v2",))
        assert before["root"] != after["root"]
        assert before["mid"] != after["mid"]
        assert before["leaf"] != after["leaf"]

    def test_sibling_keys_unaffected_by_each_other(self):
        graph = TaskGraph("g")
        graph.add(make_node("root"))
        graph.add(make_node("l", deps=("root",), key_parts=("l",)))
        graph.add(make_node("r", deps=("root",), key_parts=("r",)))
        assert graph.output_key("l") != graph.output_key("r")


class TestDot:
    def test_dot_lists_nodes_edges_and_done_state(self):
        graph = TaskGraph("g")
        graph.add(make_node("a", kind="dataset"))
        graph.add(make_node("b", deps=("a",)))
        dot = graph.to_dot(done={"a"})
        assert dot.startswith('digraph "g" {')
        assert '"a" -> "b";' in dot
        assert dot.count("peripheries=2") == 1
