"""Crash/resume behavior at every node-state boundary.

The scheduler's recovery contract: completion state is *only* what the
artifact store can verify.  These tests materialise each way a run can
be interrupted — killed after the payload but before the sidecar,
killed mid-node (no files at all), or a completed artifact corrupted
later — and check that a rerun re-executes exactly the invalidated
subtree, nothing more, with final outputs identical to an
uninterrupted run.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactCache
from repro.dag import DagScheduler, TaskGraph, TaskNode
from repro.runtime import Telemetry
from repro.runtime.telemetry import NodeCompleted

from tests.dag.test_scheduler import add_value_node, collect_events, diamond


def disk_scheduler(directory, telemetry=None):
    """A scheduler whose only state is the on-disk store — what a fresh
    process sees after the previous one was killed."""
    return DagScheduler(
        cache=ArtifactCache(max_memory_bytes=0, directory=Path(directory)),
        telemetry=telemetry,
    )


def executed(events):
    return {e.name for e in events if isinstance(e, NodeCompleted) and not e.from_store}


def restored(events):
    return {e.name for e in events if isinstance(e, NodeCompleted) and e.from_store}


def run_resumed(directory, build):
    """Re-run *build*'s graph against the store, returning what ran."""
    graph = TaskGraph("g")
    build(graph)
    telemetry = Telemetry()
    events = collect_events(telemetry)
    outputs = disk_scheduler(directory, telemetry).run(graph)
    return outputs, executed(events), restored(events)


class TestKillBoundaries:
    def test_kill_after_payload_before_sidecar(self, tmp_path):
        """The payload/sidecar pair is published payload-first; a kill
        between the two renames must read as 'node never ran'."""
        graph = TaskGraph("g")
        diamond(graph)
        scheduler = disk_scheduler(tmp_path)
        scheduler.run(graph)
        key = graph.output_key("b")
        (tmp_path / f"{key}.json").unlink()  # sidecar never landed
        assert (tmp_path / f"{key}.npz").exists()
        outputs, ran, replayed = run_resumed(tmp_path, diamond)
        assert ran == {"b", "d"}
        assert replayed == {"a", "c"}
        assert float(outputs["d"].arrays["x"][0]) == 112.0

    def test_kill_mid_node_leaves_no_trace(self, tmp_path):
        """A node killed before any file lands is simply pending; the
        completed frontier before it survives untouched."""
        first = TaskGraph("g")
        diamond(first)
        # Simulate the kill: only a and b ever completed.
        disk_scheduler(tmp_path).run(first, targets=("b",))
        outputs, ran, replayed = run_resumed(tmp_path, diamond)
        assert replayed == {"a", "b"}
        assert ran == {"c", "d"}
        assert float(outputs["d"].arrays["x"][0]) == 112.0

    def test_corrupt_payload_invalidates_only_its_subtree(self, tmp_path):
        """Flip bytes in one completed artifact: the store's SHA check
        rejects it and exactly that node plus descendants re-run."""
        graph = TaskGraph("g")
        diamond(graph)
        disk_scheduler(tmp_path).run(graph)
        payload = tmp_path / f"{graph.output_key('c')}.npz"
        payload.write_bytes(b"\x00" * 32)
        outputs, ran, replayed = run_resumed(tmp_path, diamond)
        assert ran == {"c", "d"}
        assert replayed == {"a", "b"}
        assert float(outputs["d"].arrays["x"][0]) == 112.0

    def test_corrupt_root_re_executes_everything(self, tmp_path):
        graph = TaskGraph("g")
        diamond(graph)
        disk_scheduler(tmp_path).run(graph)
        (tmp_path / f"{graph.output_key('a')}.npz").write_bytes(b"junk")
        _, ran, replayed = run_resumed(tmp_path, diamond)
        assert ran == {"a", "b", "c", "d"}
        assert replayed == set()

    def test_failed_node_resumes_after_fix(self, tmp_path):
        """A mid-run node exception publishes nothing for that node; a
        rerun with the bug fixed restores the survivors and finishes."""

        def build_broken(graph):
            add_value_node(graph, "a", kind="dataset")
            add_value_node(graph, "good", deps=("a",), value=5.0)

            def boom(ctx):
                raise RuntimeError("flaky")

            graph.add(
                TaskNode(name="bad", kind="score", run=boom, inputs=("a",),
                         key_parts=("fixable",))
            )

        def build_fixed(graph):
            add_value_node(graph, "a", kind="dataset")
            add_value_node(graph, "good", deps=("a",), value=5.0)

            def ok(ctx):
                return {"x": np.array([2.0 + float(ctx.array("a", "x")[0])])}

            graph.add(
                TaskNode(name="bad", kind="score", run=ok, inputs=("a",),
                         key_parts=("fixable",))
            )

        broken = TaskGraph("g")
        build_broken(broken)
        with pytest.raises(Exception, match="flaky"):
            disk_scheduler(tmp_path).run(broken)
        outputs, ran, replayed = run_resumed(tmp_path, build_fixed)
        assert replayed == {"a", "good"}
        assert ran == {"bad"}
        assert float(outputs["bad"].arrays["x"][0]) == 3.0

    def test_resumed_output_is_byte_identical(self, tmp_path):
        """Interrupted-then-resumed equals uninterrupted, byte for byte."""
        reference_dir = tmp_path / "ref"
        resumed_dir = tmp_path / "res"
        everything = ("a", "b", "c", "d")
        ref_graph = TaskGraph("g")
        diamond(ref_graph)
        reference = disk_scheduler(reference_dir).run(
            ref_graph, targets=everything
        )
        partial = TaskGraph("g")
        diamond(partial)
        disk_scheduler(resumed_dir).run(partial, targets=("c",))
        resumed_graph = TaskGraph("g")
        diamond(resumed_graph)
        resumed = disk_scheduler(resumed_dir).run(
            resumed_graph, targets=everything
        )
        for name in everything:
            assert (
                reference[name].arrays["x"].tobytes()
                == resumed[name].arrays["x"].tobytes()
            )


def linear_chain_strategy():
    """Small random layered DAGs: node i may depend on any subset of
    earlier nodes."""
    return st.integers(min_value=2, max_value=7).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.sets(st.integers(min_value=0, max_value=n - 2), max_size=3)
                if n > 1 else st.just(set()),
                min_size=n, max_size=n,
            ),
            st.sets(st.integers(min_value=0, max_value=n - 1)),
        )
    )


class TestRecoveryProperties:
    @settings(max_examples=25, deadline=None)
    @given(spec=linear_chain_strategy())
    def test_survey_matches_recursive_doneness_rule(self, spec):
        """For any DAG and any set of lost artifacts, the survey marks
        done exactly the nodes whose artifact survives and whose
        ancestors are all done — and a rerun executes the complement."""
        n, raw_deps, lost_indexes = spec

        def build(graph):
            for i in range(n):
                deps = tuple(f"n{d}" for d in sorted(raw_deps[i]) if d < i)
                add_value_node(graph, f"n{i}", deps=deps, value=float(i))

        with tempfile.TemporaryDirectory() as directory:
            graph = TaskGraph("g")
            build(graph)
            disk_scheduler(directory).run(graph)
            lost = {f"n{i}" for i in lost_indexes}
            for name in lost:
                (Path(directory) / f"{graph.output_key(name)}.npz").unlink()

            expected_done = {}
            for name in graph.topo_order():
                expected_done[name] = name not in lost and all(
                    expected_done[dep] for dep in graph.node(name).inputs
                )
            expected = {name for name, ok in expected_done.items() if ok}

            survey = disk_scheduler(directory).survey(graph)
            assert survey.done == expected

            _, ran, replayed = run_resumed(directory, build)
            assert ran == set(graph.topo_order()) - expected
            assert replayed == expected
