"""Tests for DagScheduler: execution, surveys, failure transport."""

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.dag import DagScheduler, TaskGraph, TaskNode
from repro.exceptions import ConfigurationError, DagError
from repro.runtime import Telemetry, ThreadPoolBackend, TrialRuntime
from repro.runtime.telemetry import DagCompleted, DagStarted, NodeCompleted


def add_value_node(graph, name, deps=(), value=1.0, kind="score"):
    """value + sum of dependency outputs, as a one-element array."""

    def run(ctx):
        total = float(value) + sum(
            float(ctx.array(dep, "x")[0]) for dep in ctx.node.inputs
        )
        return {"x": np.array([total])}

    return graph.add(
        TaskNode(
            name=name, kind=kind, run=run, inputs=tuple(deps),
            key_parts=("value-node", name, value),
        )
    )


def diamond(graph):
    add_value_node(graph, "a", value=1.0, kind="dataset")
    add_value_node(graph, "b", deps=("a",), value=10.0)
    add_value_node(graph, "c", deps=("a",), value=100.0)
    add_value_node(graph, "d", deps=("b", "c"), value=0.0, kind="aggregate")


def collect_events(telemetry):
    events = []
    telemetry.subscribe(events.append)
    return events


class TestExecution:
    def test_diamond_computes_through_dependencies(self):
        graph = TaskGraph("g")
        diamond(graph)
        outputs = DagScheduler().run(graph)
        assert float(outputs["d"].arrays["x"][0]) == (1 + 10) + (1 + 100)

    def test_targets_run_only_the_ancestor_closure(self):
        graph = TaskGraph("g")
        diamond(graph)
        telemetry = Telemetry()
        events = collect_events(telemetry)
        DagScheduler(telemetry=telemetry).run(graph, targets=("b",))
        ran = {e.name for e in events if isinstance(e, NodeCompleted)}
        assert ran == {"a", "b"}

    def test_unknown_target_is_loud(self):
        graph = TaskGraph("g")
        diamond(graph)
        with pytest.raises(ConfigurationError, match="no node named"):
            DagScheduler().run(graph, targets=("ghost",))

    def test_thread_backend_matches_serial(self):
        serial_graph, threaded_graph = TaskGraph("g"), TaskGraph("g")
        diamond(serial_graph)
        diamond(threaded_graph)
        serial = DagScheduler().run(serial_graph)
        threaded = DagScheduler(backend=ThreadPoolBackend(4)).run(threaded_graph)
        assert np.array_equal(serial["d"].arrays["x"], threaded["d"].arrays["x"])

    def test_seeded_node_rng_is_deterministic(self):
        def build():
            graph = TaskGraph("g")
            graph.add(
                TaskNode(
                    name="noise", kind="dataset",
                    run=lambda ctx: {"x": ctx.rng.normal(size=4)},
                    seed=np.random.SeedSequence(7), key_parts=("noise",),
                )
            )
            return DagScheduler().run(graph)["noise"].arrays["x"]

        assert np.array_equal(build(), build())

    def test_node_kind_stamped_into_meta(self):
        graph = TaskGraph("g")
        diamond(graph)
        outputs = DagScheduler().run(graph, targets=("a",))
        assert outputs["a"].meta["node_kind"] == "dataset"


class TestFailureTransport:
    def test_failure_aborts_after_wave_and_names_node(self):
        graph = TaskGraph("g")
        add_value_node(graph, "a", kind="dataset")

        def boom(ctx):
            raise ValueError("torpedoed")

        graph.add(
            TaskNode(name="bad", kind="score", run=boom, inputs=("a",),
                     key_parts=("bad",))
        )
        add_value_node(graph, "good", deps=("a",), value=5.0)
        cache = ArtifactCache()
        scheduler = DagScheduler(cache=cache)
        with pytest.raises(DagError, match="bad.*ValueError: torpedoed") as exc:
            scheduler.run(graph)
        assert "torpedoed" in str(exc.value)
        # The sibling in the same wave still published before the abort,
        # so a fixed rerun only has the broken subtree left.
        assert scheduler.survey(graph).done >= {"a", "good"}

    def test_bad_return_type_is_a_dag_error(self):
        graph = TaskGraph("g")
        graph.add(
            TaskNode(name="scalar", kind="score", run=lambda ctx: 3.5,
                     key_parts=("scalar",))
        )
        with pytest.raises(DagError, match="must return"):
            DagScheduler().run(graph)


class TestSurvey:
    def test_fresh_store_is_cold(self):
        graph = TaskGraph("g")
        diamond(graph)
        survey = DagScheduler().survey(graph)
        assert survey.n_done == 0
        assert survey.temperature == 0.0
        assert [len(w) for w in survey.waves()] == [1, 2, 1]

    def test_completed_store_is_warm(self):
        graph = TaskGraph("g")
        diamond(graph)
        scheduler = DagScheduler()
        scheduler.run(graph)
        survey = scheduler.survey(graph)
        assert survey.done == {"a", "b", "c", "d"}
        assert survey.temperature == 1.0
        assert survey.waves() == []
        assert survey.by_kind() == {
            "dataset": (1, 0), "score": (2, 0), "aggregate": (1, 0)
        }

    def test_recover_replays_without_running(self):
        graph = TaskGraph("g")
        diamond(graph)
        cache = ArtifactCache()
        DagScheduler(cache=cache).run(graph)
        telemetry = Telemetry()
        events = collect_events(telemetry)
        DagScheduler(cache=cache, telemetry=telemetry).run(graph)
        completed = [e for e in events if isinstance(e, NodeCompleted)]
        assert len(completed) == 4
        assert all(e.from_store for e in completed)
        done = [e for e in events if isinstance(e, DagCompleted)]
        assert done[0].n_run == 0 and done[0].n_restored == 4

    def test_recover_false_forces_recompute(self):
        graph = TaskGraph("g")
        diamond(graph)
        cache = ArtifactCache()
        DagScheduler(cache=cache).run(graph)
        telemetry = Telemetry()
        events = collect_events(telemetry)
        DagScheduler(cache=cache, telemetry=telemetry).run(graph, recover=False)
        completed = [e for e in events if isinstance(e, NodeCompleted)]
        assert all(not e.from_store for e in completed)

    def test_started_event_reports_restored_count(self):
        graph = TaskGraph("g")
        diamond(graph)
        cache = ArtifactCache()
        DagScheduler(cache=cache).run(graph, targets=("b",))
        telemetry = Telemetry()
        events = collect_events(telemetry)
        DagScheduler(cache=cache, telemetry=telemetry).run(graph)
        started = [e for e in events if isinstance(e, DagStarted)][0]
        assert started.n_nodes == 4 and started.n_restored == 2


class TestForRuntime:
    def test_shares_runtime_seams(self):
        cache = ArtifactCache()
        telemetry = Telemetry()
        backend = ThreadPoolBackend(2)
        runtime = TrialRuntime(backend=backend, telemetry=telemetry, cache=cache)
        scheduler = DagScheduler.for_runtime(runtime)
        assert scheduler.cache is cache
        assert scheduler.backend is backend
        assert scheduler.telemetry is telemetry
