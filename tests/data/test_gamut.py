"""Tests for the Figure 5 gamut datasets."""

import numpy as np
import pytest

from repro.data.gamut import BACKGROUND_FLOOR, gamut_dataset, gamut_means
from repro.exceptions import ConfigurationError


class TestGamutMeans:
    def test_spans_gamut(self):
        means = gamut_means(16)
        assert means[0] == BACKGROUND_FLOOR
        assert means[-1] == 65535

    def test_monotone(self):
        means = gamut_means(10)
        assert np.all(np.diff(means) > 0)

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            gamut_means(1)


class TestGamutDataset:
    def test_starts_near_mean(self, rng):
        walk = gamut_dataset(30000, rng, sigma=0.0)
        assert np.all(walk == 30000)

    def test_floor_enforced(self, rng):
        walk = gamut_dataset(0, rng, sigma=0.0)
        assert walk.min() >= BACKGROUND_FLOOR

    def test_floor_enforced_under_noise(self, rng):
        walk = gamut_dataset(100, rng, sigma=5000.0)
        assert walk.min() >= BACKGROUND_FLOOR

    def test_top_of_gamut_truncated(self, rng):
        walk = gamut_dataset(65535, rng, sigma=5000.0)
        assert walk.max() <= 65535

    def test_rejects_out_of_gamut_mean(self, rng):
        with pytest.raises(ConfigurationError):
            gamut_dataset(70000, rng)

    def test_shape_with_coordinates(self, rng):
        walk = gamut_dataset(10000, rng, n_variants=8, shape=(4, 4))
        assert walk.shape == (8, 4, 4)
