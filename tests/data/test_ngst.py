"""Tests for the Eq. (1) NGST dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NGSTDatasetConfig
from repro.data.ngst import (
    U16_MAX,
    generate_image_stack,
    generate_walk,
    synthetic_sky,
)
from repro.exceptions import ConfigurationError


class TestGenerateWalk:
    def test_shape_1d(self, rng):
        walk = generate_walk(NGSTDatasetConfig(n_variants=16), rng)
        assert walk.shape == (16,)
        assert walk.dtype == np.uint16

    def test_shape_with_coordinates(self, rng):
        walk = generate_walk(NGSTDatasetConfig(n_variants=8), rng, shape=(3, 5))
        assert walk.shape == (8, 3, 5)

    def test_starts_at_initial_value(self, rng):
        cfg = NGSTDatasetConfig(initial_value=12345)
        walk = generate_walk(cfg, rng, shape=(4,))
        assert np.all(walk[0] == 12345)

    def test_sigma_zero_is_constant(self, rng):
        walk = generate_walk(NGSTDatasetConfig(sigma=0.0), rng, shape=(4,))
        assert np.all(walk == walk[0])

    def test_increments_match_sigma(self, rng):
        cfg = NGSTDatasetConfig(n_variants=64, sigma=100.0, initial_value=30000)
        walk = generate_walk(cfg, rng, shape=(64,))
        diffs = np.diff(walk.astype(np.float64), axis=0)
        assert diffs.std() == pytest.approx(100.0, rel=0.1)

    def test_overflow_truncated(self, rng):
        cfg = NGSTDatasetConfig(
            n_variants=64, sigma=8000.0, initial_value=60000
        )
        walk = generate_walk(cfg, rng, shape=(16,))
        assert walk.max() <= U16_MAX

    def test_background_floor_respected(self, rng):
        cfg = NGSTDatasetConfig(
            n_variants=64, sigma=8000.0, initial_value=1000, background_floor=32
        )
        walk = generate_walk(cfg, rng, shape=(16,))
        assert walk.min() >= 32

    def test_deterministic_under_seed(self):
        cfg = NGSTDatasetConfig(n_variants=8)
        a = generate_walk(cfg, np.random.default_rng(1), shape=(4,))
        b = generate_walk(cfg, np.random.default_rng(1), shape=(4,))
        assert np.array_equal(a, b)

    def test_coordinates_independent(self, rng):
        cfg = NGSTDatasetConfig(n_variants=32, sigma=200.0)
        walk = generate_walk(cfg, rng, shape=(2,))
        assert not np.array_equal(walk[:, 0], walk[:, 1])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=64))
    def test_variant_count_property(self, n):
        cfg = NGSTDatasetConfig(n_variants=n)
        walk = generate_walk(cfg, np.random.default_rng(0), shape=(2,))
        assert walk.shape[0] == n


class TestSyntheticSky:
    def test_shape(self, rng):
        frame = synthetic_sky(32, 48, rng)
        assert frame.shape == (32, 48)

    def test_background_level(self, rng):
        frame = synthetic_sky(64, 64, rng, background=500.0, n_sources=0)
        assert np.allclose(frame, 500.0)

    def test_sources_add_flux(self, rng):
        frame = synthetic_sky(64, 64, rng, background=100.0, n_sources=10)
        assert frame.max() > 100.0

    def test_rejects_empty_frame(self, rng):
        with pytest.raises(ConfigurationError):
            synthetic_sky(0, 10, rng)


class TestGenerateImageStack:
    def test_shape(self, rng):
        cfg = NGSTDatasetConfig(n_variants=8)
        stack = generate_image_stack(cfg, rng, 16, 16)
        assert stack.shape == (8, 16, 16)
        assert stack.dtype == np.uint16

    def test_custom_base_used(self, rng):
        base = np.full((8, 8), 5000.0)
        cfg = NGSTDatasetConfig(n_variants=4, sigma=0.0)
        stack = generate_image_stack(cfg, rng, 8, 8, base=base)
        assert np.all(stack == 5000)

    def test_base_shape_validated(self, rng):
        with pytest.raises(ConfigurationError):
            generate_image_stack(
                NGSTDatasetConfig(), rng, 8, 8, base=np.zeros((4, 4))
            )
