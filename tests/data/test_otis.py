"""Tests for the synthetic OTIS datasets (Blob / Stripe / Spots)."""

import numpy as np
import pytest

from repro.data.otis import (
    BACKGROUND,
    DATASET_NAMES,
    PHYSICAL_MAX,
    blob,
    make_dataset,
    spots,
    stripe,
)
from repro.exceptions import ConfigurationError


@pytest.mark.parametrize("generator", [blob, stripe, spots])
class TestCommonProperties:
    def test_shape_and_dtype(self, generator):
        field = generator(32, 48)
        assert field.shape == (32, 48)
        assert field.dtype == np.float32

    def test_within_physical_bounds(self, generator):
        field = generator(64, 64)
        assert field.min() >= 1.0
        assert field.max() <= PHYSICAL_MAX

    def test_deterministic_default_seed(self, generator):
        assert np.array_equal(generator(16, 16), generator(16, 16))

    def test_custom_rng_changes_field(self, generator):
        a = generator(16, 16, np.random.default_rng(10))
        b = generator(16, 16, np.random.default_rng(11))
        assert not np.array_equal(a, b)

    def test_rejects_tiny_field(self, generator):
        with pytest.raises(ConfigurationError):
            generator(4, 64)


class TestMorphologies:
    def test_blob_mostly_flat_with_dark_spots(self):
        field = blob(64, 64)
        assert np.median(field) == pytest.approx(BACKGROUND, rel=0.15)
        assert field.min() < BACKGROUND - 10  # dark spots exist

    def test_stripe_centre_turbulent(self):
        field = stripe(64, 64)
        centre = field[:, 24:40]
        flanks = np.concatenate([field[:, :16], field[:, -16:]], axis=1)
        assert centre.std() > 3 * flanks.std()

    def test_spots_more_variable_than_blob(self):
        assert spots(64, 64).std() > blob(64, 64).std()

    def test_spots_has_bright_and_dark(self):
        field = spots(64, 64)
        assert field.max() > BACKGROUND + 20
        assert field.min() < BACKGROUND - 20


class TestMakeDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_by_name(self, name):
        field = make_dataset(name, 16, 16)
        assert field.shape == (16, 16)

    def test_case_insensitive(self):
        assert make_dataset("Blob", 16, 16).shape == (16, 16)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            make_dataset("nebula", 16, 16)
