"""Tests for the machine-checkable reproduction claims."""

from pathlib import Path

import pytest

from repro.experiments.claims import (
    CLAIMS,
    ClaimVerdict,
    render_verdicts,
    verify_claims,
)
from repro.experiments.common import ExperimentResult

RESULTS_JSON = Path(__file__).parent.parent.parent / "results_full.json"


def minimal_fig3(lambda0=0.001, lambda100=1.0):
    panel = ExperimentResult("fig3", "t", "sensitivity", "ms")
    panel.add("Algo_NGST", [0.0, 50.0, 100.0], [lambda0, lambda100 / 2, lambda100])
    return panel


class TestVerifyClaims:
    def test_missing_panels_fail_gracefully(self):
        verdicts = verify_claims([])
        assert len(verdicts) == len(CLAIMS)
        assert all(not v.passed for v in verdicts)
        assert all("missing" in v.detail for v in verdicts)

    def test_fig3_claim_passes_on_good_shape(self):
        verdicts = verify_claims([minimal_fig3()])
        fig3 = next(v for v in verdicts if v.claim_id == "fig3-overhead")
        assert fig3.passed

    def test_fig3_claim_fails_on_flat_overhead(self):
        verdicts = verify_claims([minimal_fig3(lambda0=1.0, lambda100=1.0)])
        fig3 = next(v for v in verdicts if v.claim_id == "fig3-overhead")
        assert not fig3.passed

    def test_incomplete_panel_reported(self):
        panel = ExperimentResult("fig2", "t", "Gamma0", "Psi")
        panel.add("no-preprocessing", [0.5], [0.1])  # missing grid points
        verdicts = verify_claims([panel])
        fig2 = next(v for v in verdicts if v.claim_id == "fig2-gain")
        assert not fig2.passed
        assert "incomplete" in fig2.detail

    def test_every_claim_has_unique_id(self):
        ids = [c.claim_id for c in CLAIMS]
        assert len(ids) == len(set(ids))


class TestRender:
    def test_render_marks(self):
        verdicts = [
            ClaimVerdict("a", "first", True),
            ClaimVerdict("b", "second", False, "broke"),
        ]
        text = render_verdicts(verdicts)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "broke" in text
        assert "1/2 claims reproduced" in text


@pytest.mark.skipif(
    not RESULTS_JSON.exists(), reason="full results not generated"
)
class TestAgainstFullResults:
    def test_all_claims_reproduce(self):
        from repro.experiments.report import load_results_json

        verdicts = verify_claims(load_results_json(str(RESULTS_JSON)))
        failed = [v for v in verdicts if not v.passed]
        assert not failed, render_verdicts(verdicts)
