"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _QUICK_OVERRIDES, main
from repro.experiments.registry import REGISTRY


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "ablate-layout" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_fig2(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "Gamma0" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["fig3", "--quick", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data[0]["experiment_id"] == "fig3"
        assert data[0]["series"]

    def test_quick_ablations(self, capsys):
        assert main(["ablate-windows", "--quick"]) == 0
        assert "full" in capsys.readouterr().out


class TestAllQuickOverrides:
    """Every registered experiment must run under --quick."""

    import pytest as _pytest

    from repro.experiments.registry import REGISTRY as _REGISTRY

    @_pytest.mark.parametrize("experiment_id", sorted(_REGISTRY))
    def test_quick_run(self, experiment_id, capsys):
        assert main([experiment_id, "--quick"]) == 0
        out = capsys.readouterr().out
        assert experiment_id.split("-")[0] in out or experiment_id in out

    def test_overrides_cover_exactly_the_registry(self):
        """A new experiment must ship a --quick override, and overrides
        must not outlive the experiments they tune."""
        assert set(_QUICK_OVERRIDES) == set(REGISTRY)


class TestRuntimeFlags:
    def test_rejects_nonpositive_jobs(self, capsys):
        assert main(["fig2", "--quick", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_jobs_output_byte_identical_to_serial(self, tmp_path, capsys):
        """`repro fig2 --quick` must produce byte-identical JSON at any
        worker count — the determinism contract of the runtime."""
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["fig2", "--quick", "--jobs", "1", "--json", str(serial_path)]) == 0
        assert (
            main(["fig2", "--quick", "--jobs", "4", "--json", str(parallel_path)]) == 0
        )
        capsys.readouterr()
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_parallel_pool_output_byte_identical(self, tmp_path, capsys):
        """fig5 --quick has multi-trial campaigns (n_datasets=3), so
        --jobs 2 genuinely fans out to worker processes."""
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["fig5", "--quick", "--json", str(serial_path)]) == 0
        assert (
            main(["fig5", "--quick", "--jobs", "2", "--json", str(parallel_path)]) == 0
        )
        capsys.readouterr()
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_resume_writes_and_reuses_checkpoints(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpts"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        args = ["fig5", "--quick", "--resume", "--checkpoint-dir", str(ckpt_dir)]
        assert main(args + ["--json", str(first)]) == 0
        ckpt_path = ckpt_dir / "fig5.jsonl"
        assert ckpt_path.exists()
        recorded = ckpt_path.read_text()
        # Second run restores every shard: the checkpoint grows by
        # nothing and the output is unchanged.
        assert main(args + ["--json", str(second)]) == 0
        capsys.readouterr()
        assert ckpt_path.read_text() == recorded
        assert first.read_bytes() == second.read_bytes()

    def test_progress_prints_telemetry_to_stderr(self, tmp_path, capsys):
        assert main(["fig5", "--quick", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "trial(s)" in captured.err
        assert "done:" in captured.err
