"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "ablate-layout" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_quick_fig2(self, capsys):
        assert main(["fig2", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "Gamma0" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["fig3", "--quick", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data[0]["experiment_id"] == "fig3"
        assert data[0]["series"]

    def test_quick_ablations(self, capsys):
        assert main(["ablate-windows", "--quick"]) == 0
        assert "full" in capsys.readouterr().out


class TestAllQuickOverrides:
    """Every registered experiment must run under --quick."""

    import pytest as _pytest

    from repro.experiments.registry import REGISTRY as _REGISTRY

    @_pytest.mark.parametrize("experiment_id", sorted(_REGISTRY))
    def test_quick_run(self, experiment_id, capsys):
        assert main([experiment_id, "--quick"]) == 0
        out = capsys.readouterr().out
        assert experiment_id.split("-")[0] in out or experiment_id in out
