"""Tests for the experiment harness utilities."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    Series,
    averaged,
    best_sensitivity,
)
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Series("x", [1, 2], [1])


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("t1", "title", "x", "y")
        result.add("a", [1.0, 2.0], [0.1, 0.2])
        result.add("b", [1.0, 2.0], [0.3, 0.4])
        result.note("a note")
        return result

    def test_table_contains_everything(self):
        table = self.make().to_table()
        assert "t1" in table
        assert "a" in table and "b" in table
        assert "a note" in table

    def test_to_dict_roundtrippable(self):
        d = self.make().to_dict()
        assert d["experiment_id"] == "t1"
        assert len(d["series"]) == 2
        assert d["series"][0]["y"] == [0.1, 0.2]

    def test_series_by_label(self):
        result = self.make()
        assert result.series_by_label("b").y == [0.3, 0.4]
        with pytest.raises(KeyError):
            result.series_by_label("zz")

    def test_empty_table(self):
        assert "(no data)" in ExperimentResult("e", "t", "x", "y").to_table()

    def test_scientific_formatting(self):
        result = ExperimentResult("e", "t", "x", "y")
        result.add("a", [1e-6], [1e9])
        table = result.to_table()
        assert "e-06" in table or "e-6" in table


class TestAveraged:
    def test_mean_of_runs(self):
        value = averaged(lambda rng: float(rng.random() < 2), 5, seed=1)
        assert value == 1.0

    def test_deterministic(self):
        a = averaged(lambda rng: rng.random(), 4, seed=9)
        b = averaged(lambda rng: rng.random(), 4, seed=9)
        assert a == b

    def test_different_seeds_differ(self):
        a = averaged(lambda rng: rng.random(), 4, seed=9)
        b = averaged(lambda rng: rng.random(), 4, seed=10)
        assert a != b

    def test_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError):
            averaged(lambda rng: 0.0, 0, seed=1)


class TestBestSensitivity:
    def test_finds_minimiser(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=4
        ).inject(walk_stack)
        lam, value = best_sensitivity(corrupted, walk_stack, (10, 50, 90))
        assert lam in (10, 50, 90)
        assert value >= 0

    def test_rejects_empty_grid(self, walk_stack):
        with pytest.raises(ConfigurationError):
            best_sensitivity(walk_stack, walk_stack, ())
