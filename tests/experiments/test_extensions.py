"""Tests for the extension experiments (motivation, compression,
spatial-vs-spectral locality)."""

from repro.experiments.registry import run_experiment


class TestMotivation:
    def test_runs_and_shows_the_claim(self):
        results = run_experiment(
            "motivation", gamma0_grid=(0.01,), side=8, n_repeats=1
        )
        panel = results[0]
        raw = panel.series_by_label("ABFT (raw input)")
        pre = panel.series_by_label("ABFT (preprocessed)")
        # Preprocessing reduces the certified-output error.
        assert pre.y[0] < raw.y[0]
        # Certification rates are recorded in the notes.
        assert any("certified" in note for note in panel.notes)

    def test_nvp_and_abft_track_same_input_error(self):
        results = run_experiment(
            "motivation", gamma0_grid=(0.01,), side=8, n_repeats=1
        )
        panel = results[0]
        abft = panel.series_by_label("ABFT (raw input)").y[0]
        nvp = panel.series_by_label("NVP 3-version (raw input)").y[0]
        # Neither scheme can mitigate input faults: both certify outputs
        # with the same (input-driven) error.
        assert abft > 0
        assert abs(abft - nvp) < 0.5 * max(abft, nvp) + 1e-12


class TestCompression:
    def test_ratio_degrades_with_faults(self):
        results = run_experiment(
            "compression", gamma0_grid=(0.0, 0.05), side=24, n_repeats=1
        )
        panel = results[0]
        corrupted = panel.series_by_label("corrupted")
        assert corrupted.y[1] < corrupted.y[0]

    def test_preprocessing_recovers_ratio(self):
        results = run_experiment(
            "compression", gamma0_grid=(0.0, 0.01), side=24, n_repeats=1
        )
        panel = results[0]
        corrupted = panel.series_by_label("corrupted")
        preprocessed = panel.series_by_label("preprocessed")
        assert preprocessed.y[1] > corrupted.y[1]


class TestLocality:
    def test_spatial_beats_spectral(self):
        results = run_experiment(
            "ablate-locality",
            gamma0_grid=(0.025,),
            lambdas=(60.0, 100.0),
            n_bands=6,
            side=16,
            n_repeats=1,
        )
        panel = results[0]
        spatial = panel.series_by_label("spatial (Algo_OTIS)")
        spectral = panel.series_by_label("spectral (band-axis voting)")
        assert spatial.y[0] < spectral.y[0]


class TestStorageAblation:
    def test_float_raw_error_astronomical(self):
        results = run_experiment(
            "ablate-storage", gamma0_grid=(0.01,), rows=24, cols=24, n_repeats=1
        )
        panel = results[0]
        dn_raw = panel.series_by_label("DN raw").y[0]
        f32_raw = panel.series_by_label("float32 raw").y[0]
        # The DESIGN.md S2 argument: float32 exponent flips make the raw
        # error orders of magnitude larger than any published level.
        assert f32_raw > 100 * dn_raw

    def test_preprocessing_tames_both(self):
        results = run_experiment(
            "ablate-storage", gamma0_grid=(0.01,), rows=24, cols=24, n_repeats=1
        )
        panel = results[0]
        assert panel.series_by_label("DN + Algo_OTIS").y[0] < 0.05
        assert panel.series_by_label("float32 + Algo_OTIS").y[0] < 0.05
