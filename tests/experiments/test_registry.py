"""Tests for the experiment registry and quick runs of each figure."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.registry import REGISTRY, run_experiment


class TestRegistry:
    def test_all_figures_registered(self):
        for experiment_id in ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9"):
            assert experiment_id in REGISTRY

    def test_ablations_registered(self):
        assert "ablate-layout" in REGISTRY
        assert "ablate-windows" in REGISTRY

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestQuickRuns:
    """Each experiment runs end to end at minimum scale."""

    def test_fig2(self):
        results = run_experiment(
            "fig2", gamma0_grid=(0.01,), lambdas=(80.0,), shape=(4, 4), n_repeats=1
        )
        assert len(results) == 1
        labels = [s.label for s in results[0].series]
        assert "no-preprocessing" in labels
        assert "median-w3" in labels

    def test_fig3(self):
        results = run_experiment(
            "fig3", lambdas=(0.0, 50.0), shape=(8, 8), repeats=1
        )
        algo = results[0].series_by_label("Algo_NGST")
        assert len(algo.y) == 2
        assert all(v >= 0 for v in algo.y)

    def test_fig4(self):
        results = run_experiment(
            "fig4",
            gamma_ini_grid=(0.05,),
            lambdas=(80.0,),
            shape=(4, 4),
            n_repeats=1,
        )
        assert results[0].series_by_label("Algo_NGST (opt L)").y[0] >= 0

    def test_fig5(self):
        results = run_experiment(
            "fig5", means=[1000, 40000], lambdas=(80.0,), n_datasets=1
        )
        assert len(results[0].series[0].x) == 2

    def test_fig6(self):
        results = run_experiment(
            "fig6",
            sigmas=(0.0,),
            upsilons=(2, 4),
            gamma0_grid=(0.01,),
            lambdas=(80.0,),
            shape=(4, 4),
            n_repeats=1,
        )
        assert results[0].experiment_id == "fig6-sigma0"
        assert any(s.label == "upsilon=4" for s in results[0].series)

    def test_fig7(self):
        results = run_experiment(
            "fig7",
            datasets=("blob",),
            gamma0_grid=(0.01,),
            lambdas=(60.0,),
            rows=16,
            cols=16,
            n_repeats=1,
        )
        assert results[0].experiment_id == "fig7-blob"

    def test_fig9(self):
        results = run_experiment(
            "fig9",
            datasets=("spots",),
            gamma_ini_grid=(0.1,),
            lambdas=(60.0,),
            rows=16,
            cols=16,
            n_repeats=1,
        )
        labels = [s.label for s in results[0].series]
        assert "Algo_OTIS pseudo-corr fraction" in labels

    def test_ablate_layout(self):
        results = run_experiment(
            "ablate-layout",
            gamma_ini_grid=(0.05,),
            lambdas=(80.0,),
            shape=(4, 4),
            n_repeats=1,
        )
        labels = [s.label for s in results[0].series]
        assert "interleaved + Algo_NGST" in labels

    def test_ablate_windows(self):
        results = run_experiment(
            "ablate-windows", gamma0_grid=(0.01,), shape=(4, 4), n_repeats=1
        )
        labels = [s.label for s in results[0].series]
        assert "full" in labels and "no-window-C" in labels


class TestFig1AndFig8:
    def test_fig1_shape(self):
        results = run_experiment(
            "fig1", n_slaves_grid=(1, 4), frame_side=64, tile=32, n_readouts=8
        )
        panel = results[0]
        plain = panel.series_by_label("no preprocessing")
        # More workers -> shorter makespan.
        assert plain.y[1] < plain.y[0]
        pre = [s for s in panel.series if s.label.startswith("with Algo_NGST")][0]
        # Preprocessing costs simulated time on every point.
        assert all(p > n for p, n in zip(pre.y, plain.y))

    def test_fig8_morphologies(self):
        results = run_experiment("fig8", rows=48, cols=48, n_repeats=3)
        panel = results[0]
        std = panel.series_by_label("std")
        concentration = panel.series_by_label("centre-band concentration")
        blob_i, stripe_i, spots_i = 0, 1, 2
        assert std.y[spots_i] > std.y[stripe_i] > std.y[blob_i]
        assert concentration.y[stripe_i] > 3 * concentration.y[blob_i]
        assert concentration.y[stripe_i] > 3 * concentration.y[spots_i]
