"""Tests for the Markdown report generator."""

import json

import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.experiments.common import ExperimentResult
from repro.experiments.report import (
    load_results_json,
    result_to_markdown,
    results_to_markdown,
    write_report,
)


def sample_result():
    result = ExperimentResult("figX", "A title", "Gamma0", "Psi")
    result.add("raw", [0.01, 0.05], [0.1, 0.2])
    result.add("algo", [0.01, 0.05], [0.01, 0.02])
    result.note("a note")
    return result


class TestMarkdownRendering:
    def test_section_structure(self):
        md = result_to_markdown(sample_result())
        assert md.startswith("### `figX`")
        assert "| Gamma0 | raw | algo |" in md
        assert "> a note" in md

    def test_row_count(self):
        md = result_to_markdown(sample_result())
        data_rows = [l for l in md.splitlines() if l.startswith("| 0.0")]
        assert len(data_rows) == 2

    def test_empty_panel(self):
        md = result_to_markdown(ExperimentResult("e", "t", "x", "y"))
        assert "(no data)" in md

    def test_full_report(self):
        md = results_to_markdown([sample_result(), sample_result()], title="T")
        assert md.startswith("# T")
        assert md.count("### `figX`") == 2

    def test_scientific_formatting(self):
        result = ExperimentResult("e", "t", "x", "y")
        result.add("a", [1e-8], [1e7])
        md = result_to_markdown(result)
        assert "e-08" in md and "e+07" in md


class TestJsonRoundtrip:
    def test_load_and_render(self, tmp_path):
        path = tmp_path / "results.json"
        path.write_text(json.dumps([sample_result().to_dict()]))
        results = load_results_json(str(path))
        assert len(results) == 1
        assert results[0].series_by_label("algo").y == [0.01, 0.02]

    def test_write_report(self, tmp_path):
        json_path = tmp_path / "results.json"
        json_path.write_text(json.dumps([sample_result().to_dict()]))
        out_path = tmp_path / "report.md"
        count = write_report(str(json_path), str(out_path))
        assert count == 1
        assert "### `figX`" in out_path.read_text()

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(DataFormatError):
            load_results_json(str(path))

    def test_rejects_malformed_panel(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([{"experiment_id": "x"}]))
        with pytest.raises(DataFormatError):
            load_results_json(str(path))

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_results_json(str(path))


class TestCLIIntegration:
    def test_report_from_json(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "results.json"
        json_path.write_text(json.dumps([sample_result().to_dict()]))
        out_path = tmp_path / "report.md"
        code = main(
            ["report", "--from-json", str(json_path), "--out", str(out_path)]
        )
        assert code == 0
        assert "### `figX`" in out_path.read_text()

    def test_report_from_json_requires_out(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "results.json"
        json_path.write_text(json.dumps([sample_result().to_dict()]))
        assert main(["report", "--from-json", str(json_path)]) == 2

    def test_report_from_json_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "report.md"
        code = main(
            ["report", "--from-json", str(tmp_path / "nope.json"), "--out", str(out_path)]
        )
        assert code == 2

    def test_report_rejects_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["report", "--only", "not-an-experiment", "--plan"]) == 2
