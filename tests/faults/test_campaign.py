"""Tests for the fault-injection campaign API."""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError
from repro.faults.campaign import Campaign
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi


def _generate(rng):
    return generate_walk(NGSTDatasetConfig(n_variants=32), rng, (6, 6))


def _campaign(preprocess=None, gamma0=0.01, confidence=0.95):
    return Campaign(
        generate=_generate,
        fault_model=UncorrelatedFaultModel(gamma0),
        metric=psi,
        preprocess=preprocess,
        confidence=confidence,
    )


class TestConstruction:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            _campaign(confidence=0.5)

    def test_rejects_bad_model(self):
        with pytest.raises(ConfigurationError):
            Campaign(_generate, object(), psi)


class TestRun:
    def test_summary_fields(self):
        summary = _campaign().run(n_trials=5, seed=1)
        assert summary.n_trials == 5
        assert len(summary.values) == 5
        assert summary.mean == pytest.approx(np.mean(summary.values))
        assert summary.std > 0
        assert summary.ci[0] < summary.mean < summary.ci[1]

    def test_single_trial_zero_std(self):
        summary = _campaign().run(n_trials=1, seed=1)
        assert summary.std == 0.0
        assert summary.ci_half_width == 0.0

    def test_deterministic_under_seed(self):
        a = _campaign().run(n_trials=3, seed=7)
        b = _campaign().run(n_trials=3, seed=7)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        a = _campaign().run(n_trials=3, seed=7)
        b = _campaign().run(n_trials=3, seed=8)
        assert a.values != b.values

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            _campaign().run(n_trials=0)

    def test_preprocessing_arm_improves_metric(self):
        algo = AlgoNGST(NGSTConfig(sensitivity=80))
        raw = _campaign().run(n_trials=4, seed=2)
        pre = _campaign(preprocess=lambda d: algo(d).corrected).run(
            n_trials=4, seed=2
        )
        assert pre.mean < raw.mean

    def test_wider_confidence_wider_interval(self):
        narrow = _campaign(confidence=0.90).run(n_trials=6, seed=3)
        wide = _campaign(confidence=0.99).run(n_trials=6, seed=3)
        assert wide.ci_half_width > narrow.ci_half_width


class TestCompare:
    def test_gain_ratio(self):
        algo = AlgoNGST(NGSTConfig(sensitivity=80))
        raw = _campaign()
        pre = _campaign(preprocess=lambda d: algo(d).corrected)
        raw_summary, pre_summary, ratio = raw.compare(pre, n_trials=4, seed=2)
        assert ratio > 1.0  # raw error / preprocessed error = gain
        assert raw_summary.mean > pre_summary.mean
