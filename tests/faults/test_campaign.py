"""Tests for the fault-injection campaign API."""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError
from repro.faults.campaign import Campaign, CampaignSummary
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.runtime import ProcessPoolBackend, TrialRuntime


def _generate(rng):
    return generate_walk(NGSTDatasetConfig(n_variants=32), rng, (6, 6))


def _campaign(preprocess=None, gamma0=0.01, confidence=0.95):
    return Campaign(
        generate=_generate,
        fault_model=UncorrelatedFaultModel(gamma0),
        metric=psi,
        preprocess=preprocess,
        confidence=confidence,
    )


class TestConstruction:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            _campaign(confidence=0.5)

    def test_rejects_bad_model(self):
        with pytest.raises(ConfigurationError):
            Campaign(_generate, object(), psi)


class TestRun:
    def test_summary_fields(self):
        summary = _campaign().run(n_trials=5, seed=1)
        assert summary.n_trials == 5
        assert len(summary.values) == 5
        assert summary.mean == pytest.approx(np.mean(summary.values))
        assert summary.std > 0
        assert summary.ci[0] < summary.mean < summary.ci[1]

    def test_single_trial_zero_std(self):
        summary = _campaign().run(n_trials=1, seed=1)
        assert summary.std == 0.0
        assert summary.ci_half_width == 0.0

    def test_deterministic_under_seed(self):
        a = _campaign().run(n_trials=3, seed=7)
        b = _campaign().run(n_trials=3, seed=7)
        assert a.values == b.values

    def test_different_seeds_differ(self):
        a = _campaign().run(n_trials=3, seed=7)
        b = _campaign().run(n_trials=3, seed=8)
        assert a.values != b.values

    def test_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            _campaign().run(n_trials=0)

    def test_preprocessing_arm_improves_metric(self):
        algo = AlgoNGST(NGSTConfig(sensitivity=80))
        raw = _campaign().run(n_trials=4, seed=2)
        pre = _campaign(preprocess=lambda d: algo(d).corrected).run(
            n_trials=4, seed=2
        )
        assert pre.mean < raw.mean

    def test_wider_confidence_wider_interval(self):
        narrow = _campaign(confidence=0.90).run(n_trials=6, seed=3)
        wide = _campaign(confidence=0.99).run(n_trials=6, seed=3)
        assert wide.ci_half_width > narrow.ci_half_width


class TestSummaryMath:
    """CI math against known-variance fixtures.

    With values (2, 4): mean 3, sample std sqrt(2), n 2 — so the
    half-width z*std/sqrt(n) collapses to exactly the z-score.
    """

    @pytest.mark.parametrize(
        ("confidence", "z"),
        [(0.90, 1.6449), (0.95, 1.9600), (0.99, 2.5758)],
    )
    def test_half_width_is_z_score_for_unit_term(self, confidence, z):
        summary = CampaignSummary.from_values([2.0, 4.0], confidence)
        assert summary.mean == 3.0
        assert summary.std == pytest.approx(np.sqrt(2.0))
        assert summary.ci_half_width == pytest.approx(z)

    def test_known_variance_fixture(self):
        # values 1..5: mean 3, sample variance 2.5, n 5.
        summary = CampaignSummary.from_values([1.0, 2.0, 3.0, 4.0, 5.0], 0.95)
        assert summary.mean == 3.0
        assert summary.std == pytest.approx(np.sqrt(2.5))
        expected = 1.9600 * np.sqrt(2.5) / np.sqrt(5)
        assert summary.ci_half_width == pytest.approx(expected)
        assert summary.ci == pytest.approx((3.0 - expected, 3.0 + expected))

    def test_single_value_has_zero_width(self):
        summary = CampaignSummary.from_values([7.5])
        assert (summary.mean, summary.std, summary.ci_half_width) == (7.5, 0.0, 0.0)
        assert summary.ci == (7.5, 7.5)

    @pytest.mark.parametrize("confidence", [0.5, 0.85, 0.999, 1.0, 0.0])
    def test_unsupported_confidence_rejected(self, confidence):
        with pytest.raises(ConfigurationError, match="confidence"):
            CampaignSummary.from_values([1.0, 2.0], confidence)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSummary.from_values([])


class TestRuntimeIntegration:
    def test_parallel_campaign_matches_serial(self):
        """Campaign trial fns are bound methods of objects holding
        lambdas; fork inheritance must carry them into the pool."""
        serial = _campaign().run(n_trials=5, seed=9)
        parallel = _campaign().run(
            n_trials=5,
            seed=9,
            runtime=TrialRuntime(ProcessPoolBackend(2), shard_size=1),
        )
        assert parallel.values == serial.values
        assert parallel.mean == serial.mean
        assert parallel.ci_half_width == serial.ci_half_width

    def test_explicit_serial_runtime_matches_default(self):
        default = _campaign().run(n_trials=4, seed=5)
        explicit = _campaign().run(
            n_trials=4, seed=5, runtime=TrialRuntime(shard_size=2)
        )
        assert explicit.values == default.values


class TestCompare:
    def test_gain_ratio(self):
        algo = AlgoNGST(NGSTConfig(sensitivity=80))
        raw = _campaign()
        pre = _campaign(preprocess=lambda d: algo(d).corrected)
        raw_summary, pre_summary, ratio = raw.compare(pre, n_trials=4, seed=2)
        assert ratio > 1.0  # raw error / preprocessed error = gain
        assert raw_summary.mean > pre_summary.mean
