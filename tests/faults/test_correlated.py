"""Tests for the §2.2.3 run-correlated fault model (Eq. 2)."""

import numpy as np
import pytest

from repro.config import CorrelatedFaultConfig
from repro.exceptions import ConfigurationError
from repro.faults.correlated import (
    CorrelatedFaultModel,
    correlated_flip_grid,
    run_probability_table,
)
from repro.faults.layout import RowMajorLayout


class TestRunProbabilityTable:
    def test_first_term_is_gamma_ini(self):
        table = run_probability_table(0.1, 16)
        assert table[0] == pytest.approx(0.1)

    def test_eq2_terms(self):
        table = run_probability_table(0.2, 8)
        assert table[1] == pytest.approx(0.2 + 0.04)
        assert table[2] == pytest.approx(0.2 + 0.04 + 0.008)

    def test_monotone_nondecreasing(self):
        table = run_probability_table(0.3, 32)
        assert np.all(np.diff(table) >= 0)
        assert table[5] > table[0]

    def test_converges_to_geometric_limit(self):
        gamma = 0.4
        table = run_probability_table(gamma, 64)
        limit = gamma / (1 - gamma)
        assert table[-1] <= limit + 1e-12
        assert table[-1] == pytest.approx(limit, rel=1e-9)

    def test_rejects_half(self):
        with pytest.raises(ConfigurationError):
            run_probability_table(0.5, 8)


class TestFlipGrid:
    def test_zero_gamma_no_flips(self, rng):
        grid = correlated_flip_grid((32, 32), 0.0, rng)
        assert not grid.any()

    def test_shape(self, rng):
        grid = correlated_flip_grid((16, 48), 0.1, rng)
        assert grid.shape == (16, 48)
        assert grid.dtype == bool

    def test_rejects_empty_grid(self, rng):
        with pytest.raises(ConfigurationError):
            correlated_flip_grid((0, 4), 0.1, rng)

    def test_flip_rate_exceeds_gamma_ini(self, rng):
        # Run extensions push the marginal rate above Γ_ini.
        gamma = 0.2
        grid = correlated_flip_grid((200, 200), gamma, rng)
        rate = grid.mean()
        assert rate > gamma
        assert rate < gamma / (1 - gamma) * 1.2

    def test_runs_are_longer_than_iid(self, rng):
        """The model's signature: horizontal runs exceed i.i.d. runs."""
        gamma = 0.3
        grid = correlated_flip_grid((300, 300), gamma, rng)
        rate = grid.mean()
        iid = rng.random((300, 300)) < rate
        def mean_run(g):
            runs = []
            for row in g:
                length = 0
                for v in row:
                    if v:
                        length += 1
                    elif length:
                        runs.append(length)
                        length = 0
                if length:
                    runs.append(length)
            return np.mean(runs) if runs else 0.0
        assert mean_run(grid) > mean_run(iid)

    def test_deterministic_under_seed(self):
        a = correlated_flip_grid((40, 40), 0.15, np.random.default_rng(4))
        b = correlated_flip_grid((40, 40), 0.15, np.random.default_rng(4))
        assert np.array_equal(a, b)


class TestCorrelatedFaultModel:
    def test_float_shorthand(self):
        model = CorrelatedFaultModel(0.1)
        assert model.config.gamma_ini == 0.1

    def test_corrupt_roundtrip(self, walk_stack, rng):
        corrupted, mask = CorrelatedFaultModel(0.05).corrupt(walk_stack, rng)
        assert np.array_equal(corrupted ^ mask, walk_stack)

    def test_mask_shape_matches_input(self, rng):
        data = np.zeros((4, 5, 6), dtype=np.uint16)
        _, mask = CorrelatedFaultModel(0.05).corrupt(data, rng)
        assert mask.shape == (4, 5, 6)

    def test_float32_path(self, rng):
        data = np.full((8, 8), 2.5, dtype=np.float32)
        corrupted, mask = CorrelatedFaultModel(0.05).corrupt(data, rng)
        assert corrupted.dtype == np.float32
        assert mask.dtype == np.uint32

    def test_custom_layout_used(self, walk_stack, rng):
        model = CorrelatedFaultModel(
            CorrelatedFaultConfig(0.05), layout=RowMajorLayout(row_words=8)
        )
        corrupted, mask = model.corrupt(walk_stack, rng)
        assert corrupted.shape == walk_stack.shape

    def test_zero_gamma_identity(self, walk_stack, rng):
        corrupted, mask = CorrelatedFaultModel(0.0).corrupt(walk_stack, rng)
        assert np.array_equal(corrupted, walk_stack)
