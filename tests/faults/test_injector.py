"""Tests for the fault-injection campaign wrapper."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel


class TestFaultInjector:
    def test_rejects_model_without_corrupt(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(object())

    def test_report_counts_consistent(self, walk_stack):
        injector = FaultInjector(UncorrelatedFaultModel(0.05), seed=1)
        corrupted, report = injector.inject(walk_stack)
        assert report.n_bits_flipped == int(
            np.bitwise_count(walk_stack ^ corrupted).sum()
        )
        assert report.n_words_hit == int(np.count_nonzero(walk_stack ^ corrupted))
        assert report.total_bits == walk_stack.size * 16

    def test_flip_rate_property(self, walk_stack):
        injector = FaultInjector(UncorrelatedFaultModel(0.05), seed=1)
        _, report = injector.inject(walk_stack)
        assert report.flip_rate == pytest.approx(0.05, rel=0.15)

    def test_seeded_reproducibility(self, walk_stack):
        a, _ = FaultInjector(UncorrelatedFaultModel(0.05), seed=7).inject(walk_stack)
        b, _ = FaultInjector(UncorrelatedFaultModel(0.05), seed=7).inject(walk_stack)
        assert np.array_equal(a, b)

    def test_sequential_injections_differ(self, walk_stack):
        injector = FaultInjector(UncorrelatedFaultModel(0.05), seed=7)
        a, _ = injector.inject(walk_stack)
        b, _ = injector.inject(walk_stack)
        assert not np.array_equal(a, b)

    def test_float32_report(self):
        data = np.full((8, 8), 3.5, dtype=np.float32)
        injector = FaultInjector(UncorrelatedFaultModel(0.1), seed=2)
        corrupted, report = injector.inject(data)
        assert report.total_bits == 64 * 32
        assert report.n_bits_flipped > 0

    def test_zero_rate_report(self, walk_stack):
        injector = FaultInjector(UncorrelatedFaultModel(0.0), seed=2)
        _, report = injector.inject(walk_stack)
        assert report.flip_rate == 0.0
        assert report.n_words_hit == 0
