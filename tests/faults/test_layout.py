"""Tests for the memory-layout mappings (§8)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.faults.layout import InterleavedLayout, RowMajorLayout


class TestRowMajorLayout:
    def test_identity_permutation(self):
        layout = RowMajorLayout()
        assert layout.word_permutation(10).tolist() == list(range(10))

    def test_grid_shape(self):
        layout = RowMajorLayout(row_words=4)
        # 10 words * 16 bits = 160 bits; rows of 64 bits -> 3 rows.
        assert layout.grid_shape(10, 16) == (3, 64)

    def test_bit_positions_contiguous(self):
        layout = RowMajorLayout(row_words=2)
        rows, cols = layout.bit_positions(4, 16)
        # Word 0 occupies the first 16 columns of row 0.
        assert rows[0].tolist() == [0] * 16
        assert cols[0].tolist() == list(range(16))
        # Word 2 starts row 1.
        assert rows[2, 0] == 1 and cols[2, 0] == 0

    def test_rejects_bad_row_words(self):
        with pytest.raises(ConfigurationError):
            RowMajorLayout(row_words=0)


class TestInterleavedLayout:
    def test_permutation_is_bijection(self):
        layout = InterleavedLayout()
        for n in (7, 64, 100, 1024):
            perm = layout.word_permutation(n)
            assert sorted(perm.tolist()) == list(range(n))

    def test_stride_coprime(self):
        layout = InterleavedLayout(stride=4)
        assert np.gcd(layout.effective_stride(64), 64) == 1

    def test_neighbours_scattered(self):
        layout = InterleavedLayout()
        perm = layout.word_permutation(256)
        gaps = np.abs(np.diff(perm.astype(np.int64)))
        assert gaps.min() > 1  # no two logical neighbours stay adjacent

    def test_rejects_bad_stride(self):
        with pytest.raises(ConfigurationError):
            InterleavedLayout(stride=0)

    @given(st.integers(min_value=2, max_value=2000))
    def test_bijection_property(self, n):
        perm = InterleavedLayout().word_permutation(n)
        assert len(set(perm.tolist())) == n


class TestFlipMaskFromGrid:
    def test_empty_grid_no_masks(self):
        layout = RowMajorLayout(row_words=2)
        grid = np.zeros(layout.grid_shape(6, 16), dtype=bool)
        masks = layout.flip_mask_from_grid(grid, 6, 16)
        assert not masks.any()

    def test_single_bit_maps_to_word(self):
        layout = RowMajorLayout(row_words=2)
        grid = np.zeros(layout.grid_shape(6, 16), dtype=bool)
        # Bit 0 of word 0 is its MSB (leftmost) position in the grid.
        grid[0, 0] = True
        masks = layout.flip_mask_from_grid(grid, 6, 16)
        assert masks[0] == 1 << 15
        assert masks[1:].sum() == 0

    def test_full_word_row(self):
        layout = RowMajorLayout(row_words=2)
        grid = np.zeros(layout.grid_shape(2, 16), dtype=bool)
        grid[0, :16] = True
        masks = layout.flip_mask_from_grid(grid, 2, 16)
        assert masks[0] == 0xFFFF

    def test_interleaved_inverse_consistency(self):
        layout = InterleavedLayout()
        n, nbits = 32, 16
        rng = np.random.default_rng(5)
        grid = rng.random(layout.grid_shape(n, nbits)) < 0.3
        masks = layout.flip_mask_from_grid(grid, n, nbits)
        # Rebuild the grid bits from the masks through the same mapping
        # and check every mapped position agrees.
        rows, cols = layout.bit_positions(n, nbits)
        for w in range(n):
            for b in range(nbits):
                bit = (int(masks[w]) >> (nbits - 1 - b)) & 1
                assert bit == int(grid[rows[w, b], cols[w, b]])


class TestPixelMajorLayout:
    def test_permutation_is_bijection(self):
        from repro.faults.layout import PixelMajorLayout

        layout = PixelMajorLayout(n_variants=8)
        perm = layout.word_permutation(8 * 12)
        assert sorted(perm.tolist()) == list(range(96))

    def test_variants_made_contiguous(self):
        from repro.faults.layout import PixelMajorLayout

        # With 4 variants of 3 coords, variant k of coord c (logical
        # index k*3 + c) must land at physical slot c*4 + k.
        layout = PixelMajorLayout(n_variants=4)
        perm = layout.word_permutation(12)
        for k in range(4):
            for c in range(3):
                assert perm[k * 3 + c] == c * 4 + k

    def test_rejects_indivisible(self):
        from repro.faults.layout import PixelMajorLayout

        with pytest.raises(ConfigurationError):
            PixelMajorLayout(n_variants=7).word_permutation(16)

    def test_rejects_bad_variants(self):
        from repro.faults.layout import PixelMajorLayout

        with pytest.raises(ConfigurationError):
            PixelMajorLayout(n_variants=0)
