"""Tests for the Gilbert–Elliott transit burst model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults.transit import (
    GilbertElliottConfig,
    TransitFaultModel,
    burst_flip_stream,
)


class TestConfig:
    def test_steady_state(self):
        cfg = GilbertElliottConfig(p_good_to_bad=0.01, p_bad_to_good=0.09)
        assert cfg.steady_state_bad == pytest.approx(0.1)

    def test_expected_flip_rate(self):
        cfg = GilbertElliottConfig(
            p_good_to_bad=0.01, p_bad_to_good=0.09, flip_prob_bad=0.5
        )
        assert cfg.expected_flip_rate == pytest.approx(0.05)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig(p_good_to_bad=1.5)

    def test_rejects_unending_bursts(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottConfig(p_good_to_bad=0.1, p_bad_to_good=0.0)


class TestBurstStream:
    def test_no_bursts_no_flips(self, rng):
        cfg = GilbertElliottConfig(p_good_to_bad=0.0, flip_prob_good=0.0)
        assert not burst_flip_stream(10000, cfg, rng).any()

    def test_length(self, rng):
        cfg = GilbertElliottConfig()
        assert len(burst_flip_stream(12345, cfg, rng)) == 12345

    def test_zero_length(self, rng):
        assert len(burst_flip_stream(0, GilbertElliottConfig(), rng)) == 0

    def test_marginal_rate_matches_expectation(self, rng):
        cfg = GilbertElliottConfig(
            p_good_to_bad=0.01, p_bad_to_good=0.05, flip_prob_bad=0.4
        )
        stream = burst_flip_stream(400_000, cfg, rng)
        assert stream.mean() == pytest.approx(cfg.expected_flip_rate, rel=0.15)

    def test_flips_are_bursty(self, rng):
        """Flips cluster: the conditional flip rate next to a flip is far
        above the marginal rate."""
        cfg = GilbertElliottConfig(
            p_good_to_bad=0.002, p_bad_to_good=0.05, flip_prob_bad=0.5
        )
        stream = burst_flip_stream(300_000, cfg, rng)
        marginal = stream.mean()
        neighbours = stream[1:][stream[:-1]]
        conditional = neighbours.mean() if len(neighbours) else 0.0
        assert conditional > 4 * marginal

    def test_rejects_negative_length(self, rng):
        with pytest.raises(ConfigurationError):
            burst_flip_stream(-1, GilbertElliottConfig(), rng)


class TestTransitFaultModel:
    def test_roundtrip_mask(self, walk_stack, rng):
        corrupted, mask = TransitFaultModel().corrupt(walk_stack, rng)
        assert np.array_equal(corrupted ^ mask, walk_stack)

    def test_float32_path(self, rng):
        data = np.full((8, 8), 1.25, dtype=np.float32)
        corrupted, mask = TransitFaultModel().corrupt(data, rng)
        assert corrupted.dtype == np.float32
        assert mask.dtype == np.uint32

    def test_burst_hits_consecutive_words(self, rng):
        """A burst damages a run of logically consecutive words."""
        cfg = GilbertElliottConfig(
            p_good_to_bad=2e-5, p_bad_to_good=0.01, flip_prob_bad=0.9
        )
        data = np.zeros(4096, dtype=np.uint16)
        _, mask = TransitFaultModel(cfg).corrupt(data, rng)
        hit = np.nonzero(mask)[0]
        if len(hit) > 3:
            # Damaged words cluster tightly relative to the array span.
            assert (hit[-1] - hit[0]) < len(mask)
            gaps = np.diff(hit)
            assert np.median(gaps) <= 2

    def test_injector_compatible(self, walk_stack):
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(TransitFaultModel(), seed=3)
        corrupted, report = injector.inject(walk_stack)
        assert report.total_bits == walk_stack.size * 16


class TestSerialisationLayout:
    def test_layout_validated(self):
        with pytest.raises(ConfigurationError):
            TransitFaultModel(layout=object())

    def test_pixel_major_concentrates_damage_per_pixel(self, rng):
        """Under pixel-major serialisation, a burst hits many variants of
        few pixels; under time-major, few variants of many pixels."""
        from repro.faults.layout import PixelMajorLayout

        cfg = GilbertElliottConfig(
            p_good_to_bad=5e-5, p_bad_to_good=0.004, flip_prob_bad=0.9
        )
        n, coords = 64, 64
        data = np.zeros((n, coords), dtype=np.uint16)

        def damaged_variants_per_pixel(layout):
            counts = []
            for seed in range(6):
                model = TransitFaultModel(cfg, layout=layout)
                _, mask = model.corrupt(data, np.random.default_rng(seed))
                hit = mask != 0
                per_pixel = hit.sum(axis=0)
                touched = per_pixel[per_pixel > 0]
                if len(touched):
                    counts.append(float(touched.mean()))
            return np.mean(counts) if counts else 0.0

        concentrated = damaged_variants_per_pixel(PixelMajorLayout(n))
        spread = damaged_variants_per_pixel(None)
        assert concentrated > 2 * spread

    def test_mask_roundtrip_with_layout(self, walk_stack, rng):
        from repro.faults.layout import InterleavedLayout

        model = TransitFaultModel(layout=InterleavedLayout())
        corrupted, mask = model.corrupt(walk_stack, rng)
        assert np.array_equal(corrupted ^ mask, walk_stack)
