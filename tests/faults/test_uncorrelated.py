"""Tests for the §2.2.2 uncorrelated fault model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UncorrelatedFaultConfig
from repro.exceptions import ConfigurationError
from repro.faults.uncorrelated import UncorrelatedFaultModel, uncorrelated_flip_mask


class TestFlipMask:
    def test_zero_probability_no_flips(self, rng):
        mask = uncorrelated_flip_mask((100,), 16, 0.0, rng)
        assert not mask.any()

    def test_probability_one_flips_everything(self, rng):
        mask = uncorrelated_flip_mask((10,), 16, 1.0, rng)
        assert np.all(mask == 0xFFFF)

    def test_flip_rate_statistics(self, rng):
        gamma0 = 0.05
        mask = uncorrelated_flip_mask((200, 200), 16, gamma0, rng)
        rate = np.bitwise_count(mask).sum() / (200 * 200 * 16)
        assert rate == pytest.approx(gamma0, rel=0.05)

    def test_mask_within_word_width(self, rng):
        mask = uncorrelated_flip_mask((1000,), 12, 0.5, rng)
        assert np.all(mask < (1 << 12))

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ConfigurationError):
            uncorrelated_flip_mask((4,), 16, 1.5, rng)

    def test_rejects_bad_width(self, rng):
        with pytest.raises(ConfigurationError):
            uncorrelated_flip_mask((4,), 65, 0.1, rng)

    def test_deterministic_under_seed(self):
        a = uncorrelated_flip_mask((50,), 16, 0.1, np.random.default_rng(9))
        b = uncorrelated_flip_mask((50,), 16, 0.1, np.random.default_rng(9))
        assert np.array_equal(a, b)


class TestUncorrelatedFaultModel:
    def test_accepts_float_probability_shorthand(self):
        model = UncorrelatedFaultModel(0.25)
        assert model.config.gamma0 == 0.25

    def test_accepts_config(self):
        model = UncorrelatedFaultModel(UncorrelatedFaultConfig(0.1))
        assert model.config.gamma0 == 0.1

    def test_corrupt_uint16(self, walk_stack, rng):
        corrupted, mask = UncorrelatedFaultModel(0.1).corrupt(walk_stack, rng)
        assert corrupted.shape == walk_stack.shape
        assert np.array_equal(corrupted ^ mask, walk_stack)

    def test_corrupt_copy_not_inplace(self, walk_stack, rng):
        snapshot = walk_stack.copy()
        UncorrelatedFaultModel(0.2).corrupt(walk_stack, rng)
        assert np.array_equal(walk_stack, snapshot)

    def test_corrupt_float32_via_bits(self, rng):
        data = np.full((16, 16), 1.5, dtype=np.float32)
        corrupted, mask = UncorrelatedFaultModel(0.05).corrupt(data, rng)
        assert corrupted.dtype == np.float32
        assert mask.dtype == np.uint32
        bits = data.view(np.uint32) ^ mask
        assert np.array_equal(bits.view(np.float32), corrupted, equal_nan=True)

    def test_zero_gamma_identity(self, walk_stack, rng):
        corrupted, mask = UncorrelatedFaultModel(0.0).corrupt(walk_stack, rng)
        assert np.array_equal(corrupted, walk_stack)
        assert not mask.any()

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_double_corrupt_with_same_mask_restores(self, gamma0):
        data = np.arange(64, dtype=np.uint16)
        rng = np.random.default_rng(3)
        corrupted, mask = UncorrelatedFaultModel(gamma0).corrupt(data, rng)
        assert np.array_equal(corrupted ^ mask, data)
