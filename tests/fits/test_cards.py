"""Tests for FITS 80-character card encoding/parsing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import FITSFormatError
from repro.fits.cards import Card, format_card, parse_card, validate_keyword

KEYWORDS = st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-", min_size=1, max_size=8
).filter(lambda k: k.upper() not in ("END", "COMMENT", "HISTORY"))


class TestValidateKeyword:
    def test_uppercases(self):
        assert validate_keyword("naxis") == "NAXIS"

    def test_strips(self):
        assert validate_keyword(" SIMPLE ") == "SIMPLE"

    def test_rejects_long(self):
        with pytest.raises(FITSFormatError):
            validate_keyword("TOOLONGKEY")

    def test_rejects_illegal_chars(self):
        with pytest.raises(FITSFormatError):
            validate_keyword("NA IS")


class TestFormatCard:
    def test_length_always_80(self):
        for card in (
            Card("SIMPLE", True),
            Card("BITPIX", 16),
            Card("END"),
            Card("COMMENT", comment="hello"),
            Card("OBJECT", "M31"),
        ):
            assert len(format_card(card)) == 80

    def test_end_card(self):
        image = format_card(Card("END"))
        assert image.startswith(b"END")
        assert image[3:].strip() == b""

    def test_value_indicator_position(self):
        image = format_card(Card("BITPIX", 16))
        assert image[8:10] == b"= "

    def test_logical_true(self):
        image = format_card(Card("SIMPLE", True))
        assert image[29:30] == b"T"

    def test_overflow_rejected(self):
        with pytest.raises(FITSFormatError):
            format_card(Card("LONGSTR", "x" * 100))


class TestParseCard:
    def test_rejects_wrong_length(self):
        with pytest.raises(FITSFormatError):
            parse_card(b"SHORT")

    def test_rejects_non_ascii(self):
        image = bytearray(format_card(Card("BITPIX", 16)))
        image[4] = 0xFF
        with pytest.raises(FITSFormatError):
            parse_card(bytes(image))

    def test_parses_integer(self):
        card = parse_card(format_card(Card("NAXIS", 2)))
        assert card.value == 2

    def test_parses_negative_integer(self):
        card = parse_card(format_card(Card("BITPIX", -32)))
        assert card.value == -32

    def test_parses_float(self):
        card = parse_card(format_card(Card("EXPTIME", 1000.5)))
        assert card.value == pytest.approx(1000.5)

    def test_parses_logical(self):
        assert parse_card(format_card(Card("SIMPLE", True))).value is True
        assert parse_card(format_card(Card("SIMPLE", False))).value is False

    def test_parses_string_with_quote(self):
        card = parse_card(format_card(Card("OBJECT", "O'Neill")))
        assert card.value == "O'Neill"

    def test_comment_preserved(self):
        card = parse_card(format_card(Card("BITPIX", 16, "bits per pixel")))
        assert card.comment == "bits per pixel"

    def test_commentary_card(self):
        card = parse_card(format_card(Card("HISTORY", comment="processed")))
        assert card.is_commentary
        assert "processed" in card.comment

    def test_fortran_double_exponent(self):
        image = ("CRVAL1  = " + "1.5D2".rjust(20)).ljust(80).encode("ascii")
        assert parse_card(image).value == pytest.approx(150.0)

    def test_unterminated_string_rejected(self):
        image = ("OBJECT  = 'oops").ljust(80).encode("ascii")
        with pytest.raises(FITSFormatError):
            parse_card(image)


class TestRoundtrip:
    @given(KEYWORDS, st.integers(min_value=-(2**40), max_value=2**40))
    def test_integer_roundtrip(self, keyword, value):
        card = parse_card(format_card(Card(keyword, value)))
        assert card.keyword == keyword.upper()
        assert card.value == value

    @given(KEYWORDS, st.booleans())
    def test_logical_roundtrip(self, keyword, value):
        card = parse_card(format_card(Card(keyword, value)))
        assert card.value is value

    @given(
        KEYWORDS,
        st.text(
            alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
            max_size=40,
        ),
    )
    def test_string_roundtrip(self, keyword, value):
        # FITS strings are right-stripped by the format itself.
        card = parse_card(format_card(Card(keyword, value)))
        assert card.value == value.rstrip()

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_roundtrip(self, value):
        card = parse_card(format_card(Card("VAL", float(value))))
        assert card.value == pytest.approx(float(value), rel=1e-6)
