"""Tests for the FITS checksum convention implementation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import FITSFormatError
from repro.fits.checksum import (
    decode_checksum_value,
    encode_checksum_value,
    ones_complement_sum32,
    set_checksums,
    verify_checksums,
)
from repro.fits.header import Header


class TestOnesComplementSum:
    def test_empty(self):
        assert ones_complement_sum32(b"") == 0

    def test_single_word(self):
        assert ones_complement_sum32(b"\x00\x00\x00\x05") == 5

    def test_end_around_carry(self):
        total = ones_complement_sum32(b"\xff\xff\xff\xff\x00\x00\x00\x02")
        assert total == 2  # 0xFFFFFFFF is -0; adding 2 folds back to 2

    def test_padding(self):
        # Trailing short word is zero-padded on the right.
        assert ones_complement_sum32(b"\x01") == 0x01000000

    def test_initial_value(self):
        assert ones_complement_sum32(b"\x00\x00\x00\x01", initial=5) == 6

    def test_order_independence_of_words(self):
        a = ones_complement_sum32(b"\x00\x00\x00\x01\x00\x00\x00\x02")
        b = ones_complement_sum32(b"\x00\x00\x00\x02\x00\x00\x00\x01")
        assert a == b


class TestAsciiEncoding:
    def test_all_printable(self):
        for value in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x30303030):
            encoded = encode_checksum_value(value)
            assert len(encoded) == 16
            assert all(0x30 <= ord(c) <= 0x72 for c in encoded)
            assert not any(c in ":;<=>?@[\\]^_`" for c in encoded)

    def test_roundtrip_known(self):
        for value in (0, 123456789, 0xFFFFFFFF):
            assert decode_checksum_value(encode_checksum_value(value)) == value

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(FITSFormatError):
            decode_checksum_value("short")

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip_property(self, value):
        assert decode_checksum_value(encode_checksum_value(value)) == value


class TestHDUChecksums:
    def _hdu(self):
        header = Header.primary(16, (8, 8))
        data = np.arange(64, dtype=">i2").tobytes()
        data += b"\x00" * (-len(data) % 2880)
        return header, data

    def test_set_and_verify(self):
        header, data = self._hdu()
        set_checksums(header, data)
        verdict = verify_checksums(header, data)
        assert verdict.datasum_present and verdict.datasum_ok
        assert verdict.checksum_present and verdict.checksum_ok
        assert verdict.ok

    def test_data_flip_detected(self):
        header, data = self._hdu()
        set_checksums(header, data)
        damaged = bytearray(data)
        damaged[10] ^= 0x40
        verdict = verify_checksums(header, bytes(damaged))
        assert not verdict.datasum_ok
        assert not verdict.ok

    def test_header_edit_detected(self):
        header, data = self._hdu()
        set_checksums(header, data)
        header.set("EXTRA", 42)
        verdict = verify_checksums(header, data)
        assert not verdict.checksum_ok

    def test_absent_keywords_vacuously_ok(self):
        header, data = self._hdu()
        verdict = verify_checksums(header, data)
        assert not verdict.datasum_present
        assert not verdict.checksum_present
        assert verdict.ok

    def test_garbage_datasum_fails(self):
        header, data = self._hdu()
        set_checksums(header, data)
        header.set("DATASUM", "not-a-number")
        assert not verify_checksums(header, data).datasum_ok


class TestWriteHDUIntegration:
    def test_write_hdu_with_checksum_verifies(self, walk_stack):
        from repro.fits.file import write_hdu
        from repro.fits.header import Header

        raw = write_hdu(walk_stack, with_checksum=True)
        header, consumed = Header.from_bytes(raw)
        assert verify_checksums(header, raw[consumed:]).ok

    def test_data_flip_detected_end_to_end(self, walk_stack):
        from repro.fits.file import write_hdu
        from repro.fits.header import Header

        raw = bytearray(write_hdu(walk_stack, with_checksum=True))
        header, consumed = Header.from_bytes(bytes(raw))
        raw[consumed + 100] ^= 0x10
        verdict = verify_checksums(header, bytes(raw[consumed:]))
        assert not verdict.ok

    def test_without_checksum_no_keywords(self, walk_stack):
        from repro.fits.file import write_hdu
        from repro.fits.header import Header

        raw = write_hdu(walk_stack, with_checksum=False)
        header, _ = Header.from_bytes(raw)
        assert "CHECKSUM" not in header
