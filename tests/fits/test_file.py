"""Tests for FITS file reading/writing."""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.exceptions import FITSFormatError
from repro.fits.file import HDU, read_fits, read_fits_bytes, write_fits, write_hdu
from repro.fits.header import BLOCK_SIZE, Header


class TestWriteHDU:
    def test_block_aligned(self):
        raw = write_hdu(np.zeros((8, 8), dtype=np.uint16))
        assert len(raw) % BLOCK_SIZE == 0

    def test_uint16_uses_bzero(self):
        raw = write_hdu(np.zeros((4, 4), dtype=np.uint16))
        header, _ = Header.from_bytes(raw)
        assert header["BZERO"] == 32768
        assert header["BITPIX"] == 16

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(FITSFormatError):
            write_hdu(np.zeros(4, dtype=np.complex64))


@pytest.mark.parametrize(
    "dtype",
    [np.uint8, np.int16, np.uint16, np.int32, np.uint32, np.float32, np.float64],
)
class TestRoundtripDtypes:
    def test_roundtrip(self, dtype, rng):
        if np.issubdtype(dtype, np.integer):
            info = np.iinfo(dtype)
            data = rng.integers(
                info.min, int(info.max) + 1, size=(6, 5), dtype=np.int64
            ).astype(dtype)
        else:
            data = rng.normal(0, 100, size=(6, 5)).astype(dtype)
        hdus = read_fits_bytes(write_hdu(data))
        assert len(hdus) == 1
        recovered = hdus[0].physical_data()
        assert recovered.dtype == dtype or np.allclose(recovered, data)
        assert np.array_equal(np.asarray(recovered, dtype=dtype), data)


class TestMultiHDU:
    def test_two_hdus(self):
        a = np.arange(16, dtype=np.uint16).reshape(4, 4)
        b = np.arange(8, dtype=np.float32)
        buffer = io.BytesIO()
        write_fits([a, b], buffer)
        hdus = read_fits(io.BytesIO(buffer.getvalue()))
        assert len(hdus) == 2
        assert np.array_equal(hdus[0].physical_data(), a)
        assert np.allclose(hdus[1].physical_data(), b)

    def test_file_path_io(self, tmp_path):
        path = tmp_path / "test.fits"
        data = np.arange(64, dtype=np.uint16).reshape(8, 8)
        write_fits(data, str(path))
        hdus = read_fits(str(path))
        assert np.array_equal(hdus[0].physical_data(), data)

    def test_empty_rejected(self):
        with pytest.raises(FITSFormatError):
            write_fits([], io.BytesIO())

    def test_empty_stream_rejected(self):
        with pytest.raises(FITSFormatError):
            read_fits(io.BytesIO(b""))

    def test_truncated_data_rejected(self):
        raw = write_hdu(np.zeros((64, 64), dtype=np.uint16))
        with pytest.raises(FITSFormatError, match="truncated"):
            read_fits_bytes(raw[: len(raw) // 2])


class TestRoundtripProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
        )
    )
    def test_uint16_bit_exact(self, data):
        recovered = read_fits_bytes(write_hdu(data))[0].physical_data()
        assert np.array_equal(recovered, data)

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float32,
            shape=(4, 3),
            elements={"allow_nan": False, "allow_infinity": False},
        )
    )
    def test_float32_bit_exact(self, data):
        recovered = read_fits_bytes(write_hdu(data))[0].physical_data()
        assert np.array_equal(recovered, data)


class TestImageExtensions:
    def test_multi_hdu_uses_xtension(self):
        a = np.arange(16, dtype=np.uint16).reshape(4, 4)
        b = np.arange(8, dtype=np.float32)
        buffer = io.BytesIO()
        write_fits([a, b], buffer)
        hdus = read_fits(io.BytesIO(buffer.getvalue()))
        assert hdus[0].header.get("EXTEND") is True
        assert not hdus[0].header.is_extension
        assert hdus[1].header.is_extension
        assert hdus[1].header.get("XTENSION").strip() == "IMAGE"
        assert hdus[1].header.get("PCOUNT") == 0
        assert hdus[1].header.get("GCOUNT") == 1

    def test_extension_roundtrip(self):
        from repro.fits.file import write_hdu

        data = np.arange(12, dtype=np.int32).reshape(3, 4)
        raw = write_hdu(data, as_extension=True)
        header, consumed = Header.from_bytes(raw)
        assert header.is_extension
        hdus = read_fits_bytes(raw)
        assert np.array_equal(hdus[0].physical_data(), data)

    def test_extension_header_sanity_accepted(self):
        from repro.fits.sanity import HeaderSanityAnalyzer

        header = Header.image_extension(16, (4, 4))
        report = HeaderSanityAnalyzer().analyze(header.to_bytes())
        assert report.ok

    def test_bad_xtension_type_fatal(self):
        from repro.fits.sanity import HeaderSanityAnalyzer

        header = Header.image_extension(16, (4, 4))
        header.set("XTENSION", "BOGUS")
        report = HeaderSanityAnalyzer().analyze(header.to_bytes())
        assert not report.ok
