"""Tests for the FITS header model."""

import numpy as np
import pytest

from repro.exceptions import FITSFormatError
from repro.fits.cards import Card
from repro.fits.header import BLOCK_SIZE, Header


class TestDictAccess:
    def test_set_and_get(self):
        header = Header()
        header["BITPIX"] = 16
        assert header["BITPIX"] == 16
        assert "BITPIX" in header
        assert "bitpix" in header  # case-insensitive

    def test_get_default(self):
        assert Header().get("MISSING", 7) == 7

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Header()["NOPE"]

    def test_setitem_replaces_in_place(self):
        header = Header()
        header.set("A", 1)
        header.set("B", 2)
        header["A"] = 10
        assert [c.keyword for c in header] == ["A", "B"]
        assert header["A"] == 10

    def test_delitem(self):
        header = Header()
        header["A"] = 1
        del header["A"]
        assert "A" not in header

    def test_delitem_missing_raises(self):
        with pytest.raises(KeyError):
            del Header()["A"]

    def test_commentary_not_value_addressable(self):
        header = Header()
        header.add_comment("note")
        assert "COMMENT" not in header
        assert len(header) == 1


class TestStructuralQueries:
    def test_axes(self):
        header = Header.primary(16, (8, 4))
        # numpy shape (8, 4) -> FITS order NAXIS1=4, NAXIS2=8.
        assert header.axes() == (4, 8)

    def test_data_size_bytes(self):
        header = Header.primary(16, (8, 4))
        assert header.data_size_bytes() == 8 * 4 * 2

    def test_zero_axes_no_data(self):
        header = Header.primary(8, ())
        assert header.data_size_bytes() == 0

    def test_invalid_naxis_rejected(self):
        header = Header()
        header["NAXIS"] = -1
        with pytest.raises(FITSFormatError):
            header.axes()

    def test_invalid_bitpix_rejected(self):
        header = Header.primary(16, (4,))
        header["BITPIX"] = 12
        with pytest.raises(FITSFormatError):
            header.data_size_bytes()

    def test_primary_rejects_bad_bitpix(self):
        with pytest.raises(FITSFormatError):
            Header.primary(24, (4,))


class TestSerialisation:
    def test_block_aligned(self):
        raw = Header.primary(16, (8, 8)).to_bytes()
        assert len(raw) % BLOCK_SIZE == 0

    def test_end_terminated(self):
        raw = Header.primary(16, (8, 8)).to_bytes()
        assert b"END" in raw

    def test_roundtrip(self):
        header = Header.primary(-32, (16, 8))
        header.set("OBJECT", "M31", "target")
        header.add_history("created by test")
        parsed, consumed = Header.from_bytes(header.to_bytes())
        assert consumed == len(header.to_bytes())
        assert parsed["OBJECT"] == "M31"
        assert parsed["BITPIX"] == -32
        assert parsed.axes() == (8, 16)

    def test_many_cards_span_blocks(self):
        header = Header.primary(16, (4,))
        for i in range(80):
            header.set(f"KEY{i}", i)
        raw = header.to_bytes()
        assert len(raw) >= 2 * BLOCK_SIZE
        parsed, _ = Header.from_bytes(raw)
        assert parsed["KEY79"] == 79

    def test_unterminated_rejected(self):
        raw = Header.primary(16, (4,)).to_bytes().replace(b"END", b"XXX")
        with pytest.raises(FITSFormatError, match="END"):
            Header.from_bytes(raw)

    def test_short_input_rejected(self):
        with pytest.raises(FITSFormatError):
            Header.from_bytes(b"SIMPLE = T")
