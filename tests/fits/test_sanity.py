"""Tests for the FITS header sanity analyzer (the Λ = 0 behaviour)."""

import numpy as np
import pytest

from repro.fits.file import write_hdu
from repro.fits.header import Header
from repro.fits.sanity import (
    HeaderSanityAnalyzer,
    Severity,
    nearest_bitpix,
)


def clean_header_bytes(shape=(8, 8), bitpix=16):
    return Header.primary(bitpix, shape).to_bytes()


class TestNearestBitpix:
    def test_legal_unchanged(self):
        for legal in (8, 16, 32, 64, -32, -64):
            assert nearest_bitpix(legal) == legal

    def test_single_flip_of_16(self):
        assert nearest_bitpix(17) == 16
        assert nearest_bitpix(48) == 16

    def test_sign_flip(self):
        # -32 with its sign bit cleared differs from -32 by one bit.
        assert nearest_bitpix(-31) in (-32, 32)

    def test_zero_maps_somewhere_legal(self):
        assert nearest_bitpix(0) in (8, 16, 32, 64, -32, -64)


class TestCleanHeader:
    def test_no_issues(self):
        report = HeaderSanityAnalyzer().analyze(clean_header_bytes())
        assert report.ok
        assert report.n_repairs == 0
        assert report.header is not None

    def test_header_length_recorded(self):
        raw = clean_header_bytes()
        report = HeaderSanityAnalyzer().analyze(raw)
        assert report.header_length == len(raw)


class TestByteDamage:
    def test_non_ascii_byte_repaired(self):
        raw = bytearray(clean_header_bytes())
        raw[85] |= 0x80
        report = HeaderSanityAnalyzer().analyze(bytes(raw))
        assert report.ok
        assert report.n_repairs >= 1

    def test_non_ascii_fatal_without_repair(self):
        raw = bytearray(clean_header_bytes())
        raw[85] |= 0x80
        report = HeaderSanityAnalyzer(repair=False).analyze(bytes(raw))
        assert not report.ok

    def test_too_short_header_fatal(self):
        report = HeaderSanityAnalyzer().analyze(b"SIMPLE")
        assert not report.ok


class TestKeywordDamage:
    def _analyze_with(self, mutate):
        header = Header.primary(16, (8, 8))
        mutate(header)
        return HeaderSanityAnalyzer().analyze(header.to_bytes())

    def test_bitpix_snapped(self):
        report = self._analyze_with(lambda h: h.__setitem__("BITPIX", 17))
        assert report.ok
        assert report.header["BITPIX"] == 16
        assert any(i.keyword == "BITPIX" for i in report.issues)

    def test_missing_bitpix_fatal(self):
        report = self._analyze_with(lambda h: h.__delitem__("BITPIX"))
        assert not report.ok

    def test_simple_false_repaired(self):
        report = self._analyze_with(lambda h: h.__setitem__("SIMPLE", False))
        assert report.ok
        assert report.header["SIMPLE"] is True

    def test_missing_simple_fatal(self):
        report = self._analyze_with(lambda h: h.__delitem__("SIMPLE"))
        assert not report.ok

    def test_naxis_rebuilt_from_axis_cards(self):
        report = self._analyze_with(lambda h: h.__setitem__("NAXIS", 9))
        assert report.ok
        assert report.header["NAXIS"] == 2

    def test_absurd_axis_reduced(self):
        # A flipped high bit turns 8 into a huge dimension.
        report = self._analyze_with(
            lambda h: h.__setitem__("NAXIS1", 8 | (1 << 30))
        )
        assert report.ok
        assert report.header["NAXIS1"] <= 1 << 20
        assert any(i.severity is Severity.REPAIRED for i in report.issues)

    def test_negative_axis_fatal(self):
        report = self._analyze_with(lambda h: h.__setitem__("NAXIS1", -4))
        assert not report.ok

    def test_missing_end_fatal(self):
        raw = clean_header_bytes().replace(b"END", b"XND")
        report = HeaderSanityAnalyzer().analyze(raw)
        assert not report.ok
        assert any(i.keyword == "END" for i in report.issues)


class TestEndToEndWithData:
    def test_repaired_header_decodes_data(self, walk_stack):
        raw = bytearray(write_hdu(walk_stack))
        raw[80] |= 0x80  # damage a keyword byte in card 2
        analyzer = HeaderSanityAnalyzer()
        report = analyzer.analyze(bytes(raw[:2880]))
        assert report.ok
        assert report.header.axes() == tuple(reversed(walk_stack.shape))
