"""Tests for the ABFT checksum-matrix scheme."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError
from repro.ft.abft import ABFTMatrix, abft_matmul


class TestABFTMatrix:
    def test_clean_verifies(self, rng):
        matrix = ABFTMatrix(rng.normal(size=(6, 6)))
        assert matrix.verify()

    def test_corruption_detected(self, rng):
        matrix = ABFTMatrix(rng.normal(size=(6, 6)))
        matrix.data[2, 3] += 5.0
        assert not matrix.verify()

    def test_rejects_1d(self):
        with pytest.raises(DataFormatError):
            ABFTMatrix(np.zeros(4))


class TestABFTMatmul:
    def test_clean_product_consistent(self, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(4, 6))
        c, report = abft_matmul(a, b)
        assert report.consistent
        assert not report.corrected
        assert np.allclose(c, a @ b)

    def test_single_fault_corrected(self, rng):
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))

        def corrupt(c):
            c = c.copy()
            c[2, 3] += 10.0
            return c

        c, report = abft_matmul(a, b, fault_hook=corrupt)
        assert not report.consistent
        assert report.corrected
        assert (report.error_row, report.error_col) == (2, 3)
        assert np.allclose(c, a @ b)

    def test_multi_fault_detected_not_corrected(self, rng):
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))

        def corrupt(c):
            c = c.copy()
            c[0, 0] += 3.0
            c[4, 4] -= 7.0
            return c

        _, report = abft_matmul(a, b, fault_hook=corrupt)
        assert not report.consistent
        assert not report.corrected

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            abft_matmul(np.zeros((3, 4)), np.zeros((5, 6)))

    def test_paper_claim_input_corruption_invisible(self, rng):
        """§1: input faults pass ABFT verification undetected."""
        a_clean = rng.normal(size=(6, 6))
        a_corrupt = a_clean.copy()
        a_corrupt[1, 1] += 100.0  # memory flip BEFORE the computation
        b = rng.normal(size=(6, 6))
        c, report = abft_matmul(a_corrupt, b)
        assert report.consistent  # certified...
        assert not np.allclose(c, a_clean @ b)  # ...and wrong.
