"""Tests for N-Version Programming voting."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.ft.nvp import NVPVoter, VersionOutcome


def double(x):
    return x * 2


def double_alt(x):
    return x + x


def wrong(x):
    return x * 3


def crash(x):
    raise RuntimeError("boom")


INPUT = np.arange(5.0)


class TestConstruction:
    def test_rejects_single_version(self):
        with pytest.raises(ConfigurationError):
            NVPVoter([double])

    def test_rejects_bad_quorum(self):
        with pytest.raises(ConfigurationError):
            NVPVoter([double, wrong], quorum=3)

    def test_default_quorum_is_majority(self):
        assert NVPVoter([double] * 5).quorum == 3


class TestVoting:
    def test_unanimous(self):
        result = NVPVoter([double, double_alt, double]).run(INPUT)
        assert result.agreed
        assert result.agreement_size == 3
        assert np.array_equal(result.output, INPUT * 2)
        assert all(o is VersionOutcome.AGREED for o in result.outcomes)

    def test_majority_masks_one_bad_version(self):
        result = NVPVoter([double, wrong, double_alt]).run(INPUT)
        assert result.agreed
        assert result.outcomes[1] is VersionOutcome.OUTVOTED
        assert np.array_equal(result.output, INPUT * 2)

    def test_crash_masked(self):
        result = NVPVoter([double, crash, double_alt]).run(INPUT)
        assert result.agreed
        assert result.outcomes[1] is VersionOutcome.CRASHED

    def test_no_quorum(self):
        result = NVPVoter([double, wrong, lambda x: x * 5]).run(INPUT)
        assert not result.agreed
        assert result.output is None

    def test_all_crash(self):
        result = NVPVoter([crash, crash]).run(INPUT)
        assert not result.agreed
        assert result.agreement_size == 0

    def test_custom_quorum(self):
        # T/(N-1)-style: require only 2 agreeing votes of 4.
        voter = NVPVoter([double, wrong, lambda x: x * 5, double_alt], quorum=2)
        result = voter.run(INPUT)
        assert result.agreed
        assert result.agreement_size == 2

    def test_tolerance_groups_rounding_variants(self):
        noisy = lambda x: x * 2 + 1e-12
        result = NVPVoter([double, noisy, double_alt], atol=1e-9).run(INPUT)
        assert result.agreement_size == 3

    def test_paper_claim_shared_input_corruption_certified(self):
        """§1: all versions agree on the wrong answer for corrupted input."""
        corrupted_input = INPUT + 1000.0
        result = NVPVoter([double, double_alt, double]).run(corrupted_input)
        assert result.agreed  # certified...
        assert not np.array_equal(result.output, INPUT * 2)  # ...and wrong.
