"""End-to-end bit-identity of fused + cached + shared-memory execution.

The contract the whole PR rests on: for every backend, worker count,
and cache temperature (none / cold / warm / disk-backed), a fused
multi-arm run returns **bit-identical** values (``tobytes`` equality of
the float payloads via exact ``==``) to running each arm as its own
unfused serial plan with the canonical trial protocol.
"""

import multiprocessing

import numpy as np
import pytest

from repro.baselines.median import median_smooth_temporal
from repro.cache import ArtifactCache
from repro.config import NGSTConfig, NGSTDatasetConfig
from repro.core.algo_ngst import AlgoNGST
from repro.experiments.common import walk_dataset
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector, derive_injector_seed
from repro.metrics.relative_error import psi
from repro.runtime import (
    Arm,
    ArmRequest,
    ArtifactPipeline,
    FaultSpec,
    ProcessPoolBackend,
    SerialBackend,
    TrialRuntime,
    fuse,
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)

N_TRIALS = 6
SEED = 2003
SHAPE = (6, 8, 8)  # (frames, rows, cols) of uint16 NGST walk variants


def _fixture():
    """A small figure-4-style grid point with three preprocessing arms."""
    dataset_config = NGSTDatasetConfig(n_variants=SHAPE[0])
    model = CorrelatedFaultModel(0.05)
    dataset = walk_dataset(dataset_config, SHAPE[1:])
    algo = AlgoNGST(NGSTConfig(sensitivity=80.0))
    arms = [
        Arm("none", lambda corrupted, pristine: psi(corrupted, pristine)),
        Arm(
            "algo_ngst",
            lambda corrupted, pristine, algo=algo: psi(
                algo(corrupted).corrected, pristine
            ),
        ),
        Arm(
            "median_w3",
            lambda corrupted, pristine: psi(
                median_smooth_temporal(corrupted), pristine
            ),
        ),
    ]
    return dataset, model, arms


def _unfused_reference(dataset, model, arms):
    """Each arm as its own serial plan, canonical trial protocol."""
    results = {}
    for arm in arms:
        def trial(rng, arm=arm):
            pristine = dataset.build(rng)
            injector = FaultInjector(model, seed=derive_injector_seed(rng))
            corrupted, _ = injector.inject(pristine)
            return arm.evaluate(corrupted, pristine)

        results[arm.name] = TrialRuntime().run(trial, N_TRIALS, seed=SEED)
    return results


def _fused_group(dataset, model, arms):
    requests = [
        ArmRequest(
            arm=arm,
            pipeline=ArtifactPipeline(dataset=dataset, fault=FaultSpec.of(model)),
            n_trials=N_TRIALS,
            seed=SEED,
        )
        for arm in arms
    ]
    (group,) = fuse(requests)
    return group


def _assert_identical(fused, reference):
    assert set(fused) == set(reference)
    for name in reference:
        assert fused[name] == reference[name], f"arm {name} diverged"
        assert np.asarray(fused[name]).tobytes() == np.asarray(
            reference[name]
        ).tobytes()


@pytest.fixture(scope="module")
def reference():
    dataset, model, arms = _fixture()
    return _unfused_reference(dataset, model, arms)


class TestSerialEquivalence:
    def test_fused_without_cache(self, reference):
        dataset, model, arms = _fixture()
        fused = TrialRuntime().run_fused(_fused_group(dataset, model, arms))
        _assert_identical(fused, reference)

    def test_fused_cold_cache(self, reference):
        dataset, model, arms = _fixture()
        runtime = TrialRuntime(cache=ArtifactCache())
        fused = runtime.run_fused(_fused_group(dataset, model, arms))
        _assert_identical(fused, reference)
        stats = runtime.cache.stats()
        assert stats.misses > 0  # cold: everything was produced once

    def test_fused_warm_cache(self, reference):
        dataset, model, arms = _fixture()
        runtime = TrialRuntime(cache=ArtifactCache())
        group = _fused_group(dataset, model, arms)
        runtime.run_fused(group, key="cold")
        warm = runtime.run_fused(group, key="warm")
        _assert_identical(warm, reference)
        assert runtime.cache.stats().hits >= 2 * N_TRIALS  # pristine + realization

    def test_fused_disk_tier_across_processes_simulated(self, reference, tmp_path):
        """A fresh runtime (empty memory tier) serving from disk."""
        dataset, model, arms = _fixture()
        group = _fused_group(dataset, model, arms)
        TrialRuntime(cache=ArtifactCache(directory=tmp_path)).run_fused(group)

        fresh = TrialRuntime(cache=ArtifactCache(directory=tmp_path))
        fused = fresh.run_fused(group)
        _assert_identical(fused, reference)
        assert fresh.cache.stats().disk_hits >= 2 * N_TRIALS


@needs_fork
class TestPoolEquivalence:
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_fused_pool_cold(self, reference, jobs):
        dataset, model, arms = _fixture()
        runtime = TrialRuntime(
            backend=ProcessPoolBackend(jobs, start_method="fork"),
            cache=ArtifactCache(),
            shard_size=1,
        )
        fused = runtime.run_fused(_fused_group(dataset, model, arms))
        _assert_identical(fused, reference)

    def test_fused_pool_warm_broadcast(self, reference):
        """Warm entries travel to workers via the shared-memory overlay
        and the worker-side hit counters ride back to the parent."""
        dataset, model, arms = _fixture()
        group = _fused_group(dataset, model, arms)
        cache = ArtifactCache()
        TrialRuntime(cache=cache).run_fused(group, key="warmup")

        runtime = TrialRuntime(
            backend=ProcessPoolBackend(2, start_method="fork"),
            cache=cache,
            shard_size=1,
        )
        fused = runtime.run_fused(group, key="pooled")
        _assert_identical(fused, reference)
        assert cache.stats().overlay_hits >= 2 * N_TRIALS

    def test_shard_size_does_not_change_values(self, reference):
        dataset, model, arms = _fixture()
        for shard_size in (1, 2, N_TRIALS):
            runtime = TrialRuntime(
                backend=ProcessPoolBackend(2, start_method="fork"),
                cache=ArtifactCache(),
                shard_size=shard_size,
            )
            fused = runtime.run_fused(_fused_group(dataset, model, arms))
            _assert_identical(fused, reference)


class TestSpawnLimitation:
    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_fused_closures_degrade_to_serial_under_spawn(self, monkeypatch):
        """Fused shard functions are closures; spawn cannot pickle them,
        so the pre-flight check must warn once and run them in-process —
        with values bit-identical to a serial backend."""
        from repro.runtime import backend as backend_mod

        monkeypatch.setattr(backend_mod, "_SPAWN_FALLBACK_WARNED", False)
        dataset, model, arms = _fixture()
        reference = TrialRuntime(cache=ArtifactCache()).run_fused(
            _fused_group(dataset, model, arms)
        )
        runtime = TrialRuntime(
            backend=ProcessPoolBackend(2, start_method="spawn"),
            cache=ArtifactCache(),
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            fused = runtime.run_fused(_fused_group(dataset, model, arms))
        _assert_identical(fused, reference)
