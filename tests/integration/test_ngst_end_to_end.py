"""Integration: the full NGST data path, generator to downlink."""

import io

import numpy as np
import pytest

from repro.config import NGSTConfig
from repro.core.preprocessor import NGSTPreprocessor
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.fits.file import read_fits, write_hdu
from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline
from repro.ngst.cosmic_rays import CosmicRayModel
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_decode


@pytest.fixture(scope="module")
def pipeline_world():
    rng = np.random.default_rng(99)
    ramp = RampModel(n_readouts=16, read_noise=8.0)
    flux = rng.uniform(0.5, 4.0, size=(64, 64))
    stack = ramp.generate(flux, rng)
    cr_stack, _ = CosmicRayModel(
        hit_probability=0.1, min_amplitude=500, max_amplitude=5000
    ).inject(stack, rng)
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=5).inject(
        cr_stack
    )
    return ramp, flux, cr_stack, corrupted


class TestEndToEnd:
    def test_preprocessing_improves_science_output(self, pipeline_world):
        ramp, flux, cr_stack, corrupted = pipeline_world
        cluster = ClusterConfig(n_slaves=4, tile=32)
        plain = CRRejectionPipeline(ramp, cluster).run(corrupted)
        pre = CRRejectionPipeline(
            ramp, cluster, NGSTPreprocessor(NGSTConfig(sensitivity=90))
        ).run(corrupted)
        plain_err = np.abs(plain.image - flux).mean()
        pre_err = np.abs(pre.image - flux).mean()
        assert pre_err < plain_err

    def test_downlink_payload_decodes_to_image(self, pipeline_world):
        ramp, flux, cr_stack, corrupted = pipeline_world
        cluster = ClusterConfig(n_slaves=4, tile=32)
        report = CRRejectionPipeline(ramp, cluster).run(corrupted)
        decoded = rice_decode(report.compressed)
        assert decoded.shape == report.image.shape

    def test_fits_transport_through_preprocessor(self, pipeline_world):
        ramp, flux, cr_stack, corrupted = pipeline_world
        raw = write_hdu(corrupted)
        pre = NGSTPreprocessor(NGSTConfig(sensitivity=90))
        encoded, outcome = pre.process_fits(raw)
        # The preprocessed FITS decodes and is closer to the flip-free
        # stack than the corrupted one.
        decoded = read_fits(io.BytesIO(encoded))[0].physical_data()
        raw_err = np.abs(
            corrupted.astype(np.int64) - cr_stack.astype(np.int64)
        ).mean()
        pre_err = np.abs(
            decoded.astype(np.int64) - cr_stack.astype(np.int64)
        ).mean()
        assert pre_err < raw_err

    def test_full_cr_rejection_quality(self, pipeline_world):
        ramp, flux, cr_stack, corrupted = pipeline_world
        cluster = ClusterConfig(n_slaves=4, tile=32)
        clean_run = CRRejectionPipeline(ramp, cluster).run(cr_stack)
        assert np.abs(clean_run.image - flux).mean() < 0.2
