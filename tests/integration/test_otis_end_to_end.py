"""Integration: the full OTIS data path with ALFT."""

import numpy as np
import pytest

from repro.config import OTISBounds, OTISConfig
from repro.core.algo_otis import AlgoOTIS
from repro.exceptions import ALFTError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.otis.alft import ALFTExecutor, OutputSource
from repro.otis.planck import brightness_temperature
from repro.otis.quantize import decode_dn
from repro.otis.spectrometer import Spectrometer, default_bands
from repro.otis.temperature import emissivity_cube, temperature_map


@pytest.fixture(scope="module")
def otis_world():
    rng = np.random.default_rng(41)
    scene = 290.0 + rng.normal(0, 0.5, size=(48, 48))
    scene[10:13, 10:13] += 40.0  # natural hot anomaly
    bands = default_bands(6)
    instrument = Spectrometer(bands)
    dn_cube = instrument.sense_dn(scene, emissivity=0.97, rng=rng)
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.05), seed=6).inject(
        dn_cube
    )
    return scene, bands, instrument, dn_cube, corrupted


def mean_retrieval(cube_dn, bands, scale):
    cube = decode_dn(cube_dn, scale)
    temps = np.stack(
        [
            brightness_temperature(b.wavelength_um, cube[z] / 0.97)
            for z, b in enumerate(bands)
        ]
    )
    return temps.mean(axis=0)


class TestOTISEndToEnd:
    def test_clean_retrieval_accurate(self, otis_world):
        scene, bands, instrument, dn_cube, _ = otis_world
        temps = temperature_map(decode_dn(dn_cube, instrument.dn_scale), bands)
        assert np.abs(temps - scene).mean() < 0.1

    def test_preprocessing_improves_temperature_product(self, otis_world):
        scene, bands, instrument, dn_cube, corrupted = otis_world
        config = OTISConfig(
            sensitivity=60,
            bounds=OTISBounds(lower=0.0, upper=25.0),
            dn_scale=instrument.dn_scale,
        )
        repaired = AlgoOTIS(config)(corrupted).corrected
        raw_temps = mean_retrieval(corrupted, bands, instrument.dn_scale)
        fixed_temps = mean_retrieval(repaired, bands, instrument.dn_scale)
        assert (
            np.abs(fixed_temps - scene).mean()
            < np.abs(raw_temps - scene).mean() / 3
        )

    def test_anomaly_survives_preprocessing(self, otis_world):
        scene, bands, instrument, dn_cube, corrupted = otis_world
        config = OTISConfig(
            sensitivity=60,
            bounds=OTISBounds(lower=0.0, upper=25.0),
            dn_scale=instrument.dn_scale,
        )
        repaired = AlgoOTIS(config)(corrupted).corrected
        temps = mean_retrieval(repaired, bands, instrument.dn_scale)
        assert float(np.median(temps[10:13, 10:13])) > 310.0

    def test_alft_catastrophe_eliminated_by_preprocessing(self, otis_world):
        scene, bands, instrument, dn_cube, corrupted = otis_world

        def roughness(temps):
            from repro.core.algo_otis import spatial_median

            return float(np.abs(temps - spatial_median(temps)).mean())

        def acceptance(temps):
            return bool(np.isfinite(temps).all() and roughness(temps) < 2.0)

        def primary(cube):
            return mean_retrieval(cube, bands, instrument.dn_scale)

        def secondary(cube):
            return mean_retrieval(cube[::2], bands[::2], instrument.dn_scale)

        executor = ALFTExecutor(primary, secondary, acceptance)
        with pytest.raises(ALFTError):
            executor.run(corrupted)

        config = OTISConfig(
            sensitivity=60,
            bounds=OTISBounds(lower=0.0, upper=25.0),
            dn_scale=instrument.dn_scale,
        )
        repaired = AlgoOTIS(config)(corrupted).corrected
        outcome = ALFTExecutor(primary, secondary, acceptance).run(repaired)
        assert outcome.source is OutputSource.PRIMARY

    def test_emissivity_product_consistent(self, otis_world):
        scene, bands, instrument, dn_cube, _ = otis_world
        cube = decode_dn(dn_cube, instrument.dn_scale)
        temps = temperature_map(cube, bands, emissivity=0.97)
        eps = emissivity_cube(cube, bands, temps)
        assert eps.shape == cube.shape
        assert np.median(eps) == pytest.approx(0.97, abs=0.02)
