"""Qualitative reproduction of the paper's headline claims, seeded.

Each test pins one statement from the paper's evaluation narrative and
asserts the corresponding *shape* on our implementation (who wins, by
roughly what factor, where the crossovers fall).  EXPERIMENTS.md records
the quantitative panels.
"""

import numpy as np
import pytest

from repro.baselines.majority import majority_vote_spatial, majority_vote_temporal
from repro.baselines.median import median_smooth_spatial, median_smooth_temporal
from repro.config import (
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
    OTISConfig,
)
from repro.core.algo_ngst import AlgoNGST
from repro.core.algo_otis import AlgoOTIS
from repro.data.ngst import generate_walk
from repro.data.otis import make_dataset
from repro.experiments.common import best_sensitivity
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.confusion import bit_confusion
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn

LAMBDAS = (10.0, 30.0, 50.0, 70.0, 90.0, 100.0)


def ngst_world(gamma0, sigma=25.0, shape=(16, 16), seed=77):
    rng = np.random.default_rng(seed)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=64, sigma=sigma), rng, shape
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(gamma0), seed=seed).inject(
        pristine
    )
    return pristine, corrupted


class TestSection6Claims:
    """§6: order-of-magnitude Ψ reduction in the practical Γ₀ range."""

    def test_gain_of_tens_at_low_gamma(self):
        pristine, corrupted = ngst_world(0.01)
        _, best = best_sensitivity(corrupted, pristine, LAMBDAS)
        assert psi(corrupted, pristine) / best > 25

    def test_gain_persists_across_practical_range(self):
        for gamma0 in (0.001, 0.005, 0.02):
            pristine, corrupted = ngst_world(gamma0)
            _, best = best_sensitivity(corrupted, pristine, LAMBDAS)
            assert best < psi(corrupted, pristine) / 5


class TestFigure2Claims:
    """Over-sensitivity degrades accuracy (false alarms grow with Λ)."""

    def test_false_alarms_grow_with_lambda(self):
        pristine, corrupted = ngst_world(0.01)
        fps = []
        for lam in (10, 50, 100):
            result = AlgoNGST(NGSTConfig(sensitivity=lam))(corrupted)
            fps.append(bit_confusion(pristine, corrupted, result.corrected).false_alarms)
        assert fps[0] < fps[1] < fps[2]

    def test_optimum_lambda_grows_with_gamma(self):
        """§5: the optimum sensitivity depends on the fault probability."""
        _, corrupted_lo = ngst_world(0.0005)
        pristine_lo, _ = ngst_world(0.0005)
        pristine_hi, corrupted_hi = ngst_world(0.05)
        lam_lo, _ = best_sensitivity(corrupted_lo, pristine_lo, LAMBDAS)
        lam_hi, _ = best_sensitivity(corrupted_hi, pristine_hi, LAMBDAS)
        assert lam_hi >= lam_lo

    def test_beats_median_at_optimum(self):
        pristine, corrupted = ngst_world(0.01)
        _, best = best_sensitivity(corrupted, pristine, LAMBDAS)
        assert best < psi(median_smooth_temporal(corrupted), pristine)


class TestFigure4Claims:
    """Correlated faults: Algo_NGST beats both smoothers, which are similar."""

    @pytest.mark.parametrize("gamma_ini", [0.01, 0.02, 0.03])
    def test_ordering_under_correlated_faults(self, gamma_ini):
        rng = np.random.default_rng(13)
        pristine = generate_walk(
            NGSTDatasetConfig(n_variants=64, sigma=25.0), rng, (16, 16)
        )
        model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=gamma_ini))
        corrupted, _ = FaultInjector(model, seed=13).inject(pristine)
        _, algo = best_sensitivity(corrupted, pristine, LAMBDAS)
        median = psi(median_smooth_temporal(corrupted), pristine)
        majority = psi(majority_vote_temporal(corrupted), pristine)
        assert algo < median
        assert algo < majority


class TestFigure6Claims:
    """σ sweep: more neighbours help on calm data, hurt on turbulent."""

    def _best_for(self, sigma, upsilon, gamma0=0.01, seed=21):
        rng = np.random.default_rng(seed)
        pristine = generate_walk(
            NGSTDatasetConfig(n_variants=64, sigma=sigma), rng, (12, 12)
        )
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(gamma0), seed=seed
        ).inject(pristine)
        best = None
        for lam in LAMBDAS:
            value = psi(
                AlgoNGST(NGSTConfig(upsilon=upsilon, sensitivity=lam))(
                    corrupted
                ).corrected,
                pristine,
            )
            best = value if best is None else min(best, value)
        return best

    def test_sigma_zero_more_neighbours_help(self):
        assert self._best_for(0.0, 4) <= self._best_for(0.0, 2)

    def test_high_sigma_fewer_neighbours_competitive(self):
        # At σ=8000 (extremely turbulent) Υ=2 stays within reach of Υ=6
        # for small Γ₀ — large Υ no longer dominates as it does at σ=0.
        ratio_turbulent = self._best_for(8000.0, 2) / self._best_for(8000.0, 6)
        ratio_calm = self._best_for(0.0, 2) / self._best_for(0.0, 6)
        assert ratio_turbulent < ratio_calm


class TestSection8Claims:
    """OTIS: Ψ ≈ 12 % raw at Γ₀ = 0.05; preprocessed well below."""

    def test_raw_error_magnitude_matches_paper(self):
        field = make_dataset("blob", 48, 48)
        dn = encode_dn(field)
        corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.05), seed=8).inject(dn)
        raw = psi(decode_dn(corrupted), decode_dn(dn))
        assert 0.08 < raw < 0.2  # the paper reports ~12 %

    def test_preprocessing_brings_error_below_one_percent(self):
        field = make_dataset("blob", 48, 48)
        dn = encode_dn(field)
        corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.05), seed=8).inject(dn)
        best = None
        for lam in (40, 60, 80, 100):
            value = psi(
                decode_dn(AlgoOTIS(OTISConfig(sensitivity=lam))(corrupted).corrected),
                decode_dn(dn),
            )
            best = value if best is None else min(best, value)
        assert best < 0.01

    def test_algo_otis_wins_at_gamma_025(self):
        """'Algo_OTIS performs far better than either of them in regions
        of Γ₀ >= 0.025'."""
        for name in ("blob", "stripe", "spots"):
            field = make_dataset(name, 48, 48)
            dn = encode_dn(field)
            pristine = decode_dn(dn)
            corrupted, _ = FaultInjector(
                UncorrelatedFaultModel(0.025), seed=8
            ).inject(dn)
            best = min(
                psi(
                    decode_dn(
                        AlgoOTIS(OTISConfig(sensitivity=lam))(corrupted).corrected
                    ),
                    pristine,
                )
                for lam in (40, 60, 80, 100)
            )
            median = psi(decode_dn(median_smooth_spatial(corrupted)), pristine)
            majority = psi(decode_dn(majority_vote_spatial(corrupted)), pristine)
            assert best < median, name
            assert best < majority, name


class TestFigure9Claims:
    """Correlated OTIS faults: breakdown mechanism past Γ_ini ≈ 0.2."""

    def _weighted_pseudo_fraction(self, gamma_ini, seeds=(8, 9, 10)):
        """Significance-weighted share of the algorithm's bit-flips that
        are pseudo-corrections (clean bits harmed)."""
        fractions = []
        for seed in seeds:
            field = make_dataset("blob", 32, 32)
            dn = encode_dn(field)
            model = CorrelatedFaultModel(
                CorrelatedFaultConfig(gamma_ini=gamma_ini)
            )
            corrupted, _ = FaultInjector(model, seed=seed).inject(dn)
            processed = AlgoOTIS(OTISConfig())(corrupted).corrected
            injected = np.bitwise_xor(dn, corrupted)
            residual = np.bitwise_xor(dn, processed)
            good = float((injected & ~residual).astype(np.float64).sum())
            harm = float((~injected & residual).astype(np.float64).sum())
            fractions.append(harm / (good + harm) if good + harm else 0.0)
        return float(np.mean(fractions))

    def test_low_gamma_mostly_genuine_corrections(self):
        assert self._weighted_pseudo_fraction(0.05) < 0.2

    def test_breakdown_mechanism_past_point_two(self):
        # Beyond the paper's ~0.2 breakdown point, pseudo-corrections
        # climb steeply toward dominance.
        assert self._weighted_pseudo_fraction(0.4) > 0.3

    def test_pseudo_fraction_grows(self):
        low = self._weighted_pseudo_fraction(0.1)
        high = self._weighted_pseudo_fraction(0.4)
        assert high > 2 * low
