"""End-to-end kill/resume for the single-DAG `repro report` run.

The acceptance contract for the orchestrator: a report run hard-killed
at an arbitrary point and restarted with ``--resume`` produces
byte-identical output to an uninterrupted run, with completed nodes
detected purely from the filesystem.  Each case below runs the report
in a child process whose telemetry hook ``os._exit``s the interpreter
after K node completions — a hard kill with no cleanup, no atexit, no
cache flush — then resumes through the real CLI and compares bytes.
"""

import json
import os
import subprocess
import sys

import pytest

#: Report subset used throughout: fig2 expands fine-grained (26 nodes
#: under --quick) and motivation is a coarse experiment node, so kills
#: land both mid-figure and around whole-experiment boundaries.
EXPERIMENTS = "fig2,motivation"

_KILLER = """\
import os, sys
from repro.cache import ArtifactCache
from repro.dag.report import PANELS_NODE, build_report_graph
from repro.dag.scheduler import DagScheduler
from repro.runtime import Telemetry
from repro.runtime.telemetry import NodeCompleted

kill_after, cache_dir = int(sys.argv[1]), sys.argv[2]
seen = 0

def killer(event):
    global seen
    if isinstance(event, NodeCompleted):
        seen += 1
        if seen >= kill_after:
            os._exit(137)  # hard kill: no cleanup, no flush

telemetry = Telemetry()
telemetry.subscribe(killer)
graph = build_report_graph(sys.argv[3].split(","), quick=True)
DagScheduler(
    cache=ArtifactCache(directory=cache_dir), telemetry=telemetry
).run(graph, targets=(PANELS_NODE,), recover=True)
"""


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def _run_report(cache_dir, json_path, out_path, resume=False):
    argv = [
        sys.executable, "-m", "repro.cli", "report",
        "--quick", "--only", EXPERIMENTS,
        "--cache-dir", str(cache_dir),
        "--json", str(json_path), "--out", str(out_path),
    ]
    if resume:
        argv.append("--resume")
    return subprocess.run(
        argv, env=_env(), capture_output=True, text=True, timeout=600
    )


def _kill_at(kill_after, cache_dir):
    proc = subprocess.run(
        [sys.executable, "-c", _KILLER, str(kill_after), str(cache_dir), EXPERIMENTS],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 137, proc.stderr
    return proc


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted report run: the byte-level ground truth."""
    root = tmp_path_factory.mktemp("report-reference")
    json_path, out_path = root / "panels.json", root / "report.md"
    proc = _run_report(root / "cache", json_path, out_path)
    assert proc.returncode == 0, proc.stderr
    return json_path.read_bytes(), out_path.read_bytes()


@pytest.mark.parametrize("kill_after", [2, 10, 24])
def test_killed_run_resumes_byte_identical(tmp_path, reference, kill_after):
    cache_dir = tmp_path / "cache"
    _kill_at(kill_after, cache_dir)
    # The kill left a partial store behind — some nodes, not all.
    published = list(cache_dir.glob("*.json"))
    assert published, "killed run should have published completed nodes"

    json_path, out_path = tmp_path / "panels.json", tmp_path / "report.md"
    proc = _run_report(cache_dir, json_path, out_path, resume=True)
    assert proc.returncode == 0, proc.stderr
    ref_json, ref_md = reference
    assert json_path.read_bytes() == ref_json
    assert out_path.read_bytes() == ref_md


def test_resume_restores_instead_of_recomputing(tmp_path, reference):
    """After the kill, the completed frontier is detected purely from
    the filesystem: the resumed run restores those nodes from the store."""
    cache_dir = tmp_path / "cache"
    _kill_at(10, cache_dir)
    argv = [
        sys.executable, "-m", "repro.cli", "report",
        "--quick", "--only", EXPERIMENTS, "--resume", "--progress",
        "--cache-dir", str(cache_dir),
    ]
    proc = subprocess.run(
        argv, env=_env(), capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr
    assert "restored from store" in proc.stderr
    start_line = [l for l in proc.stderr.splitlines() if "start:" in l][0]
    # ≥10 nodes completed before the kill; all must come back restored.
    restored = int(start_line.split("restored")[0].rsplit(",", 1)[1].split()[0])
    assert restored >= 10


def test_plan_reports_temperature_after_kill(tmp_path):
    cache_dir = tmp_path / "cache"
    _kill_at(5, cache_dir)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "report", "--plan",
            "--quick", "--only", EXPERIMENTS, "--cache-dir", str(cache_dir),
        ],
        env=_env(), capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    header = proc.stdout.splitlines()[0]
    assert "pending" in header and "temperature" in header
    assert "0 done" not in header


def _panels(blob):
    return json.loads(blob.decode())


def test_reference_panels_match_direct_experiment_run(reference):
    """The DAG-produced panels decode to the registry experiments' ids."""
    panels = _panels(reference[0])
    assert [p["experiment_id"] for p in panels] == ["fig2", "motivation"]
