"""Tests for the campaign trial archive."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.io.archive import CampaignArchive, load_trial, save_trial


@pytest.fixture
def trial(walk_stack):
    injector = FaultInjector(UncorrelatedFaultModel(0.01), seed=4)
    corrupted, report = injector.inject(walk_stack)
    return walk_stack, corrupted, report.flip_mask


class TestSaveLoadTrial:
    def test_roundtrip_bit_exact(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        path = tmp_path / "t.fits"
        save_trial(path, pristine, corrupted, mask)
        p, c, m = load_trial(path)
        assert np.array_equal(p, pristine)
        assert np.array_equal(c, corrupted)
        assert np.array_equal(m, mask)

    def test_mask_consistency_preserved(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        path = tmp_path / "t.fits"
        save_trial(path, pristine, corrupted, mask)
        p, c, m = load_trial(path)
        assert np.array_equal(p ^ m, c)

    def test_shape_mismatch_rejected(self, tmp_path, trial):
        pristine, corrupted, _ = trial
        with pytest.raises(DataFormatError):
            save_trial(tmp_path / "t.fits", pristine, corrupted, np.zeros(3, dtype=np.uint16))

    def test_on_disk_corruption_detected(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        path = tmp_path / "t.fits"
        save_trial(path, pristine, corrupted, mask)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x08  # flip a data bit on "disk"
        path.write_bytes(bytes(raw))
        with pytest.raises(DataFormatError, match="checksum"):
            load_trial(path)

    def test_verify_can_be_skipped(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        path = tmp_path / "t.fits"
        save_trial(path, pristine, corrupted, mask)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x08
        path.write_bytes(bytes(raw))
        load_trial(path, verify=False)  # loads despite the damage


class TestCampaignArchive:
    def test_save_load_named(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        archive = CampaignArchive(tmp_path / "camp")
        archive.save("g01", pristine, corrupted, mask, {"gamma0": 0.01})
        loaded = archive.load("g01")
        assert loaded.metadata["gamma0"] == 0.01
        assert np.array_equal(loaded.pristine, pristine)

    def test_manifest_persists_across_instances(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        CampaignArchive(tmp_path / "camp").save("a", pristine, corrupted, mask)
        reopened = CampaignArchive(tmp_path / "camp")
        assert reopened.names() == ["a"]
        assert len(reopened) == 1

    def test_unknown_name_rejected(self, tmp_path):
        archive = CampaignArchive(tmp_path / "camp")
        with pytest.raises(DataFormatError, match="unknown trial"):
            archive.load("nope")

    def test_invalid_name_rejected(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        archive = CampaignArchive(tmp_path / "camp")
        with pytest.raises(DataFormatError):
            archive.save("../evil", pristine, corrupted, mask)

    def test_multiple_trials(self, tmp_path, trial):
        pristine, corrupted, mask = trial
        archive = CampaignArchive(tmp_path / "camp")
        for name in ("t1", "t2", "t3"):
            archive.save(name, pristine, corrupted, mask)
        assert archive.names() == ["t1", "t2", "t3"]
