"""Stateful property test of the campaign archive."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.io.archive import CampaignArchive

NAMES = st.sampled_from(["alpha", "beta", "gamma", "delta"])


class ArchiveMachine(RuleBasedStateMachine):
    """Random interleavings of save/load/reopen keep the archive honest."""

    def __init__(self):
        super().__init__()
        self.shadow: dict[str, tuple] = {}

    @initialize(target=None)
    def setup(self):
        import tempfile

        self.root = tempfile.mkdtemp(prefix="repro-archive-")
        self.archive = CampaignArchive(self.root)

    @rule(name=NAMES, seed=st.integers(0, 2**16))
    def save(self, name, seed):
        rng = np.random.default_rng(seed)
        pristine = rng.integers(0, 2**16, size=(4, 4), dtype=np.uint16)
        mask = rng.integers(0, 2**16, size=(4, 4), dtype=np.uint16)
        corrupted = pristine ^ mask
        self.archive.save(name, pristine, corrupted, mask, {"seed": seed})
        self.shadow[name] = (pristine, corrupted, mask, seed)

    @rule(name=NAMES)
    def load(self, name):
        if name not in self.shadow:
            return
        trial = self.archive.load(name)
        pristine, corrupted, mask, seed = self.shadow[name]
        assert np.array_equal(trial.pristine, pristine)
        assert np.array_equal(trial.corrupted, corrupted)
        assert np.array_equal(trial.flip_mask, mask)
        assert trial.metadata["seed"] == seed

    @rule()
    def reopen(self):
        self.archive = CampaignArchive(self.root)

    @invariant()
    def names_match_shadow(self):
        if hasattr(self, "archive"):
            assert set(self.archive.names()) == set(self.shadow)


ArchiveMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
TestArchiveStateful = ArchiveMachine.TestCase
