"""Tests for bit-level confusion accounting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis.extra import numpy as hnp

from repro.exceptions import DataFormatError
from repro.metrics.confusion import bit_confusion


def u16(*values):
    return np.array(values, dtype=np.uint16)


class TestBitConfusion:
    def test_all_clean(self):
        data = u16(1, 2, 3)
        conf = bit_confusion(data, data, data)
        assert conf.true_corrections == 0
        assert conf.false_alarms == 0
        assert conf.missed == 0
        assert conf.precision == 1.0
        assert conf.recall == 1.0

    def test_perfect_correction(self):
        pristine = u16(0b1000)
        corrupted = u16(0b0000)
        conf = bit_confusion(pristine, corrupted, pristine)
        assert conf.true_corrections == 1
        assert conf.missed == 0
        assert conf.recall == 1.0

    def test_missed_flip(self):
        pristine = u16(0b1000)
        corrupted = u16(0b0000)
        conf = bit_confusion(pristine, corrupted, corrupted)
        assert conf.missed == 1
        assert conf.recall == 0.0

    def test_false_alarm(self):
        pristine = u16(0b1000)
        processed = u16(0b1001)  # flipped a clean bit
        conf = bit_confusion(pristine, pristine, processed)
        assert conf.false_alarms == 1
        assert conf.precision == 0.0

    def test_mixed_accounting(self):
        pristine = u16(0b1100)
        corrupted = u16(0b0101)  # bits 3 and 0 flipped
        processed = u16(0b1111)  # bit 3 fixed, bit 0 missed, bit 1 false alarm
        conf = bit_confusion(pristine, corrupted, processed)
        assert conf.true_corrections == 1
        assert conf.missed == 1
        assert conf.false_alarms == 1
        assert conf.injected == 2
        assert conf.residual_flips == 2

    def test_total_bits(self):
        conf = bit_confusion(u16(0, 0), u16(0, 0), u16(0, 0))
        assert conf.total_bits == 32

    def test_float32_supported(self):
        pristine = np.array([1.0, 2.0], dtype=np.float32)
        conf = bit_confusion(pristine, pristine, pristine)
        assert conf.total_bits == 64

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            bit_confusion(u16(1), u16(1, 2), u16(1))

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            bit_confusion(
                u16(1), np.array([1], dtype=np.uint32), np.array([1], dtype=np.uint32)
            )

    @given(
        hnp.arrays(dtype=np.uint16, shape=(8,)),
        hnp.arrays(dtype=np.uint16, shape=(8,)),
        hnp.arrays(dtype=np.uint16, shape=(8,)),
    )
    def test_conservation_property(self, pristine, corrupted, processed):
        """tp + missed == injected, and counts never exceed total bits."""
        conf = bit_confusion(pristine, corrupted, processed)
        assert conf.true_corrections + conf.missed == conf.injected
        assert conf.injected <= conf.total_bits
        assert conf.false_alarms <= conf.total_bits
        assert 0.0 <= conf.precision <= 1.0
        assert 0.0 <= conf.recall <= 1.0
