"""Tests for the overhead timing harness."""

import time

import pytest

from repro.exceptions import ConfigurationError
from repro.metrics.overhead import OverheadTimer, time_callable


class TestTimeCallable:
    def test_returns_positive_times(self):
        result = time_callable(lambda: sum(range(1000)), repeats=3)
        assert result.best_seconds > 0
        assert result.mean_seconds >= result.best_seconds
        assert result.repeats == 3

    def test_measures_sleep(self):
        result = time_callable(lambda: time.sleep(0.01), repeats=2, warmup=0)
        assert result.best_seconds >= 0.009

    def test_rejects_zero_repeats(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, repeats=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, warmup=-1)

    def test_relative_to(self):
        fast = time_callable(lambda: None, repeats=2)
        slow = time_callable(lambda: time.sleep(0.005), repeats=2)
        assert slow.relative_to(fast) > 1.0


class TestOverheadTimer:
    def test_accumulates_results(self):
        timer = OverheadTimer(repeats=2)
        timer.measure("a", lambda: None)
        timer.measure("b", lambda: None)
        assert set(timer.results) == {"a", "b"}

    def test_table_renders(self):
        timer = OverheadTimer(repeats=1)
        timer.measure("thing", lambda: None)
        table = timer.table(baseline="thing")
        assert "thing" in table
        assert "1.00x" in table

    def test_empty_table(self):
        assert "no timings" in OverheadTimer().table()
