"""Tests for the Ψ metric (Eqs. 3–4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.exceptions import DataFormatError
from repro.metrics.relative_error import improvement_factor, psi


class TestPsi:
    def test_identical_is_zero(self):
        data = np.array([100, 200, 300], dtype=np.uint16)
        assert psi(data, data) == 0.0

    def test_known_value(self):
        pristine = np.array([100.0, 200.0])
        observed = np.array([110.0, 180.0])
        # (10/100 + 20/200) / 2 = 0.1
        assert psi(observed, pristine) == pytest.approx(0.1)

    def test_symmetric_in_sign_of_error(self):
        pristine = np.array([100.0, 100.0])
        assert psi(np.array([90.0, 110.0]), pristine) == pytest.approx(0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            psi(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(DataFormatError):
            psi(np.zeros(0), np.zeros(0))

    def test_zero_denominator_floored(self):
        pristine = np.array([0.0, 100.0])
        value = psi(np.array([1.0, 100.0]), pristine, floor=1.0)
        assert value == pytest.approx(0.5)

    def test_non_finite_observed_capped(self):
        pristine = np.array([100.0], dtype=np.float64)
        value = psi(np.array([np.inf]), pristine)
        assert value == pytest.approx(1e6)

    def test_nan_observed_capped(self):
        pristine = np.array([100.0])
        assert np.isfinite(psi(np.array([np.nan]), pristine))

    def test_works_on_uint16(self, walk_stack):
        assert psi(walk_stack, walk_stack) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=(10,),
            elements={"min_value": 1, "max_value": 60000},
        )
    )
    def test_nonnegative_property(self, pristine):
        observed = pristine.copy()
        observed[0] ^= 0x0F00
        assert psi(observed, pristine) >= 0.0


class TestImprovementFactor:
    def test_basic_ratio(self):
        assert improvement_factor(0.2, 0.02) == pytest.approx(10.0)

    def test_perfect_correction_capped(self):
        assert improvement_factor(0.5, 0.0) == 1e9

    def test_both_zero_is_unity(self):
        assert improvement_factor(0.0, 0.0) == 1.0

    def test_cap_applied(self):
        assert improvement_factor(1.0, 1e-15, cap=100.0) == 100.0

    def test_negative_rejected(self):
        with pytest.raises(DataFormatError):
            improvement_factor(-0.1, 0.5)
