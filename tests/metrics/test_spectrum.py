"""Tests for the per-bit-position error spectra."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.spectrum import (
    bit_spectrum,
    render_spectrum,
    residual_attribution,
)


def u16(*values):
    return np.array(values, dtype=np.uint16)


class TestBitSpectrum:
    def test_identical_is_empty(self):
        spectrum = bit_spectrum(u16(1, 2, 3), u16(1, 2, 3))
        assert spectrum.total_flips == 0
        assert spectrum.total_weight == 0.0
        assert spectrum.dominant_positions() == []

    def test_single_bit(self):
        spectrum = bit_spectrum(u16(0), u16(1 << 9))
        assert spectrum.flips[9] == 1
        assert spectrum.total_flips == 1
        assert spectrum.total_weight == 512.0

    def test_multiple_positions(self):
        spectrum = bit_spectrum(u16(0, 0), u16(0b101, 0b100))
        assert spectrum.flips[0] == 1
        assert spectrum.flips[2] == 2
        assert spectrum.total_flips == 3

    def test_dominant_positions_ordering(self):
        spectrum = bit_spectrum(u16(0, 0, 0), u16(1 << 15, 1, 1))
        dominant = spectrum.dominant_positions(0.9)
        assert dominant == [15]

    def test_dominant_fraction_validated(self):
        spectrum = bit_spectrum(u16(0), u16(1))
        with pytest.raises(DataFormatError):
            spectrum.dominant_positions(0.0)

    def test_float32_supported(self):
        a = np.array([1.0], dtype=np.float32)
        b = a.copy()
        b_bits = b.view(np.uint32)
        b_bits[0] ^= np.uint32(1 << 31)
        spectrum = bit_spectrum(a, b_bits.view(np.float32))
        assert spectrum.nbits == 32
        assert spectrum.flips[31] == 1

    def test_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            bit_spectrum(u16(0), np.zeros(1, dtype=np.uint32))

    def test_uniform_faults_flat_spectrum(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.05), seed=1
        ).inject(walk_stack)
        spectrum = bit_spectrum(walk_stack, corrupted)
        # i.i.d. flips: every position within 3 sigma of the mean count.
        mean = spectrum.flips.mean()
        sigma = np.sqrt(mean)
        assert np.all(np.abs(spectrum.flips - mean) < 5 * sigma)


class TestResidualAttribution:
    def test_categories_partition_the_bits(self, walk_stack):
        from repro.config import NGSTConfig
        from repro.core.algo_ngst import AlgoNGST

        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=2
        ).inject(walk_stack)
        processed = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted).corrected
        spectra = residual_attribution(walk_stack, corrupted, processed)
        assert (
            spectra["repaired"].total_flips + spectra["missed"].total_flips
            == spectra["injected"].total_flips
        )

    def test_repairs_concentrate_in_high_bits(self, walk_stack):
        """The window structure: repairs live above window C."""
        from repro.config import NGSTConfig
        from repro.core.algo_ngst import AlgoNGST

        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=2
        ).inject(walk_stack)
        processed = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted).corrected
        spectra = residual_attribution(walk_stack, corrupted, processed)
        repaired = spectra["repaired"].flips
        assert repaired[12:].sum() > repaired[:4].sum()

    def test_render(self, walk_stack):
        corrupted, _ = FaultInjector(
            UncorrelatedFaultModel(0.01), seed=2
        ).inject(walk_stack)
        spectra = residual_attribution(walk_stack, corrupted, corrupted)
        table = render_spectrum(spectra)
        assert "injected" in table
        assert table.count("\n") == 16  # header + 16 bit rows

    def test_render_empty(self):
        assert "no spectra" in render_spectrum({})
