"""Dispatch semantics of the native kernel tier.

The byte-identity of the tiers is covered by
``tests/core/test_kernel_equivalence.py``; these tests pin down the
selection machinery itself — env-var parsing, the programmatic knob,
the accepts-predicate demotion, the explicit-native fallback warning —
plus the ``repro kernels`` CLI and the loader's failure surface.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.native import (
    ENV_VAR,
    TIERS,
    dispatch,
    get_kernel_tier,
    kernel_tier,
    loader,
    native_available,
    set_kernel_tier,
)
from repro.native.cli import main as kernels_main


@pytest.fixture(autouse=True)
def _clean_tier_state(monkeypatch):
    """Every test starts from env/auto selection and leaves no override."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_kernel_tier(None)
    yield
    set_kernel_tier(None)


@pytest.fixture
def dummy_kernel():
    """A registry entry whose three tiers are distinguishable."""
    name = "test_dummy_kernel"
    calls = []
    dispatch.register(
        name,
        numpy_impl=lambda x: calls.append("numpy") or "numpy",
        reference_impl=lambda x: calls.append("reference") or "reference",
        native_impl=lambda x: calls.append("native") or "native",
        accepts=lambda x: x >= 0,
    )
    yield name, calls
    dispatch._REGISTRY.pop(name, None)


def test_tier_constants():
    assert TIERS == ("native", "numpy", "reference")
    assert ENV_VAR == "REPRO_KERNEL_TIER"


def test_default_tier_is_auto():
    assert dispatch.configured_tier() == "auto"
    assert get_kernel_tier() == "auto"


def test_env_var_is_parsed_case_and_space_insensitively(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "  NumPy ")
    assert get_kernel_tier() == "numpy"
    monkeypatch.setenv(ENV_VAR, "")
    assert get_kernel_tier() == "auto"


def test_unknown_env_tier_raises(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fortran")
    with pytest.raises(ConfigurationError, match="unknown kernel tier"):
        get_kernel_tier()


def test_set_kernel_tier_validates_and_overrides_env(monkeypatch):
    with pytest.raises(ConfigurationError, match="unknown kernel tier"):
        set_kernel_tier("assembler")
    monkeypatch.setenv(ENV_VAR, "numpy")
    set_kernel_tier("reference")
    assert get_kernel_tier() == "reference"
    set_kernel_tier(None)
    assert get_kernel_tier() == "numpy"


def test_kernel_tier_context_restores_previous():
    set_kernel_tier("numpy")
    with kernel_tier("reference"):
        assert get_kernel_tier() == "reference"
        with kernel_tier(None):
            assert get_kernel_tier() == "auto"
        assert get_kernel_tier() == "reference"
    assert get_kernel_tier() == "numpy"


def test_call_routes_by_tier(dummy_kernel, monkeypatch):
    name, _calls = dummy_kernel
    with kernel_tier("numpy"):
        assert dispatch.call(name, 1) == "numpy"
    with kernel_tier("reference"):
        assert dispatch.call(name, 1) == "reference"
    monkeypatch.setattr(loader, "available", lambda: True)
    with kernel_tier("native"):
        assert dispatch.call(name, 1) == "native"
    with kernel_tier("auto"):
        assert dispatch.call(name, 1) == "native"


def test_accepts_predicate_demotes_single_calls(dummy_kernel, monkeypatch):
    name, _calls = dummy_kernel
    monkeypatch.setattr(loader, "available", lambda: True)
    with kernel_tier("native"):
        assert dispatch.call(name, 1) == "native"
        assert dispatch.call(name, -1) == "numpy"  # accepts() rejected


def test_explicit_native_without_extension_warns_once(dummy_kernel, monkeypatch):
    name, _calls = dummy_kernel
    monkeypatch.setattr(loader, "available", lambda: False)
    monkeypatch.setattr(loader, "unavailable_reason", lambda: "test stub")
    monkeypatch.setattr(dispatch, "_warned_native_missing", False)
    with kernel_tier("native"):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert dispatch.call(name, 1) == "numpy"
        # Second call: silent fallback, no warning spam.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert dispatch.call(name, 1) == "numpy"


def test_auto_without_extension_is_silent(dummy_kernel, monkeypatch):
    name, _calls = dummy_kernel
    monkeypatch.setattr(loader, "available", lambda: False)
    monkeypatch.setattr(dispatch, "_warned_native_missing", False)
    import warnings

    with kernel_tier("auto"), warnings.catch_warnings():
        warnings.simplefilter("error")
        assert dispatch.call(name, 1) == "numpy"


def test_resolve_reports_argument_independent_tier(dummy_kernel, monkeypatch):
    name, _calls = dummy_kernel
    with kernel_tier("reference"):
        assert dispatch.resolve(name) == "reference"
    with kernel_tier("numpy"):
        assert dispatch.resolve(name) == "numpy"
    monkeypatch.setattr(loader, "available", lambda: True)
    with kernel_tier("auto"):
        assert dispatch.resolve(name) == "native"
    monkeypatch.setattr(loader, "available", lambda: False)
    with kernel_tier("auto"):
        assert dispatch.resolve(name) == "numpy"


def test_dispatched_results_identical_across_requested_tiers():
    # End-to-end sanity on a real kernel, whatever tiers this host has.
    from repro.core import bitops

    arr = np.arange(96, dtype=np.uint16).reshape(8, 12) * 571
    outputs = []
    for tier in ("auto",) + TIERS[1:]:
        with kernel_tier(tier):
            outputs.append(bitops.to_bit_planes(arr))
    for other in outputs[1:]:
        assert np.array_equal(outputs[0], other)


# ---------------------------------------------------------------------------
# loader surface
# ---------------------------------------------------------------------------


def test_loader_reports_origin_or_reason():
    if native_available():
        assert loader.origin()
        assert loader.unavailable_reason() is None
    else:
        assert loader.origin() is None
        assert loader.unavailable_reason()


def test_cache_root_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "knl"))
    assert loader.cache_root() == tmp_path / "knl"


# ---------------------------------------------------------------------------
# repro kernels CLI
# ---------------------------------------------------------------------------


def test_kernels_cli_human_report(capsys):
    assert kernels_main([]) == 0
    out = capsys.readouterr().out
    assert "requested tier" in out
    assert "correlated_flip_grid" in out
    assert "majority_vote_window" in out


def test_kernels_cli_json(capsys):
    assert kernels_main(["--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["requested_tier"] == "auto"
    assert isinstance(info["native_available"], bool)
    assert isinstance(info["compiler_available"], bool)
    expected = {
        "correlated_flip_grid",
        "grt",
        "unanimous",
        "to_bit_planes",
        "from_bit_planes",
        "majority_vote_window",
        "weighted_window_smooth",
    }
    assert expected <= set(info["kernels"])
    for entry in info["kernels"].values():
        assert entry["tier"] in TIERS


def test_kernels_cli_require_gate(capsys):
    set_kernel_tier("numpy")
    assert kernels_main(["--require", "numpy"]) == 0
    assert kernels_main(["--require", "native"]) == 1
    assert "--require native failed" in capsys.readouterr().err


def test_kernels_cli_routed_from_main(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["kernels", "--json"]) == 0
    info = json.loads(capsys.readouterr().out)
    assert "kernels" in info


def test_threads_flag_validation(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["fig2", "--threads", "-2"]) == 2
    assert repro_main(["fig2", "--threads", "2", "--jobs", "3"]) == 2
    err = capsys.readouterr().err
    assert "mutually exclusive" in err
