"""Tests for the master/worker CR-rejection pipeline."""

import numpy as np
import pytest

from repro.config import NGSTConfig
from repro.core.preprocessor import NGSTPreprocessor
from repro.exceptions import ConfigurationError, SimulationError
from repro.ngst.cluster import ClusterConfig, CRRejectionPipeline
from repro.ngst.cosmic_rays import CosmicRayModel
from repro.ngst.ramp import RampModel
from repro.ngst.rice import rice_decode


@pytest.fixture
def small_run(rng):
    model = RampModel(n_readouts=8, read_noise=5.0)
    flux = rng.uniform(2.0, 20.0, size=(64, 64))
    stack = model.generate(flux, rng)
    return model, flux, stack


class TestClusterConfig:
    def test_defaults(self):
        cfg = ClusterConfig()
        assert cfg.n_slaves == 15
        assert cfg.tile == 128

    def test_rejects_no_slaves(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_slaves=0)

    def test_work_factor_none_is_unity(self):
        assert ClusterConfig().work_factor(None) == 1.0

    def test_work_factor_grows_with_sensitivity(self):
        cfg = ClusterConfig()
        assert cfg.work_factor(100) > cfg.work_factor(10) > 1.0


class TestPipeline:
    def test_produces_image(self, small_run):
        model, flux, stack = small_run
        pipeline = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32))
        report = pipeline.run(stack)
        assert report.image.shape == (64, 64)
        assert report.n_fragments == 4
        assert np.abs(report.image - flux).mean() < 1.0

    def test_compressed_payload_decodes(self, small_run):
        model, flux, stack = small_run
        pipeline = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32))
        report = pipeline.run(stack)
        decoded = rice_decode(report.compressed).astype(np.float64) / 100.0
        assert np.abs(decoded - report.image).max() <= 0.005 + 1e-9

    def test_preprocessing_increases_makespan(self, small_run):
        model, _, stack = small_run
        cluster = ClusterConfig(n_slaves=4, tile=32)
        plain = CRRejectionPipeline(model, cluster).run(stack)
        pre = CRRejectionPipeline(
            model, cluster, NGSTPreprocessor(NGSTConfig(sensitivity=80))
        ).run(stack)
        assert pre.makespan_s > plain.makespan_s
        assert pre.preprocessed and not plain.preprocessed

    def test_more_slaves_faster(self, small_run):
        model, _, stack = small_run
        few = CRRejectionPipeline(model, ClusterConfig(n_slaves=1, tile=16)).run(stack)
        many = CRRejectionPipeline(model, ClusterConfig(n_slaves=8, tile=16)).run(stack)
        assert many.makespan_s < few.makespan_s

    def test_rejects_2d_input(self, small_run):
        model, _, _ = small_run
        pipeline = CRRejectionPipeline(model)
        with pytest.raises(SimulationError):
            pipeline.run(np.zeros((64, 64), dtype=np.uint16))

    def test_cr_rejection_inside_pipeline(self, small_run, rng):
        model, flux, stack = small_run
        hit_stack, _ = CosmicRayModel(hit_probability=0.2).inject(stack, rng)
        pipeline = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32))
        report = pipeline.run(hit_stack)
        naive = model.fit_slope(hit_stack)
        assert (
            np.abs(report.image - flux).mean() < np.abs(naive - flux).mean() / 5
        )

    def test_utilisation_within_unit(self, small_run):
        model, _, stack = small_run
        report = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32)).run(stack)
        assert 0.0 <= report.slave_utilisation <= 1.0

    def test_bytes_moved_accounts_both_directions(self, small_run):
        model, _, stack = small_run
        report = CRRejectionPipeline(model, ClusterConfig(n_slaves=4, tile=32)).run(stack)
        # At least the full input stack plus the returned flux tiles.
        assert report.bytes_moved > stack.nbytes


class TestFailureHandling:
    def test_failures_recovered_by_retries(self, small_run):
        model, flux, stack = small_run
        cfg = ClusterConfig(
            n_slaves=4,
            tile=32,
            slave_failure_probability=0.3,
            retry_timeout_s=0.05,
            failure_seed=1,
        )
        report = CRRejectionPipeline(model, cfg).run(stack)
        assert report.n_fragments == 4
        assert report.n_slave_failures > 0
        assert report.n_retries >= report.n_slave_failures
        assert np.abs(report.image - flux).mean() < 1.0

    def test_failures_slow_the_pipeline(self, small_run):
        model, _, stack = small_run
        healthy = CRRejectionPipeline(
            model, ClusterConfig(n_slaves=4, tile=32)
        ).run(stack)
        flaky = CRRejectionPipeline(
            model,
            ClusterConfig(
                n_slaves=4,
                tile=32,
                slave_failure_probability=0.4,
                retry_timeout_s=0.05,
                failure_seed=1,
            ),
        ).run(stack)
        assert flaky.makespan_s > healthy.makespan_s

    def test_zero_failure_probability_no_retries(self, small_run):
        model, _, stack = small_run
        report = CRRejectionPipeline(
            model, ClusterConfig(n_slaves=4, tile=32)
        ).run(stack)
        assert report.n_slave_failures == 0
        assert report.n_retries == 0

    def test_rejects_bad_failure_probability(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(slave_failure_probability=1.0)

    def test_rejects_bad_rejection_name(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(rejection="vote")


class TestSegmentedRejection:
    def test_segmented_strategy_produces_image(self, small_run):
        model, flux, stack = small_run
        cfg = ClusterConfig(n_slaves=4, tile=32, rejection="segmented")
        report = CRRejectionPipeline(model, cfg).run(stack)
        assert np.abs(report.image - flux).mean() < 1.0


class TestScheduling:
    def test_rejects_bad_scheduling(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(scheduling="lottery")

    def test_rejects_negative_spread(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(node_speed_spread=-0.1)

    def test_dynamic_equals_static_on_uniform_nodes(self, small_run):
        model, _, stack = small_run
        static = CRRejectionPipeline(
            model, ClusterConfig(n_slaves=4, tile=32, scheduling="static")
        ).run(stack)
        dynamic = CRRejectionPipeline(
            model, ClusterConfig(n_slaves=4, tile=32, scheduling="dynamic")
        ).run(stack)
        assert dynamic.makespan_s == pytest.approx(static.makespan_s, rel=0.05)

    def test_dynamic_beats_static_on_heterogeneous_nodes(self, rng):
        model = RampModel(n_readouts=8)
        stack = model.generate(rng.uniform(2, 20, size=(128, 128)), rng)
        static = CRRejectionPipeline(
            model,
            ClusterConfig(
                n_slaves=5, tile=32, scheduling="static", node_speed_spread=0.6
            ),
        ).run(stack)
        dynamic = CRRejectionPipeline(
            model,
            ClusterConfig(
                n_slaves=5, tile=32, scheduling="dynamic", node_speed_spread=0.6
            ),
        ).run(stack)
        assert dynamic.makespan_s < static.makespan_s

    def test_heterogeneous_speeds_deterministic(self, small_run):
        model, _, stack = small_run
        cfg = ClusterConfig(
            n_slaves=4, tile=32, node_speed_spread=0.4, failure_seed=7
        )
        a = CRRejectionPipeline(model, cfg).run(stack)
        b = CRRejectionPipeline(model, cfg).run(stack)
        assert a.makespan_s == b.makespan_s

    def test_dynamic_with_failures_still_completes(self, small_run):
        model, flux, stack = small_run
        cfg = ClusterConfig(
            n_slaves=4,
            tile=32,
            scheduling="dynamic",
            node_speed_spread=0.4,
            slave_failure_probability=0.3,
            retry_timeout_s=0.05,
            max_retries=10,
            failure_seed=2,
        )
        report = CRRejectionPipeline(model, cfg).run(stack)
        assert report.n_fragments == 4
        assert np.abs(report.image - flux).mean() < 1.0
