"""Tests for cosmic-ray injection and ramp-fit rejection."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.ngst.cosmic_rays import CosmicRayModel, reject_cosmic_rays
from repro.ngst.ramp import RampModel


class TestCosmicRayModel:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            CosmicRayModel(hit_probability=1.5)

    def test_rejects_bad_amplitudes(self):
        with pytest.raises(ConfigurationError):
            CosmicRayModel(min_amplitude=100, max_amplitude=50)

    def test_hit_rate(self, rng):
        model = RampModel(n_readouts=8, read_noise=0)
        stack = model.generate(np.full((100, 100), 5.0))
        _, hits = CosmicRayModel(hit_probability=0.1).inject(stack, rng)
        rate = np.count_nonzero(hits >= 0) / hits.size
        assert rate == pytest.approx(0.1, abs=0.02)

    def test_zero_probability_clean(self, rng):
        model = RampModel(n_readouts=8, read_noise=0)
        stack = model.generate(np.full((10, 10), 5.0))
        hit_stack, hits = CosmicRayModel(hit_probability=0.0).inject(stack, rng)
        assert np.array_equal(hit_stack, stack)
        assert np.all(hits == -1)

    def test_step_is_persistent(self, rng):
        model = RampModel(n_readouts=16, read_noise=0)
        stack = model.generate(np.full((50, 50), 5.0))
        hit_stack, hits = CosmicRayModel(
            hit_probability=1.0, min_amplitude=5000, max_amplitude=5000
        ).inject(stack, rng)
        # After the hit readout, counts jump by the amplitude and stay up.
        r, c = 3, 4
        k = hits[r, c]
        assert k >= 1
        delta = hit_stack[:, r, c].astype(int) - stack[:, r, c].astype(int)
        assert np.all(delta[:k] == 0)
        assert np.all(delta[k:] == 5000)

    def test_rejects_short_stack(self, rng):
        with pytest.raises(DataFormatError):
            CosmicRayModel().inject(np.zeros((2, 4), dtype=np.uint16), rng)


class TestRejection:
    def test_clean_ramp_flux_recovered(self, rng):
        model = RampModel(n_readouts=32, read_noise=5.0)
        flux = np.full((16, 16), 8.0)
        stack = model.generate(flux, rng)
        estimate, n_rejected = reject_cosmic_rays(stack, model)
        assert np.abs(estimate - 8.0).mean() < 0.3
        assert n_rejected.sum() == 0

    def test_cr_hits_rejected(self, rng):
        model = RampModel(n_readouts=32, read_noise=5.0)
        flux = np.full((32, 32), 8.0)
        stack = model.generate(flux, rng)
        hit_stack, hits = CosmicRayModel(hit_probability=0.2).inject(stack, rng)
        naive = model.fit_slope(hit_stack)
        estimate, n_rejected = reject_cosmic_rays(hit_stack, model)
        assert np.abs(estimate - flux).mean() < np.abs(naive - flux).mean() / 10
        # Rejections happen at (most) hit pixels.
        assert n_rejected[hits >= 0].sum() >= 0.8 * np.count_nonzero(hits >= 0)

    def test_rejects_bad_sigma(self, rng):
        model = RampModel(n_readouts=8)
        stack = model.generate(np.full((4, 4), 5.0), rng)
        with pytest.raises(ConfigurationError):
            reject_cosmic_rays(stack, model, clip_sigma=0)

    def test_rejects_short_stack(self):
        with pytest.raises(DataFormatError):
            reject_cosmic_rays(np.zeros((2, 4), dtype=np.uint16), RampModel())


class TestSegmentedRejection:
    def test_clean_ramp_flux_recovered(self, rng):
        from repro.ngst.cosmic_rays import reject_cosmic_rays_segmented

        model = RampModel(n_readouts=32, read_noise=5.0)
        flux = np.full((16, 16), 8.0)
        stack = model.generate(flux, rng)
        estimate, hits = reject_cosmic_rays_segmented(stack, model)
        assert np.abs(estimate - 8.0).mean() < 0.3
        assert np.all(hits == -1)

    def test_single_hit_located_and_removed(self, rng):
        from repro.ngst.cosmic_rays import reject_cosmic_rays_segmented

        model = RampModel(n_readouts=32, read_noise=5.0)
        flux = np.full((32, 32), 8.0)
        stack = model.generate(flux, rng)
        hit_stack, true_hits = CosmicRayModel(
            hit_probability=0.3, min_amplitude=3000, max_amplitude=8000
        ).inject(stack, rng)
        estimate, found = reject_cosmic_rays_segmented(hit_stack, model)
        assert np.abs(estimate - flux).mean() < 0.5
        hit_mask = true_hits >= 0
        # The detected jump readout matches the injected one.
        agreement = (found[hit_mask] == true_hits[hit_mask]).mean()
        assert agreement > 0.9

    def test_comparable_to_clip_variant(self, rng):
        from repro.ngst.cosmic_rays import reject_cosmic_rays_segmented

        model = RampModel(n_readouts=32, read_noise=5.0)
        flux = np.full((32, 32), 8.0)
        stack = model.generate(flux, rng)
        hit_stack, _ = CosmicRayModel(hit_probability=0.1).inject(stack, rng)
        seg, _ = reject_cosmic_rays_segmented(hit_stack, model)
        clip, _ = reject_cosmic_rays(hit_stack, model)
        seg_err = np.abs(seg - flux).mean()
        clip_err = np.abs(clip - flux).mean()
        assert seg_err < 3 * clip_err + 0.1
        assert clip_err < 3 * seg_err + 0.1

    def test_rejects_short_stack(self):
        from repro.ngst.cosmic_rays import reject_cosmic_rays_segmented

        with pytest.raises(DataFormatError):
            reject_cosmic_rays_segmented(
                np.zeros((3, 4), dtype=np.uint16), RampModel()
            )

    def test_rejects_bad_sigma(self, rng):
        from repro.ngst.cosmic_rays import reject_cosmic_rays_segmented

        model = RampModel(n_readouts=8)
        stack = model.generate(np.full((4, 4), 5.0), rng)
        with pytest.raises(ConfigurationError):
            reject_cosmic_rays_segmented(stack, model, jump_sigma=0)
