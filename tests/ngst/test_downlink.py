"""Tests for the ARQ downlink."""

import numpy as np
import pytest

from repro.exceptions import CodecError, ConfigurationError
from repro.faults.transit import GilbertElliottConfig
from repro.ngst.downlink import ARQDownlink, DownlinkConfig, crc16
from repro.ngst.rice import rice_decode, rice_encode


class TestCRC16:
    def test_check_value(self):
        # The CRC-16/CCITT-FALSE reference check value.
        assert crc16(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16(b"") == 0xFFFF

    def test_detects_single_bit_flip(self):
        data = bytes(range(64))
        reference = crc16(data)
        for i in (0, 13, 63):
            damaged = bytearray(data)
            damaged[i] ^= 0x04
            assert crc16(bytes(damaged)) != reference

    def test_detects_burst_within_16_bits(self):
        # CRC-16 detects all burst errors up to its width.
        data = bytes(range(32))
        reference = crc16(data)
        damaged = bytearray(data)
        damaged[10] ^= 0xFF
        damaged[11] ^= 0xFF
        assert crc16(bytes(damaged)) != reference


class TestConfig:
    def test_rejects_bad_payload(self):
        with pytest.raises(ConfigurationError):
            DownlinkConfig(payload_bytes=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            DownlinkConfig(max_retransmits=-1)


class TestCleanChannel:
    def quiet(self):
        return DownlinkConfig(
            payload_bytes=256,
            channel=GilbertElliottConfig(p_good_to_bad=0.0, flip_prob_good=0.0),
        )

    def test_delivery_bit_exact(self):
        blob = bytes(range(256)) * 5
        report = ARQDownlink(self.quiet()).transmit(blob)
        assert report.delivered == blob
        assert report.intact

    def test_no_retransmissions(self):
        blob = b"x" * 1000
        report = ARQDownlink(self.quiet()).transmit(blob)
        assert report.n_transmissions == report.n_packets
        assert report.n_crc_rejections == 0

    def test_packet_count(self):
        report = ARQDownlink(self.quiet()).transmit(b"y" * 600)
        assert report.n_packets == 3  # 256 + 256 + 88

    def test_empty_blob(self):
        report = ARQDownlink(self.quiet()).transmit(b"")
        assert report.delivered == b""
        assert report.n_packets == 1

    def test_efficiency_below_one_due_to_crc(self):
        report = ARQDownlink(self.quiet()).transmit(b"z" * 1024)
        assert 0.9 < report.efficiency < 1.0


class TestNoisyChannel:
    def noisy(self, rate=2e-5):
        return DownlinkConfig(
            payload_bytes=512,
            max_retransmits=50,
            channel=GilbertElliottConfig(
                p_good_to_bad=rate, p_bad_to_good=0.02, flip_prob_bad=0.3
            ),
        )

    def test_arq_delivers_despite_bursts(self):
        blob = bytes(np.random.default_rng(0).integers(0, 256, 20000, dtype=np.uint8))
        report = ARQDownlink(self.noisy(), seed=1).transmit(blob)
        assert report.delivered == blob
        assert report.n_crc_rejections > 0
        assert report.n_transmissions > report.n_packets

    def test_noisier_channel_costs_more_bandwidth(self):
        blob = b"q" * 30000
        calm = ARQDownlink(self.noisy(5e-6), seed=2).transmit(blob)
        rough = ARQDownlink(self.noisy(1e-4), seed=2).transmit(blob)
        assert rough.n_transmissions > calm.n_transmissions
        assert rough.efficiency < calm.efficiency

    def test_hopeless_channel_raises(self):
        config = DownlinkConfig(
            payload_bytes=4096,
            max_retransmits=2,
            channel=GilbertElliottConfig(
                p_good_to_bad=0.05, p_bad_to_good=0.05, flip_prob_bad=0.5
            ),
        )
        with pytest.raises(CodecError, match="retransmits"):
            ARQDownlink(config, seed=3).transmit(b"w" * 20000)


class TestEndToEndWithRice:
    def test_compressed_frame_survives_downlink(self, rng):
        frame = (27000 + np.cumsum(rng.normal(0, 10, 4096))).astype(np.uint16)
        compressed = rice_encode(frame)
        config = DownlinkConfig(
            payload_bytes=512,
            max_retransmits=50,
            channel=GilbertElliottConfig(
                p_good_to_bad=1e-5, p_bad_to_good=0.02, flip_prob_bad=0.3
            ),
        )
        report = ARQDownlink(config, seed=4).transmit(compressed)
        assert np.array_equal(rice_decode(report.delivered), frame)
