"""Tests for frame fragmentation and reassembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DataFormatError
from repro.ngst.fragment import Fragment, fragment_stack, reassemble


class TestFragmentStack:
    def test_count(self):
        stack = np.zeros((4, 256, 256), dtype=np.uint16)
        fragments = fragment_stack(stack, tile=128)
        assert len(fragments) == 4

    def test_fragment_shapes_carry_temporal_axis(self):
        stack = np.zeros((4, 256, 256), dtype=np.uint16)
        fragments = fragment_stack(stack, tile=128)
        assert all(f.data.shape == (4, 128, 128) for f in fragments)

    def test_2d_frame_supported(self):
        frame = np.zeros((256, 256), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=64)
        assert len(fragments) == 16
        assert fragments[0].data.shape == (64, 64)

    def test_positions_cover_grid(self):
        stack = np.zeros((2, 384, 256), dtype=np.uint16)
        fragments = fragment_stack(stack, tile=128)
        positions = {(f.row, f.col) for f in fragments}
        assert positions == {(r, c) for r in range(3) for c in range(2)}

    def test_content_preserved(self):
        frame = np.arange(64, dtype=np.uint16).reshape(8, 8)
        fragments = fragment_stack(frame, tile=4)
        top_left = next(f for f in fragments if (f.row, f.col) == (0, 0))
        assert np.array_equal(top_left.data, frame[:4, :4])

    def test_fragments_are_copies(self):
        frame = np.zeros((8, 8), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=4)
        fragments[0].data[0, 0] = 9
        assert frame[0, 0] == 0

    def test_rejects_indivisible(self):
        with pytest.raises(DataFormatError):
            fragment_stack(np.zeros((100, 100), dtype=np.uint16), tile=64)

    def test_rejects_bad_tile(self):
        with pytest.raises(ConfigurationError):
            fragment_stack(np.zeros((8, 8), dtype=np.uint16), tile=0)

    def test_rejects_1d(self):
        with pytest.raises(DataFormatError):
            fragment_stack(np.zeros(64, dtype=np.uint16), tile=8)


class TestReassemble:
    def test_roundtrip_stack(self, rng):
        stack = rng.integers(0, 2**16, size=(3, 128, 256), dtype=np.uint16)
        fragments = fragment_stack(stack, tile=64)
        assert np.array_equal(reassemble(fragments, tile=64), stack)

    def test_roundtrip_frame(self, rng):
        frame = rng.integers(0, 2**16, size=(256, 256), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=128)
        assert np.array_equal(reassemble(fragments, tile=128), frame)

    def test_order_independent(self, rng):
        frame = rng.integers(0, 2**16, size=(128, 128), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=64)
        assert np.array_equal(reassemble(fragments[::-1], tile=64), frame)

    def test_missing_fragment_rejected(self):
        frame = np.zeros((128, 128), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=64)
        with pytest.raises(DataFormatError, match="missing"):
            reassemble(fragments[:-1], tile=64)

    def test_duplicate_rejected(self):
        frame = np.zeros((128, 128), dtype=np.uint16)
        fragments = fragment_stack(frame, tile=64)
        with pytest.raises(DataFormatError, match="duplicate"):
            reassemble(fragments + [fragments[0]], tile=64)

    def test_empty_rejected(self):
        with pytest.raises(DataFormatError):
            reassemble([], tile=64)

    def test_wrong_tile_rejected(self):
        fragments = [Fragment(0, 0, np.zeros((32, 32), dtype=np.uint16))]
        with pytest.raises(DataFormatError):
            reassemble(fragments, tile=64)

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from([8, 16, 32]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_roundtrip_property(self, tile, rows, cols):
        rng = np.random.default_rng(0)
        frame = rng.integers(
            0, 2**16, size=(rows * tile, cols * tile), dtype=np.uint16
        )
        assert np.array_equal(
            reassemble(fragment_stack(frame, tile=tile), tile=tile), frame
        )
