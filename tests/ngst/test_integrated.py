"""Tests for the §9 integrated-preprocessing architecture."""

import numpy as np
import pytest

from repro.config import NGSTConfig
from repro.exceptions import HeaderSanityError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.overhead import time_callable
from repro.ngst.integrated import integrated_run, layered_run, make_transport
from repro.ngst.ramp import RampModel


@pytest.fixture(scope="module")
def transport_world():
    rng = np.random.default_rng(31)
    ramp = RampModel(n_readouts=16, read_noise=8.0)
    flux = rng.uniform(0.5, 4.0, size=(48, 48))
    stack = ramp.generate(flux, rng)
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=2).inject(stack)
    return ramp, flux, make_transport(corrupted)


class TestEquivalence:
    def test_same_science_output(self, transport_world):
        ramp, flux, blob = transport_world
        config = NGSTConfig(sensitivity=80)
        layered = layered_run(blob, ramp, config)
        integrated = integrated_run(blob, ramp, config)
        assert np.allclose(layered, integrated.flux)

    def test_corrections_reported(self, transport_world):
        ramp, _, blob = transport_world
        result = integrated_run(blob, ramp, NGSTConfig(sensitivity=80))
        assert result.n_pixels_corrected > 0

    def test_zero_sensitivity_header_only(self, transport_world):
        ramp, _, blob = transport_world
        result = integrated_run(blob, ramp, NGSTConfig(sensitivity=0))
        assert result.n_pixels_corrected == 0
        assert result.flux.shape == (48, 48)

    def test_header_repair_inside_application(self, transport_world):
        ramp, _, blob = transport_world
        damaged = bytearray(blob)
        damaged[80] |= 0x80  # keyword byte of card 2
        result = integrated_run(bytes(damaged), ramp, NGSTConfig(sensitivity=80))
        assert result.n_header_repairs >= 1

    def test_unrecoverable_header_raises(self, transport_world):
        ramp, _, blob = transport_world
        destroyed = blob[:2880].replace(b"END", b"XXX") + blob[2880:]
        with pytest.raises(HeaderSanityError):
            integrated_run(destroyed, ramp, NGSTConfig(sensitivity=80))


class TestOverheadClaim:
    def test_integrated_no_slower_at_full_sensitivity(self, transport_world):
        """At Λ > 0 the algorithm dominates; integration must not cost."""
        ramp, _, blob = transport_world
        config = NGSTConfig(sensitivity=80)
        layered_t = time_callable(lambda: layered_run(blob, ramp, config), repeats=3)
        integrated_t = time_callable(
            lambda: integrated_run(blob, ramp, config), repeats=3
        )
        assert integrated_t.best_seconds < layered_t.best_seconds * 1.10

    def test_integrated_faster_at_header_only(self, transport_world):
        """§9: integration lowers the overhead — at Λ = 0 the separate
        layer's FITS re-encode/decode round-trip is the dominant cost,
        and the integrated path skips it entirely."""
        ramp, _, blob = transport_world
        config = NGSTConfig(sensitivity=0)
        layered_t = time_callable(lambda: layered_run(blob, ramp, config), repeats=9)
        integrated_t = time_callable(
            lambda: integrated_run(blob, ramp, config), repeats=9
        )
        # Best-of-9 with a small tolerance: the structural saving (~14%
        # at this size) must show through scheduler noise.
        assert integrated_t.best_seconds < layered_t.best_seconds * 1.02
