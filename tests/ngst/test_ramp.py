"""Tests for the non-destructive-readout ramp model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.ngst.ramp import RampModel


class TestConstruction:
    def test_defaults(self):
        model = RampModel()
        assert model.n_readouts == 64
        assert model.baseline_s == 1000.0

    def test_rejects_too_few_readouts(self):
        with pytest.raises(ConfigurationError):
            RampModel(n_readouts=2)

    def test_rejects_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            RampModel(baseline_s=0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigurationError):
            RampModel(read_noise=-1)


class TestReadoutTimes:
    def test_equally_spaced(self):
        model = RampModel(n_readouts=4, baseline_s=100.0)
        assert model.readout_times().tolist() == [25.0, 50.0, 75.0, 100.0]

    def test_count(self):
        assert len(RampModel(n_readouts=64).readout_times()) == 64


class TestGenerate:
    def test_shape_and_dtype(self, rng):
        model = RampModel(n_readouts=8)
        stack = model.generate(np.full((4, 4), 10.0), rng)
        assert stack.shape == (8, 4, 4)
        assert stack.dtype == np.uint16

    def test_noiseless_ramp_is_linear(self):
        model = RampModel(n_readouts=8, baseline_s=800.0, bias=100.0, read_noise=0)
        stack = model.generate(np.array([2.0]))
        expected = 100.0 + 2.0 * np.arange(100, 900, 100)
        assert np.array_equal(stack[:, 0], expected.astype(np.uint16))

    def test_rejects_negative_flux(self, rng):
        with pytest.raises(DataFormatError):
            RampModel().generate(np.array([-1.0]), rng)

    def test_saturation_clipped(self):
        model = RampModel(n_readouts=8, read_noise=0)
        stack = model.generate(np.array([1e6]))
        assert stack.max() == np.iinfo(np.uint16).max


class TestFitSlope:
    def test_recovers_flux_noiseless(self):
        model = RampModel(n_readouts=16, read_noise=0)
        flux = np.array([0.5, 3.0, 20.0])
        stack = model.generate(flux)
        estimate = model.fit_slope(stack)
        assert np.allclose(estimate, flux, atol=0.01)

    def test_recovers_flux_with_noise(self, rng):
        model = RampModel(n_readouts=64, read_noise=10.0)
        flux = np.full((8, 8), 5.0)
        stack = model.generate(flux, rng)
        estimate = model.fit_slope(stack)
        assert np.abs(estimate - 5.0).mean() < 0.2

    def test_rejects_wrong_readout_count(self):
        model = RampModel(n_readouts=16)
        with pytest.raises(DataFormatError):
            model.fit_slope(np.zeros((8, 2), dtype=np.uint16))
