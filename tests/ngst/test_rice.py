"""Tests for the Rice entropy codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis.extra import numpy as hnp

from repro.exceptions import CodecError, DataFormatError
from repro.ngst.rice import compression_ratio, rice_decode, rice_encode


class TestRoundtrip:
    def test_constant_array(self):
        data = np.full(1000, 1234, dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_ramp(self):
        data = np.arange(5000, dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_random_uint16(self, rng):
        data = rng.integers(0, 2**16, size=777, dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_random_uint8(self, rng):
        data = rng.integers(0, 2**8, size=100, dtype=np.uint8)
        out = rice_decode(rice_encode(data))
        assert out.dtype == np.uint8
        assert np.array_equal(out, data)

    def test_random_uint32(self, rng):
        data = rng.integers(0, 2**31, size=100, dtype=np.uint32)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_2d_shape_preserved(self, rng):
        data = rng.integers(0, 2**16, size=(17, 23), dtype=np.uint16)
        out = rice_decode(rice_encode(data))
        assert out.shape == (17, 23)
        assert np.array_equal(out, data)

    def test_3d_shape_preserved(self, rng):
        data = rng.integers(0, 100, size=(3, 5, 7), dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_single_element(self):
        data = np.array([65535], dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    def test_extremes(self):
        data = np.array([0, 65535, 0, 65535, 32768], dtype=np.uint16)
        assert np.array_equal(rice_decode(rice_encode(data)), data)

    @settings(max_examples=40, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.uint16,
            shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=40),
        )
    )
    def test_roundtrip_property(self, data):
        if data.size == 0:
            return
        assert np.array_equal(rice_decode(rice_encode(data)), data)


class TestCompression:
    def test_smooth_data_compresses(self, rng):
        data = (10000 + np.cumsum(rng.normal(0, 3, size=20000))).astype(np.uint16)
        assert compression_ratio(data) > 2.0

    def test_random_data_does_not_explode(self, rng):
        data = rng.integers(0, 2**16, size=5000, dtype=np.uint16)
        # Incompressible input must stay close to raw size.
        assert compression_ratio(data) > 0.7

    def test_constant_data_compresses_strongly(self):
        data = np.full(10000, 777, dtype=np.uint16)
        assert compression_ratio(data) > 10.0


class TestErrorHandling:
    def test_rejects_empty(self):
        with pytest.raises(DataFormatError):
            rice_encode(np.array([], dtype=np.uint16))

    def test_rejects_signed(self):
        with pytest.raises(DataFormatError):
            rice_encode(np.zeros(4, dtype=np.int16))

    def test_bad_magic(self):
        with pytest.raises(CodecError, match="magic"):
            rice_decode(b"NOPE" + b"\x00" * 32)

    def test_truncated_stream(self):
        blob = rice_encode(np.arange(1000, dtype=np.uint16))
        with pytest.raises(CodecError):
            rice_decode(blob[: len(blob) // 2])

    def test_truncated_header(self):
        blob = rice_encode(np.arange(10, dtype=np.uint16))
        with pytest.raises(CodecError):
            rice_decode(blob[:5])
