"""Tests for the ALFT executor and logic grid."""

import numpy as np
import pytest

from repro.exceptions import ALFTError
from repro.otis.alft import ALFTExecutor, LogicGrid, OutputSource


def ok_task(data):
    return data * 2


def bad_task(data):
    return data * 0 - 1  # always fails the filter below


def crash_task(data):
    raise RuntimeError("node down")


def accept_positive(output):
    return bool(np.all(output >= 0))


INPUT = np.arange(4.0)


class TestLogicGrid:
    def test_prefers_primary(self):
        grid = LogicGrid()
        assert grid.decide(True, True, True) is OutputSource.PRIMARY

    def test_falls_back_to_secondary(self):
        grid = LogicGrid()
        assert grid.decide(False, True, True) is OutputSource.SECONDARY

    def test_both_failed_is_none(self):
        grid = LogicGrid()
        assert grid.decide(False, False, True) is None

    def test_secondary_not_run_is_none(self):
        grid = LogicGrid()
        assert grid.decide(False, False, False) is None

    def test_degrade_mode(self):
        grid = LogicGrid(degrade_to_primary=True)
        assert grid.decide(False, False, True) is OutputSource.PRIMARY


class TestALFTExecutor:
    def test_primary_accepted(self):
        executor = ALFTExecutor(ok_task, ok_task, accept_positive)
        outcome = executor.run(INPUT)
        assert outcome.source is OutputSource.PRIMARY
        assert not outcome.secondary_ran  # no need for the backup
        assert np.array_equal(outcome.output, INPUT * 2)

    def test_primary_crash_recovered_by_secondary(self):
        executor = ALFTExecutor(crash_task, ok_task, accept_positive)
        outcome = executor.run(INPUT)
        assert outcome.primary_crashed
        assert outcome.source is OutputSource.SECONDARY

    def test_primary_spurious_recovered_by_secondary(self):
        executor = ALFTExecutor(bad_task, ok_task, accept_positive)
        outcome = executor.run(INPUT)
        assert not outcome.primary_accepted
        assert outcome.source is OutputSource.SECONDARY

    def test_both_spurious_is_catastrophe(self):
        executor = ALFTExecutor(bad_task, bad_task, accept_positive)
        with pytest.raises(ALFTError, match="spurious"):
            executor.run(INPUT)

    def test_crash_without_secondary_is_catastrophe(self):
        executor = ALFTExecutor(crash_task, None, accept_positive)
        with pytest.raises(ALFTError, match="crashed"):
            executor.run(INPUT)

    def test_secondary_crash_tolerated_if_primary_ok(self):
        executor = ALFTExecutor(
            ok_task, crash_task, accept_positive, run_secondary_always=True
        )
        outcome = executor.run(INPUT)
        assert outcome.source is OutputSource.PRIMARY
        assert outcome.secondary_ran and not outcome.secondary_accepted

    def test_run_secondary_always(self):
        executor = ALFTExecutor(
            ok_task, ok_task, accept_positive, run_secondary_always=True
        )
        outcome = executor.run(INPUT)
        assert outcome.secondary_ran
        assert outcome.source is OutputSource.PRIMARY

    def test_degrade_grid_ships_spurious_primary(self):
        executor = ALFTExecutor(
            bad_task, bad_task, accept_positive, logic_grid=LogicGrid(True)
        )
        outcome = executor.run(INPUT)
        assert outcome.source is OutputSource.PRIMARY
