"""Tests for the OTIS bound presets."""

from repro.otis.bounds import (
    arctic_bounds,
    default_bounds,
    kelvin_bounds,
    tropical_bounds,
)


class TestPresets:
    def test_default_matches_field_scale(self):
        bounds = default_bounds()
        assert bounds.effective() == (0.0, 200.0)

    def test_tropical_raises_floor(self):
        lo, hi = tropical_bounds().effective()
        assert lo > 0.0
        assert hi == 200.0

    def test_arctic_lowers_ceiling(self):
        lo, hi = arctic_bounds().effective()
        assert lo == 0.0
        assert hi < 200.0

    def test_kelvin_terrestrial(self):
        lo, hi = kelvin_bounds().effective()
        assert lo == 150.0
        assert hi == 400.0

    def test_geographic_tighter_than_global(self):
        g_lo, g_hi = default_bounds().effective()
        for preset in (tropical_bounds(), arctic_bounds()):
            lo, hi = preset.effective()
            assert lo >= g_lo
            assert hi <= g_hi
