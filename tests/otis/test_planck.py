"""Tests for the Planck radiance model and its inversion."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.otis.planck import brightness_temperature, planck_radiance


class TestPlanckRadiance:
    def test_known_value_lwir(self):
        # 300 K at 10 um is ~9.9 W/m^2/sr/um (standard reference value).
        assert planck_radiance(10.0, 300.0) == pytest.approx(9.92, rel=0.01)

    def test_increases_with_temperature(self):
        assert planck_radiance(10.0, 310.0) > planck_radiance(10.0, 290.0)

    def test_zero_temperature_zero_radiance(self):
        assert planck_radiance(10.0, 0.0) == 0.0

    def test_negative_temperature_zero_radiance(self):
        assert planck_radiance(10.0, -50.0) == 0.0

    def test_array_input(self):
        temps = np.array([250.0, 300.0, 350.0])
        out = planck_radiance(11.0, temps)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ConfigurationError):
            planck_radiance(0.0, 300.0)

    def test_wien_behaviour(self):
        # At 300 K the 10 um radiance exceeds the 4 um radiance (LWIR
        # side of the Wien peak for terrestrial temperatures).
        assert planck_radiance(10.0, 300.0) > planck_radiance(4.0, 300.0)


class TestBrightnessTemperature:
    def test_zero_radiance_zero_kelvin(self):
        assert brightness_temperature(10.0, 0.0) == 0.0

    def test_negative_radiance_zero_kelvin(self):
        assert brightness_temperature(10.0, -3.0) == 0.0

    def test_array_input(self):
        out = brightness_temperature(10.0, np.array([1.0, 5.0, 10.0]))
        assert np.all(np.diff(out) > 0)

    @given(st.floats(min_value=150.0, max_value=500.0))
    def test_inversion_property(self, temperature):
        radiance = planck_radiance(10.5, temperature)
        recovered = brightness_temperature(10.5, radiance)
        assert recovered == pytest.approx(temperature, rel=1e-9)

    @given(
        st.floats(min_value=3.0, max_value=14.0),
        st.floats(min_value=180.0, max_value=400.0),
    )
    def test_inversion_across_bands(self, wavelength, temperature):
        radiance = planck_radiance(wavelength, temperature)
        recovered = brightness_temperature(wavelength, radiance)
        assert recovered == pytest.approx(temperature, rel=1e-9)
