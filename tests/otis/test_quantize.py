"""Tests for the DN fixed-point storage encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DataFormatError
from repro.otis.quantize import (
    DN_MAX,
    decode_dn,
    encode_dn,
    quantization_error_bound,
)


class TestEncodeDecode:
    def test_roundtrip_error_bounded(self, rng):
        values = rng.uniform(0, 260, size=(32, 32))
        recovered = decode_dn(encode_dn(values))
        # Allow the float32 representation error on top of the DN bound.
        assert np.abs(recovered - values).max() <= quantization_error_bound() + 1e-4

    def test_zero_maps_to_zero(self):
        assert encode_dn(np.array([0.0]))[0] == 0
        assert decode_dn(np.array([0], dtype=np.uint16))[0] == 0.0

    def test_clipping_at_full_scale(self):
        assert encode_dn(np.array([1e9]))[0] == DN_MAX

    def test_negative_clipped_to_zero(self):
        assert encode_dn(np.array([-5.0]))[0] == 0

    def test_custom_scale(self):
        dn = encode_dn(np.array([10.0]), scale=0.1)
        assert dn[0] == 100
        assert decode_dn(dn, scale=0.1)[0] == pytest.approx(10.0)

    def test_rejects_nan(self):
        with pytest.raises(DataFormatError):
            encode_dn(np.array([np.nan]))

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            encode_dn(np.array([1.0]), scale=0)
        with pytest.raises(ConfigurationError):
            decode_dn(np.zeros(1, dtype=np.uint16), scale=-1)

    def test_decode_rejects_wrong_dtype(self):
        with pytest.raises(DataFormatError):
            decode_dn(np.zeros(4, dtype=np.uint32))

    def test_decode_dtype_is_float32(self):
        assert decode_dn(np.zeros(4, dtype=np.uint16)).dtype == np.float32

    @given(st.floats(min_value=0.0, max_value=262.0))
    def test_roundtrip_property(self, value):
        recovered = float(decode_dn(encode_dn(np.array([value])))[0])
        assert abs(recovered - value) <= 0.004 / 2 + 1e-5
