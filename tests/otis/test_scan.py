"""Tests for overlapping-swath scanning and cross-frame preprocessing."""

import numpy as np
import pytest

from repro.data.otis import blob
from repro.exceptions import ConfigurationError, DataFormatError
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.otis.quantize import decode_dn, encode_dn
from repro.otis.scan import (
    Frame,
    ScanConfig,
    cross_frame_preprocess,
    mosaic,
    scan_scene,
)


@pytest.fixture
def scene(rng):
    return encode_dn(blob(64, 48, rng))


class TestScanConfig:
    def test_revisits(self):
        assert ScanConfig(frame_rows=32, step_rows=8).revisits == 4

    def test_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            ScanConfig(frame_rows=16, step_rows=17)

    def test_rejects_empty_frame(self):
        with pytest.raises(ConfigurationError):
            ScanConfig(frame_rows=0)


class TestScanScene:
    def test_frame_count_and_origins(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=8)
        frames = scan_scene(scene, config)
        assert [f.origin_row for f in frames] == [0, 8, 16, 24, 32, 40, 48]
        assert all(f.dn.shape == (16, 48) for f in frames)

    def test_noiseless_frames_match_scene(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=8)
        frames = scan_scene(scene, config)
        for frame in frames:
            window = scene[frame.origin_row : frame.origin_row + 16, :48]
            assert np.array_equal(frame.dn, window)

    def test_rejects_small_scene(self):
        with pytest.raises(DataFormatError):
            scan_scene(
                np.zeros((8, 8), dtype=np.uint16),
                ScanConfig(frame_rows=16, frame_cols=48),
            )

    def test_rejects_float_scene(self):
        with pytest.raises(DataFormatError):
            scan_scene(np.zeros((64, 64)), ScanConfig())

    def test_read_noise_applied(self, scene, rng):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=8)
        noisy = scan_scene(scene, config, rng=rng, read_noise_dn=50.0)
        clean = scan_scene(scene, config)
        assert not np.array_equal(noisy[0].dn, clean[0].dn)


class TestCrossFramePreprocess:
    def _corrupted_frames(self, scene, gamma0=0.01, seed=6):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=4)
        frames = scan_scene(scene, config)
        injector = FaultInjector(UncorrelatedFaultModel(gamma0), seed=seed)
        damaged = [
            Frame(f.origin_row, injector.inject(f.dn)[0]) for f in frames
        ]
        return config, frames, damaged

    def test_repairs_improve_mosaic(self, scene):
        config, clean, damaged = self._corrupted_frames(scene)
        pristine = decode_dn(mosaic(clean, config))
        raw = psi(decode_dn(mosaic(damaged, config)), pristine)
        repaired = cross_frame_preprocess(damaged, config)
        fixed = psi(decode_dn(mosaic(repaired, config)), pristine)
        assert fixed < raw

    def test_repairs_improve_individual_frames(self, scene):
        config, clean, damaged = self._corrupted_frames(scene)
        repaired = cross_frame_preprocess(damaged, config)
        raw_err = np.mean(
            [
                psi(decode_dn(d.dn), decode_dn(c.dn))
                for c, d in zip(clean, damaged)
            ]
        )
        fixed_err = np.mean(
            [
                psi(decode_dn(r.dn), decode_dn(c.dn))
                for c, r in zip(clean, repaired)
            ]
        )
        assert fixed_err < raw_err / 2

    def test_clean_frames_mostly_untouched(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=4)
        frames = scan_scene(scene, config)
        repaired = cross_frame_preprocess(frames, config)
        changed = sum(
            int(np.count_nonzero(r.dn != f.dn))
            for f, r in zip(frames, repaired)
        )
        total = sum(f.dn.size for f in frames)
        assert changed / total < 0.02

    def test_rejects_insufficient_revisits(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=16)
        frames = scan_scene(scene, config)
        with pytest.raises(ConfigurationError, match="revisits"):
            cross_frame_preprocess(frames, config)

    def test_rejects_bad_margin(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=4)
        frames = scan_scene(scene, config)
        with pytest.raises(ConfigurationError, match="min_margin"):
            cross_frame_preprocess(frames, config, min_margin=0)

    def test_rejects_empty(self):
        with pytest.raises(DataFormatError):
            cross_frame_preprocess([], ScanConfig())


class TestMosaic:
    def test_roundtrip_noiseless(self, scene):
        config = ScanConfig(frame_rows=16, frame_cols=48, step_rows=8)
        frames = scan_scene(scene, config)
        out = mosaic(frames, config)
        assert np.array_equal(out, scene[: out.shape[0], :48])

    def test_rejects_empty(self):
        with pytest.raises(DataFormatError):
            mosaic([], ScanConfig())
