"""Tests for the OTIS sensing model."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.otis.planck import planck_radiance
from repro.otis.spectrometer import Band, Spectrometer, default_bands


class TestBand:
    def test_valid(self):
        band = Band("B1", 10.0)
        assert band.wavelength_um == 10.0

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ConfigurationError):
            Band("BAD", 0.0)


class TestDefaultBands:
    def test_count(self):
        assert len(default_bands(8)) == 8

    def test_span_thermal_window(self):
        bands = default_bands(5)
        assert bands[0].wavelength_um == pytest.approx(8.0)
        assert bands[-1].wavelength_um == pytest.approx(12.0)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            default_bands(0)


class TestSenseRadiance:
    def test_cube_shape(self):
        instrument = Spectrometer(default_bands(4))
        cube = instrument.sense_radiance(np.full((8, 8), 300.0))
        assert cube.shape == (4, 8, 8)

    def test_noiseless_matches_planck(self):
        bands = (Band("B", 10.0),)
        instrument = Spectrometer(bands, noise_sigma=0.0)
        cube = instrument.sense_radiance(np.full((4, 4), 300.0), emissivity=1.0)
        assert cube[0, 0, 0] == pytest.approx(planck_radiance(10.0, 300.0))

    def test_emissivity_scales(self):
        bands = (Band("B", 10.0),)
        instrument = Spectrometer(bands, noise_sigma=0.0)
        full = instrument.sense_radiance(np.full((4, 4), 300.0), emissivity=1.0)
        half = instrument.sense_radiance(np.full((4, 4), 300.0), emissivity=0.5)
        assert np.allclose(half, full * 0.5)

    def test_emissivity_map(self):
        instrument = Spectrometer(default_bands(2), noise_sigma=0.0)
        eps = np.full((4, 4), 0.9)
        cube = instrument.sense_radiance(np.full((4, 4), 300.0), emissivity=eps)
        assert cube.shape == (2, 4, 4)

    def test_rejects_bad_emissivity(self):
        instrument = Spectrometer(default_bands(2))
        with pytest.raises(DataFormatError):
            instrument.sense_radiance(np.full((4, 4), 300.0), emissivity=1.5)

    def test_rejects_emissivity_shape(self):
        instrument = Spectrometer(default_bands(2))
        with pytest.raises(DataFormatError):
            instrument.sense_radiance(
                np.full((4, 4), 300.0), emissivity=np.full((3, 3), 0.9)
            )

    def test_rejects_1d_scene(self):
        instrument = Spectrometer(default_bands(2))
        with pytest.raises(DataFormatError):
            instrument.sense_radiance(np.full(4, 300.0))

    def test_noise_applied(self, rng):
        instrument = Spectrometer(default_bands(1), noise_sigma=0.1)
        a = instrument.sense_radiance(np.full((8, 8), 300.0), rng=rng)
        b = instrument.sense_radiance(np.full((8, 8), 300.0))
        assert not np.allclose(a, b)
        assert np.all(a >= 0)


class TestSenseDN:
    def test_dtype(self):
        instrument = Spectrometer(default_bands(2))
        dn = instrument.sense_dn(np.full((4, 4), 300.0))
        assert dn.dtype == np.uint16

    def test_resolution_adequate(self):
        # DN quantisation error must stay below typical band contrasts.
        instrument = Spectrometer(default_bands(1), noise_sigma=0.0)
        scene = np.full((4, 4), 300.0)
        cube = instrument.sense_radiance(scene)
        dn = instrument.sense_dn(scene)
        recovered = dn.astype(np.float64) * instrument.dn_scale
        assert np.abs(recovered - cube).max() <= instrument.dn_scale

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            Spectrometer(default_bands(1), dn_scale=0)
