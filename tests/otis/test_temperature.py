"""Tests for the OTIS science products."""

import numpy as np
import pytest

from repro.exceptions import DataFormatError
from repro.otis.spectrometer import Spectrometer, default_bands
from repro.otis.temperature import emissivity_cube, temperature_map


@pytest.fixture
def sensed():
    bands = default_bands(4)
    instrument = Spectrometer(bands, noise_sigma=0.0)
    scene = np.full((8, 8), 295.0)
    scene[2, 2] = 320.0
    cube = instrument.sense_radiance(scene, emissivity=0.97)
    return bands, scene, cube


class TestTemperatureMap:
    def test_recovers_scene(self, sensed):
        bands, scene, cube = sensed
        temps = temperature_map(cube, bands, emissivity=0.97)
        assert np.abs(temps - scene).max() < 0.01

    def test_hotspot_visible(self, sensed):
        bands, scene, cube = sensed
        temps = temperature_map(cube, bands, emissivity=0.97)
        assert temps[2, 2] > temps[0, 0] + 20

    def test_wrong_emissivity_biases(self, sensed):
        bands, scene, cube = sensed
        biased = temperature_map(cube, bands, emissivity=1.0)
        assert np.all(biased < scene)

    def test_rejects_2d(self, sensed):
        bands, _, cube = sensed
        with pytest.raises(DataFormatError):
            temperature_map(cube[0], bands)

    def test_rejects_band_mismatch(self, sensed):
        bands, _, cube = sensed
        with pytest.raises(DataFormatError):
            temperature_map(cube[:2], bands)

    def test_rejects_bad_emissivity(self, sensed):
        bands, _, cube = sensed
        with pytest.raises(DataFormatError):
            temperature_map(cube, bands, emissivity=0.0)

    def test_median_tolerates_single_band_damage(self, sensed):
        bands, scene, cube = sensed
        damaged = cube.copy()
        damaged[1] *= 100.0  # one band completely wrong
        temps = temperature_map(damaged, bands, emissivity=0.97)
        assert np.abs(temps - scene).max() < 5.0


class TestEmissivityCube:
    def test_recovers_emissivity(self, sensed):
        bands, scene, cube = sensed
        eps = emissivity_cube(cube, bands, scene)
        assert np.allclose(eps, 0.97, atol=0.005)

    def test_clipped_into_unit_interval(self, sensed):
        bands, scene, cube = sensed
        eps = emissivity_cube(cube * 10, bands, scene)
        assert eps.max() <= 1.0
        assert eps.min() > 0.0

    def test_rejects_shape_mismatch(self, sensed):
        bands, scene, cube = sensed
        with pytest.raises(DataFormatError):
            emissivity_cube(cube, bands, scene[:4, :4])

    def test_zero_temperature_handled(self, sensed):
        bands, scene, cube = sensed
        cold = np.zeros_like(scene)
        eps = emissivity_cube(cube, bands, cold)
        assert np.isfinite(eps).all()
