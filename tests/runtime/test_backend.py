"""Tests for the execution backends."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_start_method,
)
from repro.runtime.plan import TrialPlan


def _shard_fn(shard):
    return [float(np.random.default_rng(seed).normal()) for seed in shard.seeds]


#: Marks for tests that need a specific start method on this platform.
needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
needs_spawn = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable",
)


def _collect(backend, shard_fn, shards):
    results = {r.index: r for r in backend.run_shards(shard_fn, shards)}
    return [v for i in sorted(results) for v in results[i].values]


class TestSerialBackend:
    def test_runs_in_order(self):
        plan = TrialPlan(6, seed=1, shard_size=2)
        indices = [r.index for r in SerialBackend().run_shards(_shard_fn, plan.shards)]
        assert indices == [0, 1, 2]

    def test_values_match_direct_loop(self):
        plan = TrialPlan(5, seed=7, shard_size=2)
        values = _collect(SerialBackend(), _shard_fn, plan.shards)
        reference = [
            float(np.random.default_rng(s).normal())
            for s in np.random.SeedSequence(7).spawn(5)
        ]
        assert values == reference

    def test_elapsed_recorded(self):
        plan = TrialPlan(2, seed=0, shard_size=2)
        (result,) = SerialBackend().run_shards(_shard_fn, plan.shards)
        assert result.elapsed_s >= 0.0

    def test_empty_shard_list(self):
        assert list(SerialBackend().run_shards(_shard_fn, [])) == []


class TestProcessPoolBackend:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(0)

    def test_rejects_unknown_start_method(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(2, start_method="no-such-method")

    def test_matches_serial_bitwise(self):
        plan = TrialPlan(11, seed=42, shard_size=3)
        serial = _collect(SerialBackend(), _shard_fn, plan.shards)
        parallel = _collect(ProcessPoolBackend(4), _shard_fn, plan.shards)
        assert parallel == serial

    def test_closures_cross_the_fork_boundary(self):
        """Trial functions built from lambdas (unpicklable) must work:
        the pool inherits them via fork instead of pickling."""
        offset = 10.0
        shard_fn = lambda shard: [  # noqa: E731 - the point of the test
            offset + float(np.random.default_rng(seed).normal())
            for seed in shard.seeds
        ]
        plan = TrialPlan(4, seed=5, shard_size=1)
        values = _collect(ProcessPoolBackend(2), shard_fn, plan.shards)
        assert values == _collect(SerialBackend(), shard_fn, plan.shards)
        assert all(v > 5.0 for v in values)

    def test_single_worker_falls_back_to_serial(self):
        """jobs=1 must not pay pool start-up cost (no child processes)."""
        plan = TrialPlan(3, seed=1, shard_size=1)
        pids = set()
        shard_fn = lambda shard: [float(os.getpid())]  # noqa: E731
        for result in ProcessPoolBackend(1).run_shards(shard_fn, plan.shards):
            pids.update(result.values)
        assert pids == {float(os.getpid())}

    def test_worker_exception_propagates(self):
        def boom(shard):
            raise ValueError("worker failure")

        plan = TrialPlan(4, seed=1, shard_size=1)
        with pytest.raises(ValueError, match="worker failure"):
            list(ProcessPoolBackend(2).run_shards(boom, plan.shards))

    def test_describe(self):
        assert "ProcessPoolBackend" in ProcessPoolBackend(3).describe()
        assert "jobs=3" in ProcessPoolBackend(3).describe()

    def test_crosses_process_boundary_flags(self):
        assert ProcessPoolBackend(2).crosses_process_boundary is True
        assert SerialBackend().crosses_process_boundary is False

    def test_tuple_shard_return_carries_meta(self):
        shard_fn = lambda shard: ([1.0] * shard.n_trials, {"tag": 7})  # noqa: E731
        plan = TrialPlan(2, seed=0, shard_size=2)
        (result,) = SerialBackend().run_shards(shard_fn, plan.shards)
        assert result.values == [1.0, 1.0]
        assert result.meta == {"tag": 7}


class TestStartMethods:
    def test_default_start_method_is_available(self):
        assert default_start_method() in multiprocessing.get_all_start_methods()

    @needs_fork
    def test_fork_backend_explicit(self):
        plan = TrialPlan(5, seed=3, shard_size=2)
        backend = ProcessPoolBackend(2, start_method="fork")
        assert _collect(backend, _shard_fn, plan.shards) == _collect(
            SerialBackend(), _shard_fn, plan.shards
        )

    @needs_spawn
    def test_spawn_matches_serial_bitwise(self):
        """Module-level shard functions cross the spawn pickle boundary
        and still produce bit-identical values."""
        plan = TrialPlan(5, seed=3, shard_size=2)
        backend = ProcessPoolBackend(2, start_method="spawn")
        assert _collect(backend, _shard_fn, plan.shards) == _collect(
            SerialBackend(), _shard_fn, plan.shards
        )

    @needs_spawn
    def test_spawn_unpicklable_falls_back_to_serial_with_warning(self, monkeypatch):
        """An unpicklable closure must not deadlock a half-started pool:
        the pre-flight pickle check degrades to in-process serial
        execution and says why, once."""
        from repro.runtime import backend as backend_mod

        monkeypatch.setattr(backend_mod, "_SPAWN_FALLBACK_WARNED", False)
        offset = 1.0
        shard_fn = lambda shard: [offset] * shard.n_trials  # noqa: E731
        plan = TrialPlan(4, seed=1, shard_size=1)
        backend = ProcessPoolBackend(2, start_method="spawn")
        with pytest.warns(RuntimeWarning, match="not picklable"):
            values = _collect(backend, shard_fn, plan.shards)
        assert values == [1.0] * 4

    @needs_spawn
    def test_spawn_fallback_warns_only_once(self, monkeypatch):
        """The degradation reason is logged on the first fallback only;
        later calls stay quiet instead of spamming every shard run."""
        import warnings

        from repro.runtime import backend as backend_mod

        monkeypatch.setattr(backend_mod, "_SPAWN_FALLBACK_WARNED", False)
        offset = 3.0
        shard_fn = lambda shard: [offset] * shard.n_trials  # noqa: E731
        plan = TrialPlan(2, seed=1, shard_size=1)
        backend = ProcessPoolBackend(2, start_method="spawn")
        with pytest.warns(RuntimeWarning, match="falling back"):
            _collect(backend, shard_fn, plan.shards)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _collect(backend, shard_fn, plan.shards) == [3.0, 3.0]

    @needs_spawn
    def test_spawn_single_worker_still_serial(self):
        """The jobs=1 fallback sidesteps pickling entirely."""
        offset = 2.5
        shard_fn = lambda shard: [offset] * shard.n_trials  # noqa: E731
        plan = TrialPlan(2, seed=1, shard_size=2)
        backend = ProcessPoolBackend(1, start_method="spawn")
        assert _collect(backend, shard_fn, plan.shards) == [2.5, 2.5]


class TestThreadPoolBackend:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigurationError):
            ThreadPoolBackend(0)

    def test_matches_serial_bitwise(self):
        plan = TrialPlan(11, seed=42, shard_size=3)
        serial = _collect(SerialBackend(), _shard_fn, plan.shards)
        backend = ThreadPoolBackend(4)
        try:
            threaded = _collect(backend, _shard_fn, plan.shards)
        finally:
            backend.shutdown()
        assert threaded == serial

    def test_no_process_boundary(self):
        # Shared-state callers (the serve layer's sessions, the artifact
        # cache) rely on this flag: nothing is pickled or broadcast.
        assert ThreadPoolBackend(2).crosses_process_boundary is False

    def test_submit_runs_ad_hoc_jobs_on_named_threads(self):
        import threading

        backend = ThreadPoolBackend(2)
        try:
            future = backend.submit(
                lambda a, b: (a + b, threading.current_thread().name), 2, 3
            )
            value, thread_name = future.result(timeout=10)
        finally:
            backend.shutdown()
        assert value == 5
        assert thread_name.startswith("repro-worker")

    def test_shutdown_is_idempotent_and_pool_recreates(self):
        backend = ThreadPoolBackend(2)
        assert backend.submit(lambda: 1).result(timeout=10) == 1
        backend.shutdown()
        backend.shutdown()  # second call is a no-op
        # A later use lazily builds a fresh pool.
        assert backend.submit(lambda: 2).result(timeout=10) == 2
        backend.shutdown()

    def test_closures_need_no_pickling(self):
        captured = []
        backend = ThreadPoolBackend(2)
        try:
            backend.submit(lambda: captured.append("ran")).result(timeout=10)
        finally:
            backend.shutdown()
        assert captured == ["ran"]
