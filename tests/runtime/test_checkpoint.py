"""Tests for the JSONL checkpoint store."""

import json

from repro.runtime.checkpoint import CheckpointStore

FP = "n=10;seed=3;shard=3;v1"


class TestCheckpointStore:
    def test_missing_file_means_nothing_completed(self, tmp_path):
        store = CheckpointStore(tmp_path / "none.jsonl")
        assert store.completed("run-0000", FP) == {}

    def test_record_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("run-0000", FP, 0, [1.5, 2.5], elapsed_s=0.1)
        store.record("run-0000", FP, 2, [3.5])
        assert store.completed("run-0000", FP) == {0: [1.5, 2.5], 2: [3.5]}

    def test_values_roundtrip_bitwise(self, tmp_path):
        """json shortest-repr floats must come back exactly equal."""
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        values = [0.1 + 0.2, 1e-17, -3.141592653589793, 2**53 + 0.0]
        store.record("k", FP, 0, values)
        assert store.completed("k", FP)[0] == values

    def test_other_keys_and_fingerprints_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("run-0000", FP, 0, [1.0])
        store.record("run-0001", FP, 1, [2.0])
        store.record("run-0000", "n=99;seed=3;shard=3;v1", 2, [3.0])
        assert store.completed("run-0000", FP) == {0: [1.0]}

    def test_rerecorded_shard_keeps_latest(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("k", FP, 0, [1.0])
        store.record("k", FP, 0, [2.0])
        assert store.completed("k", FP) == {0: [2.0]}

    def test_partial_trailing_line_skipped(self, tmp_path):
        """A run killed mid-write leaves a truncated last line."""
        path = tmp_path / "ckpt.jsonl"
        store = CheckpointStore(path)
        store.record("k", FP, 0, [1.0])
        with path.open("a") as fh:
            fh.write('{"key": "k", "fingerprint": "' + FP + '", "shard": 1, "val')
        assert store.completed("k", FP) == {0: [1.0]}

    def test_garbage_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        store = CheckpointStore(path)
        with path.open("w") as fh:
            fh.write("not json at all\n\n[1, 2, 3]\n")
            fh.write(json.dumps({"key": "k", "fingerprint": FP, "shard": "bad"}))
            fh.write("\n")
        store.record("k", FP, 3, [4.0])
        assert store.completed("k", FP) == {3: [4.0]}

    def test_creates_parent_directories(self, tmp_path):
        store = CheckpointStore(tmp_path / "deep" / "nested" / "ckpt.jsonl")
        store.record("k", FP, 0, [1.0])
        assert store.completed("k", FP) == {0: [1.0]}

    def test_clear_removes_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("k", FP, 0, [1.0])
        store.clear()
        assert not store.path.exists()
        assert store.completed("k", FP) == {}
        store.clear()  # idempotent on a missing file
