"""Tests for TrialRuntime: equivalence, resume, telemetry."""

import numpy as np
import pytest

from repro.runtime import (
    CheckpointStore,
    ProcessPoolBackend,
    RunCompleted,
    RunStarted,
    SerialBackend,
    ShardCompleted,
    Telemetry,
    TrialRuntime,
)


def _trial(rng):
    return float(rng.normal())


def _multi_stat_trial(rng):
    draws = rng.normal(size=3)
    return [float(draws.min()), float(draws.max())]


class TestSerialEquivalence:
    def test_matches_plain_spawn_loop(self):
        values = TrialRuntime().run(_trial, 9, seed=13)
        reference = [
            float(np.random.default_rng(s).normal())
            for s in np.random.SeedSequence(13).spawn(9)
        ]
        assert values == reference

    def test_parallel_matches_serial_bitwise(self):
        serial = TrialRuntime(SerialBackend(), shard_size=2).run(_trial, 13, seed=7)
        parallel = TrialRuntime(ProcessPoolBackend(4), shard_size=2).run(
            _trial, 13, seed=7
        )
        assert parallel == serial

    def test_shard_size_does_not_change_values(self):
        runs = [
            TrialRuntime(shard_size=size).run(_trial, 10, seed=5)
            for size in (1, 3, 10, None)
        ]
        assert all(run == runs[0] for run in runs)

    def test_multi_stat_trials(self):
        values = TrialRuntime(shard_size=2).run(_multi_stat_trial, 5, seed=2)
        assert len(values) == 5
        assert all(isinstance(v, list) and len(v) == 2 for v in values)

    def test_closure_trials_run_in_pool(self):
        scale = 3.0
        trial = lambda rng: scale * float(rng.normal())  # noqa: E731
        serial = TrialRuntime(SerialBackend(), shard_size=1).run(trial, 6, seed=1)
        parallel = TrialRuntime(ProcessPoolBackend(2), shard_size=1).run(
            trial, 6, seed=1
        )
        assert parallel == serial


class TestResume:
    def test_interrupted_run_resumes_without_rerunning(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        calls = {"n": 0}

        def fragile(rng):
            calls["n"] += 1
            if calls["n"] > 4:
                raise RuntimeError("simulated crash")
            return float(rng.normal())

        with pytest.raises(RuntimeError, match="simulated crash"):
            TrialRuntime(checkpoint=store, shard_size=2).run(fragile, 10, seed=3)
        # Two full shards (4 trials) were checkpointed before the crash.
        assert len(store.completed("run-0000", "n=10;seed=3;shard=2;v1")) == 2

        calls["n"] = 0

        def healthy(rng):
            calls["n"] += 1
            return float(rng.normal())

        resumed = TrialRuntime(checkpoint=store, shard_size=2).run(
            healthy, 10, seed=3
        )
        assert calls["n"] == 6  # only the 3 unfinished shards re-ran
        clean = TrialRuntime(shard_size=2).run(_trial, 10, seed=3)
        assert resumed == clean

    def test_checkpoint_shared_between_serial_and_parallel(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        serial = TrialRuntime(
            SerialBackend(), checkpoint=store, shard_size=2
        ).run(_trial, 9, seed=4)
        resumed = TrialRuntime(
            ProcessPoolBackend(3), checkpoint=store, shard_size=2
        ).run(_trial, 9, seed=4)
        assert resumed == serial

    def test_changed_plan_invalidates_checkpoint(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        TrialRuntime(checkpoint=store, shard_size=2).run(_trial, 6, seed=1)
        calls = {"n": 0}

        def counting(rng):
            calls["n"] += 1
            return float(rng.normal())

        TrialRuntime(checkpoint=store, shard_size=2).run(counting, 6, seed=99)
        assert calls["n"] == 6  # different seed: nothing restored

    def test_out_of_range_shard_records_ignored(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("run-0000", "n=4;seed=0;shard=2;v1", 7, [1.0, 2.0])
        values = TrialRuntime(checkpoint=store, shard_size=2).run(_trial, 4, seed=0)
        assert values == TrialRuntime(shard_size=2).run(_trial, 4, seed=0)

    def test_wrong_length_checkpoint_fails_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        store.record("run-0000", "n=4;seed=0;shard=2;v1", 0, [1.0, 2.0, 3.0])
        with pytest.raises(RuntimeError, match="expected 2"):
            TrialRuntime(checkpoint=store, shard_size=2).run(_trial, 4, seed=0)


class TestKeysAndTelemetry:
    def test_auto_keys_are_sequential_per_runtime(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        runtime = TrialRuntime(checkpoint=store, shard_size=2)
        runtime.run(_trial, 4, seed=0)
        runtime.run(_trial, 4, seed=0)
        assert store.completed("run-0000", "n=4;seed=0;shard=2;v1")
        assert store.completed("run-0001", "n=4;seed=0;shard=2;v1")

    def test_explicit_key_used_verbatim(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        TrialRuntime(checkpoint=store, shard_size=2).run(
            _trial, 4, seed=0, key="fig5/point-1"
        )
        assert store.completed("fig5/point-1", "n=4;seed=0;shard=2;v1")

    def test_event_sequence(self):
        telemetry = Telemetry()
        events = []
        telemetry.subscribe(events.append)
        TrialRuntime(telemetry=telemetry, shard_size=2).run(_trial, 6, seed=1)

        assert isinstance(events[0], RunStarted)
        assert events[0].n_trials == 6
        assert events[0].n_shards == 3
        assert events[0].n_pending == 3

        shard_events = [e for e in events if isinstance(e, ShardCompleted)]
        assert sorted(e.shard_index for e in shard_events) == [0, 1, 2]
        assert not any(e.from_checkpoint for e in shard_events)

        assert isinstance(events[-1], RunCompleted)
        assert events[-1].n_trials == 6
        assert events[-1].n_shards_run == 3
        assert events[-1].n_shards_restored == 0

    def test_restored_shards_flagged_in_telemetry(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.jsonl")
        TrialRuntime(checkpoint=store, shard_size=2).run(_trial, 6, seed=1)

        telemetry = Telemetry()
        events = []
        telemetry.subscribe(events.append)
        TrialRuntime(checkpoint=store, telemetry=telemetry, shard_size=2).run(
            _trial, 6, seed=1
        )
        restored = [
            e for e in events if isinstance(e, ShardCompleted) and e.from_checkpoint
        ]
        assert len(restored) == 3
        assert events[-1].n_shards_run == 0
        assert events[-1].n_shards_restored == 3
