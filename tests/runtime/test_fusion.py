"""Tests for the plan-fusion pass (:mod:`repro.runtime.fusion`)."""

import numpy as np
import pytest

from repro.cache import ArtifactCache
from repro.config import NGSTDatasetConfig
from repro.exceptions import ConfigurationError
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.runtime import (
    Arm,
    ArmRequest,
    ArtifactPipeline,
    DatasetSpec,
    FaultSpec,
    FusedGroup,
    fuse,
)


def _dataset(n_variants=8, shape=(4, 4)):
    config = NGSTDatasetConfig(n_variants=n_variants)
    from repro.experiments.common import walk_dataset

    return walk_dataset(config, shape)


def _mean_arm(name="mean"):
    return Arm(name=name, evaluate=lambda corrupted, pristine: float(corrupted.mean()))


def _request(arm=None, gamma0=0.01, n_trials=4, seed=0, n_variants=8):
    pipeline = ArtifactPipeline(
        dataset=_dataset(n_variants=n_variants),
        fault=FaultSpec.of(UncorrelatedFaultModel(gamma0)),
    )
    return ArmRequest(
        arm=arm or _mean_arm(), pipeline=pipeline, n_trials=n_trials, seed=seed
    )


class TestFuse:
    def test_same_pipeline_requests_fuse_into_one_group(self):
        requests = [_request(arm=_mean_arm(f"arm-{i}")) for i in range(3)]
        groups = fuse(requests)
        assert len(groups) == 1
        assert groups[0].arm_names == ("arm-0", "arm-1", "arm-2")
        assert groups[0].n_trials == 4

    def test_different_fault_params_do_not_fuse(self):
        groups = fuse([_request(gamma0=0.01), _request(gamma0=0.02)])
        assert len(groups) == 2

    def test_different_dataset_config_does_not_fuse(self):
        groups = fuse([_request(n_variants=8), _request(n_variants=16)])
        assert len(groups) == 2

    def test_different_trial_count_or_seed_does_not_fuse(self):
        assert len(fuse([_request(n_trials=4), _request(n_trials=8)])) == 2
        assert len(fuse([_request(seed=0), _request(seed=1)])) == 2

    def test_groups_preserve_first_request_order(self):
        requests = [
            _request(arm=_mean_arm("a"), gamma0=0.01),
            _request(arm=_mean_arm("b"), gamma0=0.02),
            _request(arm=_mean_arm("c"), gamma0=0.01),
        ]
        groups = fuse(requests)
        assert [g.arm_names for g in groups] == [("a", "c"), ("b",)]

    def test_single_arm_group_is_legal(self):
        (group,) = fuse([_request()])
        assert group.arm_names == ("mean",)

    def test_rejects_bad_trial_count(self):
        with pytest.raises(ConfigurationError, match="n_trials"):
            fuse([_request(n_trials=0)])


class TestFusedGroup:
    def test_rejects_duplicate_arm_names(self):
        request = _request()
        with pytest.raises(ConfigurationError, match="duplicate arm names"):
            FusedGroup(
                pipeline=request.pipeline,
                arms=(_mean_arm("x"), _mean_arm("x")),
                n_trials=2,
                seed=0,
            )

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError, match="at least one arm"):
            FusedGroup(pipeline=_request().pipeline, arms=(), n_trials=2, seed=0)

    def test_plan_variant_depends_on_arm_names(self):
        """Checkpoints of different arm sets must never cross-resume."""
        pipeline = _request().pipeline
        one = FusedGroup(pipeline=pipeline, arms=(_mean_arm("a"),), n_trials=2, seed=0)
        two = FusedGroup(
            pipeline=pipeline, arms=(_mean_arm("a"), _mean_arm("b")), n_trials=2, seed=0
        )
        assert one.plan_variant != two.plan_variant
        assert one.plan_variant.startswith("fused:")


class TestFaultSpec:
    def test_of_derives_key_parts_from_model(self):
        spec = FaultSpec.of(CorrelatedFaultModel(0.05))
        assert spec.key_parts

    def test_of_rejects_models_without_key_parts(self):
        class Opaque:
            def corrupt(self, data, rng):
                return data

        with pytest.raises(ConfigurationError, match="cache_key_parts"):
            FaultSpec.of(Opaque())


class TestArtifactPipeline:
    def _pipeline(self, gamma0=0.05):
        return ArtifactPipeline(
            dataset=_dataset(),
            fault=FaultSpec.of(UncorrelatedFaultModel(gamma0)),
        )

    def test_produce_is_deterministic_without_cache(self):
        pipeline = self._pipeline()
        seed = np.random.SeedSequence(3)
        p1, c1 = pipeline.produce(seed)
        p2, c2 = pipeline.produce(np.random.SeedSequence(3))
        assert p1.tobytes() == p2.tobytes()
        assert c1.tobytes() == c2.tobytes()

    def test_outputs_are_read_only(self):
        pristine, corrupted = self._pipeline().produce(np.random.SeedSequence(3))
        for array in (pristine, corrupted):
            with pytest.raises(ValueError):
                np.asarray(array)[(0,) * array.ndim] = 0

    def test_cache_hit_is_bit_identical_to_miss(self):
        """The RNG-state restore: a pristine hit must leave the stream
        exactly where a miss would, so the realization matches too."""
        pipeline = self._pipeline()
        seed = np.random.SeedSequence(3)
        cold_p, cold_c = pipeline.produce(seed)

        cache = ArtifactCache()
        miss_p, miss_c = pipeline.produce(seed, cache)  # populates
        hit_p, hit_c = pipeline.produce(seed, cache)  # serves both entries
        assert cache.stats().hits >= 2
        for produced in (miss_p, hit_p):
            assert produced.tobytes() == cold_p.tobytes()
        for produced in (miss_c, hit_c):
            assert produced.tobytes() == cold_c.tobytes()

    def test_pristine_hit_realization_miss_is_bit_identical(self):
        """The asymmetric case: warm dataset, cold realization."""
        pipeline = self._pipeline()
        seed = np.random.SeedSequence(3)
        cold_p, cold_c = pipeline.produce(seed)

        cache = ArtifactCache()
        pipeline.produce(seed, cache)
        # Evict only the realization; the pristine entry stays warm.
        realization = pipeline.realization_key(seed)
        cache._memory.pop(realization)
        _, warm_c = pipeline.produce(seed, cache)
        assert warm_c.tobytes() == cold_c.tobytes()

    def test_fingerprints_separate_seeds_and_pipelines(self):
        pipeline = self._pipeline()
        other = self._pipeline(gamma0=0.1)
        a, b = np.random.SeedSequence(0), np.random.SeedSequence(1)
        assert pipeline.pristine_key(a) != pipeline.pristine_key(b)
        assert pipeline.realization_key(a) != other.realization_key(a)
        assert pipeline.base_fingerprint() != other.base_fingerprint()
        # The pristine key ignores fault params (shared across Γ grid)...
        assert pipeline.pristine_key(a) == other.pristine_key(a)

    def test_faultless_pipeline_returns_pristine_twice(self):
        pipeline = ArtifactPipeline(dataset=_dataset(), fault=None)
        pristine, corrupted = pipeline.produce(np.random.SeedSequence(0))
        assert corrupted is pristine
