"""Tests for the trial sharder."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.plan import TrialPlan, default_shard_size


class TestDefaultShardSize:
    def test_small_campaigns_get_single_trial_shards(self):
        for n in (1, 2, 8, 16):
            assert default_shard_size(n) == 1

    def test_large_campaigns_get_chunks(self):
        assert default_shard_size(100) == 7
        assert default_shard_size(1600) == 100

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            default_shard_size(0)


class TestTrialPlan:
    def test_shards_partition_the_trials(self):
        plan = TrialPlan(10, seed=3, shard_size=3)
        assert plan.n_shards == 4
        assert [s.n_trials for s in plan.shards] == [3, 3, 3, 1]
        assert [(s.start, s.stop) for s in plan.shards] == [
            (0, 3),
            (3, 6),
            (6, 9),
            (9, 10),
        ]
        assert [s.index for s in plan.shards] == [0, 1, 2, 3]

    def test_seeds_match_serial_spawn(self):
        """Plan seeds are exactly SeedSequence(seed).spawn(n) in order."""
        plan = TrialPlan(7, seed=11, shard_size=2)
        flat = [seed for shard in plan.shards for seed in shard.seeds]
        reference = np.random.SeedSequence(11).spawn(7)
        for planned, ref in zip(flat, reference):
            assert planned.entropy == ref.entropy
            assert planned.spawn_key == ref.spawn_key

    def test_seeds_independent_of_shard_size(self):
        """Sharding is pure bookkeeping: trial streams never change."""

        def draws(shard_size):
            plan = TrialPlan(9, seed=4, shard_size=shard_size)
            return [
                float(np.random.default_rng(seed).normal())
                for shard in plan.shards
                for seed in shard.seeds
            ]

        assert draws(1) == draws(3) == draws(9)

    def test_fingerprint_distinguishes_plans(self):
        base = TrialPlan(10, seed=3, shard_size=3)
        assert base.fingerprint == TrialPlan(10, seed=3, shard_size=3).fingerprint
        assert base.fingerprint != TrialPlan(11, seed=3, shard_size=3).fingerprint
        assert base.fingerprint != TrialPlan(10, seed=4, shard_size=3).fingerprint
        assert base.fingerprint != TrialPlan(10, seed=3, shard_size=5).fingerprint

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            TrialPlan(0)
        with pytest.raises(ConfigurationError):
            TrialPlan(5, shard_size=0)

    def test_single_trial(self):
        plan = TrialPlan(1, seed=0)
        assert plan.n_shards == 1
        assert plan.shards[0].n_trials == 1
