"""Tests for the telemetry hub and stock progress printer."""

import io

from repro.runtime.telemetry import (
    ProgressPrinter,
    RunCompleted,
    RunStarted,
    ShardCompleted,
    Telemetry,
)


def _started(n_pending=4):
    return RunStarted(
        key="run-0000", n_trials=10, n_shards=4, n_pending=n_pending, backend="serial"
    )


def _shard(from_checkpoint=False):
    return ShardCompleted(
        key="run-0000",
        shard_index=2,
        n_trials=3,
        elapsed_s=0.0 if from_checkpoint else 0.5,
        trials_per_sec=0.0 if from_checkpoint else 6.0,
        from_checkpoint=from_checkpoint,
    )


def _completed():
    return RunCompleted(
        key="run-0000",
        n_trials=10,
        n_shards_run=3,
        n_shards_restored=1,
        elapsed_s=2.0,
        trials_per_sec=5.0,
    )


class TestTelemetry:
    def test_subscribers_receive_events_in_order(self):
        hub = Telemetry()
        seen_a, seen_b = [], []
        hub.subscribe(seen_a.append)
        hub.subscribe(seen_b.append)
        events = [_started(), _shard(), _completed()]
        for event in events:
            hub.emit(event)
        assert seen_a == events
        assert seen_b == events

    def test_unsubscribe_stops_delivery(self):
        hub = Telemetry()
        seen = []
        unsubscribe = hub.subscribe(seen.append)
        hub.emit(_started())
        unsubscribe()
        hub.emit(_completed())
        assert seen == [_started()]
        unsubscribe()  # second call is a no-op

    def test_emit_without_subscribers(self):
        Telemetry().emit(_started())  # must not raise


class TestProgressPrinter:
    def test_writes_one_line_per_event(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        for event in (_started(), _shard(), _completed()):
            printer(event)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3
        assert all(line.startswith("[run-0000]") for line in lines)

    def test_format_run_started_mentions_checkpointed_shards(self):
        assert "from checkpoint" not in ProgressPrinter.format(_started(n_pending=4))
        assert "1 shard(s) from checkpoint" in ProgressPrinter.format(
            _started(n_pending=3)
        )

    def test_format_shard_completed(self):
        line = ProgressPrinter.format(_shard())
        assert "shard 2" in line
        assert "3 trial(s)" in line
        assert "6.0 trials/s" in line

    def test_format_restored_shard(self):
        line = ProgressPrinter.format(_shard(from_checkpoint=True))
        assert "restored from checkpoint" in line

    def test_format_run_completed(self):
        line = ProgressPrinter.format(_completed())
        assert "done" in line
        assert "3 shard(s) run" in line
        assert "1 restored" in line
