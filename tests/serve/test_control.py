"""The HTTP control plane: health, metrics, tenant CRUD, drain."""

import asyncio
import json

from repro.serve import ReproServer, ServerConfig, TenantConfig


async def _http(port, method, path, body=None):
    """One hand-rolled HTTP/1.1 request; returns (status, decoded body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    )
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    header, _, body_bytes = raw.partition(b"\r\n\r\n")
    status = int(header.split()[1])
    text = body_bytes.decode()
    try:
        return status, json.loads(text)
    except json.JSONDecodeError:
        return status, text


class TestControlPlane:
    def _scenario(self, tmp_path, body):
        async def wrapper():
            server = ReproServer(ServerConfig(checkpoint_dir=tmp_path, jobs=1))
            await server.start()
            try:
                return await body(server, server.control_port)
            finally:
                await server.stop()

        return asyncio.run(wrapper())

    def test_healthz(self, tmp_path):
        async def body(server, port):
            return await _http(port, "GET", "/healthz")

        status, health = self._scenario(tmp_path, body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["sessions"] == 0
        assert health["connections"] == 0

    def test_metrics_expositions(self, tmp_path):
        async def body(server, port):
            server.metrics.incr("messages", 7)
            prometheus = await _http(port, "GET", "/metrics")
            as_json = await _http(port, "GET", "/metrics.json")
            return prometheus, as_json

        (p_status, text), (j_status, snap) = self._scenario(tmp_path, body)
        assert p_status == 200
        assert "repro_serve_messages_total 7" in text
        assert j_status == 200
        assert snap["counters"]["messages"] == 7

    def test_tenant_crud(self, tmp_path):
        config = TenantConfig(name="lab", gamma=0.02, durable=False)

        async def body(server, port):
            created = await _http(port, "PUT", "/tenants/lab", config.to_dict())
            listed = await _http(port, "GET", "/tenants")
            fetched = await _http(port, "GET", "/tenants/lab")
            deleted = await _http(port, "DELETE", "/tenants/lab")
            missing = await _http(port, "GET", "/tenants/lab")
            return created, listed, fetched, deleted, missing

        created, listed, fetched, deleted, missing = self._scenario(
            tmp_path, body
        )
        assert created == (200, config.to_dict())
        assert listed[0] == 200
        assert {t["name"] for t in listed[1]["tenants"]} == {"default", "lab"}
        assert fetched == (200, config.to_dict())
        assert deleted == (200, {"deleted": "lab"})
        assert missing[0] == 404

    def test_put_validates_and_name_must_match_path(self, tmp_path):
        async def body(server, port):
            bad_gamma = await _http(
                port, "PUT", "/tenants/x", {"name": "x", "gamma": 2.0}
            )
            name_clash = await _http(
                port, "PUT", "/tenants/x", {"name": "y"}
            )
            unknown_key = await _http(
                port, "PUT", "/tenants/x", {"gammma": 0.1}
            )
            return bad_gamma, name_clash, unknown_key

        for status, payload in self._scenario(tmp_path, body):
            assert status == 400
            assert "error" in payload

    def test_default_tenant_cannot_be_deleted(self, tmp_path):
        async def body(server, port):
            return await _http(port, "DELETE", "/tenants/default")

        status, payload = self._scenario(tmp_path, body)
        assert status == 404
        assert "default" in payload["error"]

    def test_unknown_route_and_bad_method(self, tmp_path):
        async def body(server, port):
            nowhere = await _http(port, "GET", "/nowhere")
            bad_method = await _http(port, "POST", "/healthz")
            return nowhere, bad_method

        nowhere, bad_method = self._scenario(tmp_path, body)
        assert nowhere[0] == 404
        assert bad_method[0] == 405

    def test_drain_flips_health_and_refuses_mutations(self, tmp_path):
        async def body(server, port):
            accepted = await _http(port, "POST", "/drain")
            await asyncio.sleep(0.05)  # let the drain task run
            health = await _http(port, "GET", "/healthz")
            again = await _http(port, "POST", "/drain")
            refused_put = await _http(
                port, "PUT", "/tenants/late", {"name": "late"}
            )
            refused_delete = await _http(port, "DELETE", "/tenants/late")
            return accepted, health, again, refused_put, refused_delete

        accepted, health, again, refused_put, refused_delete = self._scenario(
            tmp_path, body
        )
        assert accepted == (202, {"draining": True, "already_draining": False})
        assert health[1]["status"] == "draining"
        assert again[1]["already_draining"] is True
        assert refused_put[0] == 503
        assert refused_delete[0] == 503
