"""Serve metrics: histogram math, counters, telemetry folding, exposition."""

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import LatencyHistogram, ServeMetrics
from repro.serve.metrics import COUNTER_NAMES
from repro.stream.telemetry import (
    ChunkCompleted,
    LambdaAdjusted,
    StreamCompleted,
    StreamStarted,
)


def _chunk_event(frames_in=16, frames_out=12, elapsed_s=0.002):
    return ChunkCompleted(
        chunk_index=0,
        frames_in=frames_in,
        frames_out=frames_out,
        elapsed_s=elapsed_s,
        frames_per_sec=frames_in / elapsed_s,
        queue_depth=0,
        high_water=frames_in,
    )


class TestLatencyHistogram:
    def test_empty_quantiles_are_zero(self):
        hist = LatencyHistogram()
        assert hist.p50 == 0.0
        assert hist.p99 == 0.0
        assert hist.mean == 0.0

    def test_quantiles_are_upper_bound_estimates(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(0.001)
        hist.record(1.0)
        # 0.001 is exactly a bucket bound, so p50 reads it back exactly;
        # the single 1.0 outlier only surfaces at the very top.
        assert hist.p50 == pytest.approx(0.001)
        assert hist.quantile(1.0) == pytest.approx(1.0)
        assert hist.mean == pytest.approx((99 * 0.001 + 1.0) / 100)
        assert hist.count == 100
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(1.0)

    def test_negative_observation_clamps(self):
        hist = LatencyHistogram()
        hist.record(-5.0)
        assert hist.count == 1
        assert hist.sum == 0.0

    def test_bad_quantile_raises(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().quantile(1.5)

    def test_snapshot_shape(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        snap = hist.snapshot()
        assert set(snap) == {"count", "mean_s", "min_s", "max_s", "p50_s", "p99_s"}
        assert snap["count"] == 1


class TestServeMetrics:
    def test_incr_and_counter(self):
        metrics = ServeMetrics()
        metrics.incr("messages")
        metrics.incr("messages", 4)
        assert metrics.counter("messages") == 5

    def test_unknown_counter_raises(self):
        with pytest.raises(ConfigurationError):
            ServeMetrics().incr("not-a-counter")

    def test_unknown_histogram_raises(self):
        with pytest.raises(ConfigurationError):
            ServeMetrics().observe("not-a-histogram", 0.1)

    def test_chunk_events_fold_into_counters_and_latency(self):
        metrics = ServeMetrics()
        metrics(_chunk_event(frames_in=16, frames_out=12))
        metrics(_chunk_event(frames_in=16, frames_out=16))
        assert metrics.counter("chunks") == 2
        assert metrics.counter("frames_in") == 32
        assert metrics.counter("frames_out") == 28
        assert metrics.snapshot()["latency"]["chunk_latency"]["count"] == 2

    def test_stream_started_counts_opens_and_resumes(self):
        metrics = ServeMetrics()
        started = dict(
            source="s", stages=(), chunk_frames=16, policy="block"
        )
        metrics(StreamStarted(resumed_frames=0, **started))
        metrics(StreamStarted(resumed_frames=48, **started))
        assert metrics.counter("sessions_opened") == 2
        assert metrics.counter("sessions_resumed") == 1

    def test_stream_completed_counts(self):
        metrics = ServeMetrics()
        metrics(
            StreamCompleted(
                n_frames_in=64,
                n_frames_out=64,
                n_chunks=4,
                elapsed_s=0.1,
                frames_per_sec=640.0,
                stages=(),
                high_water=16,
            )
        )
        assert metrics.counter("sessions_completed") == 1

    def test_prometheus_exposition(self):
        metrics = ServeMetrics()
        metrics.incr("messages", 3)
        metrics.observe("ingest_latency", 0.005)
        text = metrics.render_prometheus()
        assert "repro_serve_messages_total 3" in text
        for name in COUNTER_NAMES:
            assert f"repro_serve_{name}_total" in text
        assert 'repro_serve_ingest_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_serve_ingest_latency_seconds_count 1" in text

    def test_snapshot_structure(self):
        snap = ServeMetrics().snapshot()
        assert set(snap) == {"counters", "latency", "lambda_current"}
        assert set(snap["counters"]) == set(COUNTER_NAMES)
        assert snap["lambda_current"] == {}

    def test_lambda_adjusted_updates_counter_and_gauge(self):
        metrics = ServeMetrics()
        metrics(
            LambdaAdjusted(
                label="lab",
                stack_index=3,
                frame_index=96,
                old_sensitivity=50.0,
                new_sensitivity=100.0,
                estimated_sigma=24.0,
                estimated_gamma=0.05,
            )
        )
        assert metrics.counter("lambda_adjustments") == 1
        assert metrics.snapshot()["lambda_current"] == {"lab": 100.0}
        text = metrics.render_prometheus()
        assert 'repro_serve_lambda_current{tenant="lab"} 100' in text
