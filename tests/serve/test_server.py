"""End-to-end serve tests over real sockets: oracle identity, concurrent
tenants, chaos-kill resume, and drain -> restart -> byte-identical resume."""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import (
    ReproServer,
    ServerConfig,
    StreamClient,
    TenantConfig,
)
from repro.stream import ArraySource, SyntheticWalkSource, read_all, run_batch

TENANT = TenantConfig(
    name="tt",
    gamma=0.02,
    inject_seed=3,
    upsilon=4,
    stack_frames=8,
    chunk_frames=16,
    durable=True,
)


def _walk(n_frames, seed, shape=(5, 5)):
    return read_all(SyntheticWalkSource(shape, seed=seed, n_frames=n_frames))


def _oracle(frames, tenant=TENANT):
    return run_batch(ArraySource(frames), tenant.build_stages())


async def _start_server(tmp_path, **overrides):
    server = ReproServer(
        ServerConfig(checkpoint_dir=tmp_path, jobs=2, **overrides)
    )
    server.registry.put(TENANT)
    await server.start()
    return server


def _client(server, stream, frames, **kwargs):
    kwargs.setdefault("batch_frames", 13)
    kwargs.setdefault("retry_delay_s", 0.02)
    return StreamClient(
        "127.0.0.1", server.ingest_port, TENANT.name, stream, frames, **kwargs
    )


async def _raw_request(port, *messages):
    """Open one ingest connection, send JSON lines, return the replies."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    replies = []
    try:
        for message in messages:
            writer.write(json.dumps(message).encode() + b"\n")
            await writer.drain()
            replies.append(json.loads(await reader.readline()))
    finally:
        writer.close()
    return replies


class TestSingleStream:
    def test_matches_batch_oracle(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            frames = _walk(80, seed=11)
            result = await _client(server, "s1", frames).run()
            await server.drain()
            await server.stop()
            return frames, result

        frames, result = asyncio.run(scenario())
        oracle = _oracle(frames)
        assert result.outputs.tobytes() == oracle.output.tobytes()
        assert result.result["psi_algorithm"] == oracle.psi_algorithm
        assert result.reconnects == 0

    def test_metrics_observe_the_stream(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            await _client(server, "s1", _walk(64, seed=12)).run()
            counters = server.metrics.snapshot()["counters"]
            await server.drain()
            await server.stop()
            return counters

        counters = asyncio.run(scenario())
        assert counters["sessions_opened"] == 1
        assert counters["sessions_completed"] == 1
        assert counters["frames_in"] == 64
        assert counters["messages"] > 0
        assert counters["connections_opened"] >= 1


class TestConcurrentStreams:
    def test_eight_streams_all_match(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            stacks = [_walk(64, seed=100 + i) for i in range(8)]
            results = await asyncio.gather(
                *(
                    _client(server, f"s{i}", stacks[i]).run()
                    for i in range(8)
                )
            )
            await server.drain()
            await server.stop()
            return stacks, results

        stacks, results = asyncio.run(scenario())
        for frames, result in zip(stacks, results):
            oracle = _oracle(frames)
            assert result.outputs.tobytes() == oracle.output.tobytes()
            assert result.result["psi_algorithm"] == oracle.psi_algorithm


class TestChaosDeterminism:
    """The strike schedule is a pure function of (kill_rate, seed).

    The chaos-resume test below pins ``chaos_seed=7`` and asserts
    ``kills > 0``; that assertion is only deflaked if the monkey's RNG
    consumes entropy from nowhere else — no wall clock, no global
    random state, no per-run reseeding.
    """

    def test_strike_schedule_derives_only_from_the_seed(self):
        from repro.serve.server import ChaosMonkey

        first = ChaosMonkey(0.25, seed=7)
        second = ChaosMonkey(0.25, seed=7)
        schedule = [first.strike() for _ in range(500)]
        assert schedule == [second.strike() for _ in range(500)]
        assert first.kills == second.kills > 0

    def test_different_seeds_differ(self):
        from repro.serve.server import ChaosMonkey

        seven, eight = ChaosMonkey(0.25, seed=7), ChaosMonkey(0.25, seed=8)
        a = [seven.strike() for _ in range(200)]
        b = [eight.strike() for _ in range(200)]
        assert a != b

    def test_global_random_state_does_not_leak_in(self):
        import random

        from repro.serve.server import ChaosMonkey

        pristine = ChaosMonkey(0.25, seed=7)
        reference = [pristine.strike() for _ in range(100)]
        random.seed(999)  # perturb the global RNG between draws
        monkey = ChaosMonkey(0.25, seed=7)
        interleaved = []
        for _ in range(100):
            random.random()
            interleaved.append(monkey.strike())
        assert interleaved == reference

    def test_zero_rate_never_strikes_and_draws_nothing(self):
        from repro.serve.server import ChaosMonkey

        silent = ChaosMonkey(0.0, seed=7)
        assert not any(silent.strike() for _ in range(100))
        assert silent.kills == 0
        # The rate-0 path must not consume RNG state: raising the rate
        # afterwards replays the seed's schedule from the beginning.
        assert silent._rng.random() == ChaosMonkey(0.25, seed=7)._rng.random()

    def test_pinned_seed_strikes_within_the_test_horizon(self):
        # The exact pin used by test_kills_do_not_change_a_single_byte:
        # seed 7 at rate 0.25 must strike well inside the ~33 strike
        # points a 120-frame/11-per-batch run offers, else that test's
        # `kills > 0` gate would be luck, not determinism.
        from repro.serve.server import ChaosMonkey

        monkey = ChaosMonkey(0.25, seed=7)
        strikes = [i for i in range(30) if monkey.strike()]
        assert strikes and strikes[0] < 20


class TestChaosResume:
    def test_kills_do_not_change_a_single_byte(self, tmp_path):
        async def scenario():
            server = await _start_server(
                tmp_path, chaos_kill_rate=0.25, chaos_seed=7
            )
            frames = _walk(120, seed=21)
            result = await _client(
                server, "s1", frames, batch_frames=11, max_attempts=200
            ).run()
            kills = server.chaos.kills
            await server.drain()
            await server.stop()
            return frames, result, kills

        frames, result, kills = asyncio.run(scenario())
        assert kills > 0, "chaos never struck; the test proved nothing"
        assert result.reconnects >= kills
        oracle = _oracle(frames)
        assert result.outputs.tobytes() == oracle.output.tobytes()
        assert result.result["psi_algorithm"] == oracle.psi_algorithm


class TestDrainRestart:
    def test_mid_stream_drain_then_restart_resumes(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            port = server.ingest_port
            stacks = [_walk(96, seed=30 + i) for i in range(4)]
            tasks = [
                asyncio.ensure_future(
                    _client(
                        server, f"s{i}", stacks[i],
                        batch_frames=8, max_attempts=200,
                    ).run()
                )
                for i in range(4)
            ]
            while server.metrics.counter("messages") < 6:
                await asyncio.sleep(0.005)
            assert await server.drain()
            await server.stop()

            restarted = ReproServer(
                ServerConfig(checkpoint_dir=tmp_path, ingest_port=port, jobs=2)
            )
            await restarted.start()
            results = await asyncio.gather(*tasks)
            resumed = restarted.metrics.counter("sessions_resumed")
            await restarted.drain()
            await restarted.stop()
            return stacks, results, resumed

        stacks, results, resumed = asyncio.run(scenario())
        assert resumed > 0, "nothing resumed; the drain landed too late"
        assert sum(r.drained for r in results) > 0
        for frames, result in zip(stacks, results):
            oracle = _oracle(frames)
            assert result.outputs.tobytes() == oracle.output.tobytes()
            assert result.result["psi_algorithm"] == oracle.psi_algorithm


class TestProtocolRefusals:
    def test_second_connection_to_active_stream_is_busy(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            hello = {
                "type": "hello", "tenant": TENANT.name, "stream": "s1",
                "shape": [5, 5], "dtype": "<u2", "have_outputs": 0,
            }
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.ingest_port
            )
            writer.write(json.dumps(hello).encode() + b"\n")
            await writer.drain()
            welcome = json.loads(await reader.readline())
            [rival] = await _raw_request(server.ingest_port, hello)
            writer.close()
            await server.drain()
            await server.stop()
            return welcome, rival

        welcome, rival = asyncio.run(scenario())
        assert welcome["type"] == "welcome"
        assert rival == {
            "type": "error",
            "code": "busy",
            "error": rival["error"],
        }

    def test_unknown_tenant_and_malformed_hello(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            port = server.ingest_port
            [unknown] = await _raw_request(
                port,
                {
                    "type": "hello", "tenant": "ghost", "stream": "s",
                    "shape": [2], "dtype": "<u2",
                },
            )
            [bad_shape] = await _raw_request(
                port,
                {
                    "type": "hello", "tenant": TENANT.name, "stream": "s",
                    "shape": [0], "dtype": "<u2",
                },
            )
            [orphan] = await _raw_request(port, {"type": "frames", "count": 0})
            await server.drain()
            await server.stop()
            return unknown, bad_shape, orphan

        unknown, bad_shape, orphan = asyncio.run(scenario())
        assert unknown["code"] == "refused"
        assert bad_shape["code"] == "refused"
        assert orphan["code"] == "refused"

    def test_detach_parks_and_reattach_continues(self, tmp_path):
        async def scenario():
            server = await _start_server(tmp_path)
            frames = _walk(64, seed=41)
            hello = {
                "type": "hello", "tenant": TENANT.name, "stream": "s1",
                "shape": [5, 5], "dtype": "<u2", "have_outputs": 0,
            }
            from repro.serve import encode_frames

            first = await _raw_request(
                server.ingest_port,
                hello,
                {
                    "type": "frames",
                    "count": 32,
                    "data": encode_frames(frames[:32]),
                },
                {"type": "detach"},
            )
            parked = server.sessions.parked_count
            second = await _raw_request(server.ingest_port, hello)
            await server.drain()
            await server.stop()
            return first, parked, second

        first, parked, second = asyncio.run(scenario())
        assert first[1]["type"] == "ack" and first[1]["received"] == 32
        assert first[2] == {"type": "detached", "resume_frame": 32}
        assert parked == 1
        assert second[0]["type"] == "welcome"
        assert second[0]["resume_frame"] == 32
