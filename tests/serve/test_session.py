"""StreamSession: ingest/finish vs the batch oracle, durable resume,
output-log replay, and strict checkpoint mismatch."""

import numpy as np
import pytest

from repro.exceptions import CheckpointMismatchError, ServeError
from repro.serve import TenantConfig
from repro.serve.session import StreamSession
from repro.stream import ArraySource, SyntheticWalkSource, read_all, run_batch

TENANT = TenantConfig(
    name="t",
    gamma=0.01,
    inject_seed=2,
    upsilon=4,
    stack_frames=8,
    chunk_frames=16,
    durable=True,
)


def _walk(n_frames, seed=5, shape=(4, 4)):
    return read_all(SyntheticWalkSource(shape, seed=seed, n_frames=n_frames))


def _drive(session, frames, batch=13):
    """Feed every frame through ingest and return the collected outputs."""
    pieces = []
    for i in range(0, frames.shape[0], batch):
        pieces.append(session.ingest(frames[i : i + batch]).outputs)
    result, _, tail = session.finish()
    pieces.append(tail)
    return result, np.concatenate(pieces, axis=0)


class TestIngestFinish:
    def test_matches_batch_oracle(self, tmp_path):
        frames = _walk(80)
        session = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        assert session.open() == 0
        result, outputs = _drive(session, frames)
        oracle = run_batch(ArraySource(frames), TENANT.build_stages())
        assert outputs.tobytes() == oracle.output.tobytes()
        assert result.psi_algorithm == oracle.psi_algorithm
        assert result.n_frames_in == 80

    def test_clean_finish_deletes_durable_state(self, tmp_path):
        session = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        session.open()
        _drive(session, _walk(48))
        assert session.completed
        leftovers = [
            p for p in (tmp_path / TENANT.name).glob("s.*") if p.exists()
        ]
        assert leftovers == []

    def test_non_durable_session_writes_nothing(self, tmp_path):
        tenant = TenantConfig(
            name="t", gamma=0.01, upsilon=4, stack_frames=8,
            chunk_frames=16, durable=False,
        )
        session = StreamSession(tenant, "s", (4, 4), np.uint16, tmp_path)
        session.open()
        session.ingest(_walk(32))
        assert list(tmp_path.rglob("s.*")) == []

    def test_ingest_larger_than_buffer_still_lands(self, tmp_path):
        tenant = TenantConfig(
            name="t", gamma=0.0, upsilon=4, stack_frames=8,
            chunk_frames=8, buffer_frames=8, durable=False,
        )
        session = StreamSession(tenant, "s", (4, 4), np.uint16, None)
        session.open()
        frames = _walk(64)
        result = session.ingest(frames)  # 8x the buffer capacity
        assert result.accepted == 64
        assert result.received == 64
        assert result.refused > 0  # backpressure engaged, nothing lost


class TestDurableResume:
    def test_resume_after_drop_is_byte_identical(self, tmp_path):
        frames = _walk(96, seed=6)
        oracle = run_batch(ArraySource(frames), TENANT.build_stages())

        first = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        first.open()
        first.ingest(frames[:50])  # then the connection "dies"

        second = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        resume = second.open()
        # The checkpoint lands at the last chunk boundary (48 processed)
        # but preserves the 2 still-buffered frames in the source state,
        # so the producer continues from 50 — no frame is sent twice.
        assert resume == 50
        _, replayed = second.replay_outputs(0)
        pieces = [replayed]
        result, rest = _drive(second, frames[resume:])
        pieces.append(rest)
        outputs = np.concatenate(pieces, axis=0)
        assert outputs.tobytes() == oracle.output.tobytes()
        assert result.psi_algorithm == oracle.psi_algorithm

    def test_replay_outputs_dedupes_by_global_index(self, tmp_path):
        frames = _walk(64, seed=7)
        first = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        first.open()
        first.ingest(frames)

        second = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        second.open()
        start_all, all_outputs = second.replay_outputs(0)
        assert start_all == 0
        have = all_outputs.shape[0] // 2
        start, suffix = second.replay_outputs(have)
        assert start == have
        assert suffix.tobytes() == all_outputs[have:].tobytes()

    def test_replay_beyond_log_raises(self, tmp_path):
        tenant = TenantConfig(
            name="t", gamma=0.0, upsilon=4, stack_frames=8,
            chunk_frames=16, durable=False,
        )
        session = StreamSession(tenant, "s", (4, 4), np.uint16, None)
        session.open()
        session.ingest(_walk(32))
        with pytest.raises(ServeError, match="no output log"):
            session.replay_outputs(0)

    def test_checkpoint_mismatch_is_strict(self, tmp_path):
        first = StreamSession(TENANT, "s", (4, 4), np.uint16, tmp_path)
        first.open()
        first.ingest(_walk(32))

        retuned = TenantConfig(
            name="t", gamma=0.05, inject_seed=2, upsilon=4,
            stack_frames=8, chunk_frames=16, durable=True,
        )
        second = StreamSession(retuned, "s", (4, 4), np.uint16, tmp_path)
        with pytest.raises(CheckpointMismatchError):
            second.open()


class TestIdentity:
    def test_bad_stream_name_rejected(self):
        for name in ("", "a/b", " padded "):
            with pytest.raises(ServeError):
                StreamSession(TENANT, name, (4, 4), np.uint16, None)

    def test_matches_frame_format(self):
        session = StreamSession(TENANT, "s", (4, 4), np.uint16, None)
        assert session.matches((4, 4), "<u2")
        assert not session.matches((4, 4), np.float32)
        assert not session.matches((8,), np.uint16)

    def test_name_property(self):
        session = StreamSession(TENANT, "s1", (2,), np.uint16, None)
        assert session.name == "t/s1"
