"""Tenant configs and the persisted tenant registry."""

import pytest

from repro.exceptions import ConfigurationError, ServeError
from repro.serve import DEFAULT_TENANT, TenantConfig, TenantRegistry


class TestTenantConfig:
    def test_defaults_build_voter_only(self):
        stages = TenantConfig().build_stages()
        assert [s.name for s in stages] == ["algo_ngst[N=16]"]

    def test_full_chain_order(self):
        config = TenantConfig(
            name="full", gamma=0.01, smoother="median", window=3
        )
        assert [s.name for s in config.build_stages()] == [
            "inject[UncorrelatedFaultModel]",
            "algo_ngst[N=16]",
            "median3",
        ]

    def test_passthrough_tenant(self):
        config = TenantConfig(name="raw", gamma=0.0, upsilon=0)
        assert config.build_stages() == []

    def test_stage_identity_is_stable(self):
        # Same config -> same stage names, so every stream of a tenant
        # shares a checkpoint fingerprint family.
        a = TenantConfig(name="x", gamma=0.02, smoother="mean")
        b = TenantConfig(name="x", gamma=0.02, smoother="mean")
        assert [s.describe() for s in a.build_stages()] == [
            s.describe() for s in b.build_stages()
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a/b"},
            {"name": " padded "},
            {"gamma": 1.5},
            {"gamma": -0.1},
            {"smoother": "nope"},
            {"chunk_frames": 0},
            {"chunk_frames": 64, "buffer_frames": 32},
            {"policy": "bogus"},
            {"upsilon": 8, "stack_frames": 3},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantConfig(**kwargs)

    def test_dict_round_trip(self):
        config = TenantConfig(
            name="rt", gamma=0.03, upsilon=8, stack_frames=12, durable=False
        )
        assert TenantConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown tenant config key"):
            TenantConfig.from_dict({"name": "x", "gammma": 0.1})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ConfigurationError):
            TenantConfig.from_dict(["not", "a", "dict"])

    def test_describe_mentions_stages_and_envelope(self):
        text = TenantConfig(name="d", gamma=0.01).describe()
        assert "inject[UncorrelatedFaultModel]" in text
        assert "chunk=64" in text


class TestTenantRegistry:
    def test_fresh_registry_has_default(self, tmp_path):
        registry = TenantRegistry(tmp_path / "tenants.json")
        assert DEFAULT_TENANT in registry
        assert registry.get(DEFAULT_TENANT).name == DEFAULT_TENANT

    def test_put_persists_across_instances(self, tmp_path):
        path = tmp_path / "tenants.json"
        TenantRegistry(path).put(TenantConfig(name="lab", gamma=0.02))
        reloaded = TenantRegistry(path)
        assert reloaded.get("lab").gamma == 0.02

    def test_get_unknown_raises(self, tmp_path):
        registry = TenantRegistry(tmp_path / "tenants.json")
        with pytest.raises(ServeError, match="unknown tenant"):
            registry.get("absent")

    def test_delete_roundtrip_and_default_protection(self, tmp_path):
        path = tmp_path / "tenants.json"
        registry = TenantRegistry(path)
        registry.put(TenantConfig(name="gone"))
        registry.delete("gone")
        assert "gone" not in registry
        assert "gone" not in TenantRegistry(path)
        with pytest.raises(ServeError, match="default"):
            registry.delete(DEFAULT_TENANT)
        with pytest.raises(ServeError, match="unknown"):
            registry.delete("never-existed")

    def test_memory_only_registry(self):
        registry = TenantRegistry(None)
        registry.put(TenantConfig(name="ephemeral"))
        assert len(registry) == 2  # default + ephemeral
