"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.schedule(4.0, lambda: times.append(sim.now))
        final = sim.run()
        assert times == [1.5, 4.0]
        assert final == 4.0

    def test_schedule_at(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(1.0, lambda: fired.append("second"))

        sim.schedule(1.0, first)
        assert sim.run() == 2.0
        assert fired == ["first", "second"]

    def test_rejects_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_processed_counts(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        assert sim.run(until=5.0) == 5.0
        assert fired == [1]
        # Continuing processes the remaining event.
        sim.run()
        assert fired == [1, 10]

    def test_idle_run_until_advances_clock(self):
        sim = Simulator()
        assert sim.run(until=3.0) == 3.0

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.1, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)


class TestTracing:
    def test_labels_recorded_in_order(self):
        sim = Simulator(trace=True)
        sim.schedule(2.0, lambda: None, label="b")
        sim.schedule(1.0, lambda: None, label="a")
        sim.schedule(1.5, lambda: None)  # unlabelled: not traced
        sim.run()
        assert sim.trace_events == [(1.0, "a"), (2.0, "b")]

    def test_tracing_off_by_default(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None, label="x")
        sim.run()
        assert sim.trace_events == []

    def test_node_jobs_traced(self):
        from repro.sim.node import Node, ProcessingModel

        sim = Simulator(trace=True)
        node = Node(sim, "n1", ProcessingModel(fixed_s=1.0, per_byte_s=0))
        node.submit(0, lambda: None)
        node.submit(0, lambda: None, label="special")
        sim.run()
        labels = [label for _, label in sim.trace_events]
        assert labels == ["n1:done", "special"]

    def test_cancelled_events_not_traced(self):
        sim = Simulator(trace=True)
        event = sim.schedule(1.0, lambda: None, label="x")
        event.cancel()
        sim.run()
        assert sim.trace_events == []
