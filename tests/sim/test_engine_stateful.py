"""Stateful property tests of the discrete-event engine.

A hypothesis rule machine schedules, cancels and runs events in random
interleavings and checks the engine's core invariants: time never goes
backwards, cancelled events never fire, non-cancelled events fire
exactly once in (time, insertion) order.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.sim.engine import Simulator


class SimulatorMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.fired: list[tuple[float, int]] = []
        self.scheduled: dict[int, tuple[float, object]] = {}
        self.cancelled: set[int] = set()
        self.counter = 0

    @rule(delay=st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    def schedule(self, delay):
        token = self.counter
        self.counter += 1
        event = self.sim.schedule(
            delay, lambda t=token: self.fired.append((self.sim.now, t))
        )
        self.scheduled[token] = (self.sim.now + delay, event)

    @rule()
    def cancel_one(self):
        pending = [
            t
            for t in self.scheduled
            if t not in self.cancelled and not self._has_fired(t)
        ]
        if pending:
            token = pending[0]
            self.scheduled[token][1].cancel()
            self.cancelled.add(token)

    @rule(horizon=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    def run_until(self, horizon):
        self.sim.run(until=self.sim.now + horizon)

    @rule()
    def drain(self):
        self.sim.run()

    def _has_fired(self, token):
        return any(t == token for _, t in self.fired)

    @invariant()
    def time_monotonic(self):
        times = [t for t, _ in self.fired]
        assert times == sorted(times)

    @invariant()
    def cancelled_never_fire(self):
        fired_tokens = {t for _, t in self.fired}
        # A cancel can race an already-fired event; only events cancelled
        # while still pending must not fire afterwards.  The machine only
        # cancels pending ones, so the intersection must be empty.
        assert not (fired_tokens & self.cancelled)

    @invariant()
    def no_double_firing(self):
        tokens = [t for _, t in self.fired]
        assert len(tokens) == len(set(tokens))

    @invariant()
    def fired_not_before_due(self):
        for fire_time, token in self.fired:
            due, _ = self.scheduled[token]
            assert fire_time >= due - 1e-9

    def teardown(self):
        self.sim.run()
        expected = {
            t for t in self.scheduled if t not in self.cancelled
        }
        assert {t for _, t in self.fired} == expected


TestSimulatorStateful = SimulatorMachine.TestCase
