"""Tests for the network model."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.network import Link, Network


class TestLink:
    def test_transfer_time(self):
        sim = Simulator()
        link = Link(sim, latency_s=1e-3, bandwidth_bps=8e6)
        # 1000 bytes = 8000 bits at 8e6 bps = 1 ms wire + 1 ms latency.
        assert link.transfer_time(1000) == pytest.approx(2e-3)

    def test_delivery_fires_callback(self):
        sim = Simulator()
        link = Link(sim, latency_s=0.5, bandwidth_bps=1e9)
        delivered = []
        link.send(0, lambda: delivered.append(sim.now))
        sim.run()
        assert delivered == [pytest.approx(0.5)]

    def test_transfers_serialise(self):
        sim = Simulator()
        link = Link(sim, latency_s=1.0, bandwidth_bps=1e9)
        times = []
        link.send(0, lambda: times.append(sim.now))
        link.send(0, lambda: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(2.0)

    def test_accounting(self):
        sim = Simulator()
        link = Link(sim)
        link.send(100, lambda: None)
        link.send(200, lambda: None)
        assert link.bytes_carried == 300
        assert link.transfers == 2

    def test_rejects_negative_bytes(self):
        link = Link(Simulator())
        with pytest.raises(SimulationError):
            link.send(-1, lambda: None)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            Link(Simulator(), latency_s=-1)
        with pytest.raises(ConfigurationError):
            Link(Simulator(), bandwidth_bps=0)


class TestNetwork:
    def test_links_lazily_created_per_pair(self):
        network = Network(Simulator())
        ab = network.link("a", "b")
        assert network.link("a", "b") is ab
        assert network.link("b", "a") is not ab

    def test_no_self_links(self):
        network = Network(Simulator())
        with pytest.raises(SimulationError):
            network.link("a", "a")

    def test_total_bytes(self):
        sim = Simulator()
        network = Network(sim)
        network.send("a", "b", 100, lambda: None)
        network.send("b", "c", 50, lambda: None)
        assert network.total_bytes == 150

    def test_distinct_pairs_parallel(self):
        sim = Simulator()
        network = Network(sim, latency_s=1.0, bandwidth_bps=1e12)
        times = []
        network.send("a", "b", 0, lambda: times.append(sim.now))
        network.send("a", "c", 0, lambda: times.append(sim.now))
        sim.run()
        # Different destination pairs do not serialise on each other.
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]
