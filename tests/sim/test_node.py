"""Tests for the processing-node model."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.node import Node, ProcessingModel


class TestProcessingModel:
    def test_service_time(self):
        model = ProcessingModel(fixed_s=0.1, per_byte_s=0.001)
        assert model.service_time(100) == pytest.approx(0.2)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ProcessingModel(fixed_s=-1)


class TestNode:
    def test_submit_completes(self):
        sim = Simulator()
        node = Node(sim, "n1", ProcessingModel(fixed_s=1.0, per_byte_s=0))
        done = []
        node.submit(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0)]

    def test_fifo_queueing(self):
        sim = Simulator()
        node = Node(sim, "n1", ProcessingModel(fixed_s=1.0, per_byte_s=0))
        done = []
        node.submit(0, lambda: done.append(("a", sim.now)))
        node.submit(0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_work_factor_scales(self):
        sim = Simulator()
        node = Node(sim, "n1", ProcessingModel(fixed_s=1.0, per_byte_s=0))
        done = []
        node.submit(0, lambda: done.append(sim.now), work_factor=2.5)
        sim.run()
        assert done == [pytest.approx(2.5)]

    def test_busy_accounting(self):
        sim = Simulator()
        node = Node(sim, "n1", ProcessingModel(fixed_s=2.0, per_byte_s=0))
        node.submit(0, lambda: None)
        node.submit(0, lambda: None)
        sim.run()
        assert node.busy_seconds == pytest.approx(4.0)
        assert node.jobs_done == 2
        assert node.utilisation(8.0) == pytest.approx(0.5)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Node(Simulator(), "")

    def test_rejects_negative_work_factor(self):
        node = Node(Simulator(), "n")
        with pytest.raises(SimulationError):
            node.submit(0, lambda: None, work_factor=-1)

    def test_rejects_bad_horizon(self):
        node = Node(Simulator(), "n")
        with pytest.raises(SimulationError):
            node.utilisation(0)
