"""Strategy-equivalence harness, part 2: adaptive arms on every backend.

A figure 2 campaign carrying the adaptive and selective arms must
produce byte-identical table artifacts whether its task graph runs
serially, on a thread pool, on a process pool, or over a loopback
:class:`LocalCluster` — the same contract the fixed arms already hold.
The comparison is on canonical JSON of the panel artifact, which
carries every Ψ value at full float precision.
"""

import json
import multiprocessing

import pytest

from repro.cache import ArtifactCache
from repro.cluster import LocalCluster
from repro.dag.build import json_payload
from repro.dag.scheduler import DagScheduler
from repro.experiments import figure2, figure4
from repro.runtime.backend import ProcessPoolBackend, ThreadPoolBackend

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)


def _close(backend):
    for name in ("close", "shutdown"):
        method = getattr(backend, name, None)
        if callable(method):
            method()
            return

STRATEGIES = ("adaptive", "selective")


def fig2_table(backend=None):
    graph = figure2.graph(
        gamma0_grid=(0.001, 0.05),
        lambdas=(50.0,),
        shape=(8, 8),
        n_repeats=2,
        strategies=STRATEGIES,
    )
    scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
    panels = json_payload(
        scheduler.run(graph, targets=(figure2.TABLE_NODE,))[figure2.TABLE_NODE]
    )
    return json.dumps(panels, sort_keys=True)


class TestAdaptiveArmsAcrossBackends:
    def test_thread_pool_matches_serial(self):
        reference = fig2_table()
        backend = ThreadPoolBackend(jobs=2)
        try:
            assert fig2_table(backend) == reference
        finally:
            _close(backend)

    @needs_fork
    def test_process_pool_matches_serial(self):
        reference = fig2_table()
        backend = ProcessPoolBackend(jobs=2, start_method="fork")
        try:
            assert fig2_table(backend) == reference
        finally:
            _close(backend)

    def test_local_cluster_matches_serial(self):
        reference = fig2_table()
        with LocalCluster(n_workers=2) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.2, heartbeat_timeout_s=5.0
            )
            try:
                assert fig2_table(backend) == reference
            finally:
                _close(backend)

    def test_strategy_arm_labels_present(self):
        panels = json.loads(fig2_table())
        labels = [s["label"] for s in panels[0]["series"]]
        for strategy in STRATEGIES:
            assert f"Algo_NGST {strategy} L=50" in labels

    def test_fig4_strategy_arms_match_serial_on_threads(self):
        graph_kwargs = dict(
            gamma_ini_grid=(0.02, 0.1),
            lambdas=(50.0, 100.0),
            shape=(8, 8),
            n_repeats=1,
            strategies=("adaptive",),
        )

        def table(backend=None):
            graph = figure4.graph(**graph_kwargs)
            scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
            panels = json_payload(
                scheduler.run(graph, targets=(figure4.TABLE_NODE,))[
                    figure4.TABLE_NODE
                ]
            )
            return json.dumps(panels, sort_keys=True)

        reference = table()
        backend = ThreadPoolBackend(jobs=2)
        try:
            assert table(backend) == reference
        finally:
            _close(backend)
