"""Strategy-equivalence harness, part 1: disabled adaptivity IS the baseline.

The adaptive strategies earn their place only if turning them off
reproduces Algorithm 1 *bit for bit* — approximate equality would let a
silent behaviour change ride in under the flag.  Gated here:

* ``adaptive`` with ``coherence_beta = 0`` ≡ ``fixed``;
* ``adaptive`` on uniform-coherence (constant) stacks ≡ ``fixed`` at
  any β (every incoherence score is exactly 1.0);
* ``selective`` with the all-sensitive default map ≡ ``fixed``;
* a ``frozen`` :class:`AutotuneVoterStage` ≡ a plain ``VoterStage``.

The suite runs under both kernel tiers in CI (``REPRO_KERNEL_TIER``),
so each identity is checked against the numpy and native dispatch.
"""

import numpy as np
import pytest

from repro.config import NGSTConfig, NGSTDatasetConfig, STRATEGY_CHOICES
from repro.core.algo_ngst import AlgoNGST
from repro.core.strategies import (
    adaptive_thresholds,
    incoherence_scores,
    region_mask,
    resolve_strategy,
    strategy_arm_config,
)
from repro.core.voter import VoterMatrix
from repro.data.ngst import generate_walk
from repro.exceptions import ConfigurationError
from repro.faults import UncorrelatedFaultModel


def corrupted_stack(shape=(8, 12), n=32, gamma=0.01, seed=5, sigma=25.0):
    rng = np.random.default_rng(seed)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=n, sigma=sigma), rng, shape
    )
    corrupted, _ = UncorrelatedFaultModel(gamma).corrupt(pristine, rng)
    return corrupted


def assert_identical(result_a, result_b):
    assert result_a.corrected.tobytes() == result_b.corrected.tobytes()
    assert (
        result_a.correction_vectors.tobytes()
        == result_b.correction_vectors.tobytes()
    )
    assert result_a.n_pixels_corrected == result_b.n_pixels_corrected
    assert result_a.n_bits_corrected == result_b.n_bits_corrected


class TestAdaptiveDegeneracy:
    @pytest.mark.parametrize("shape", [(), (24,), (8, 12)])
    @pytest.mark.parametrize("per_coordinate", [False, True])
    def test_beta_zero_is_byte_identical_to_fixed(self, shape, per_coordinate):
        pixels = corrupted_stack(shape=shape)
        fixed = AlgoNGST(
            NGSTConfig(per_coordinate_thresholds=per_coordinate)
        )(pixels)
        adaptive = AlgoNGST(
            NGSTConfig(
                per_coordinate_thresholds=per_coordinate,
                strategy="adaptive",
                coherence_beta=0.0,
            )
        )(pixels)
        assert_identical(fixed, adaptive)

    @pytest.mark.parametrize("beta", [0.5, 1.0, 3.0])
    def test_constant_stack_scores_one_and_matches_fixed(self, beta):
        # A constant stack has all-zero XOR streams: every way scores
        # exactly 1.0, so no threshold moves at any shift gain.
        pixels = np.full((16, 6), 1234, dtype=np.uint16)
        scores = incoherence_scores(VoterMatrix(pixels, 4))
        assert np.all(scores == 1.0)
        fixed = AlgoNGST(NGSTConfig())(pixels)
        adaptive = AlgoNGST(
            NGSTConfig(strategy="adaptive", coherence_beta=beta)
        )(pixels)
        assert_identical(fixed, adaptive)

    def test_adjusted_thresholds_stay_ranked_powers_of_two(self):
        pixels = corrupted_stack(gamma=0.05)
        matrix = VoterMatrix(pixels, 4)
        base = matrix.thresholds(50.0, per_coordinate=True)
        adjusted = adaptive_thresholds(
            base,
            incoherence_scores(matrix),
            beta=2.0,
            prune_ratio=0.0,
            nbits=16,
        )
        assert adjusted.dtype == np.uint64
        assert np.all(adjusted >= 1)
        assert np.all(adjusted <= np.uint64(1) << np.uint64(16))
        log2 = np.log2(adjusted.astype(np.float64))
        assert np.all(log2 == np.rint(log2))  # exact powers of two

    def test_prune_ratio_forces_abstention(self):
        pixels = corrupted_stack()
        matrix = VoterMatrix(pixels, 4)
        base = matrix.thresholds(50.0, per_coordinate=True)
        scores = incoherence_scores(matrix)
        # Ratio below every score: all ways abstain everywhere.
        pruned = adaptive_thresholds(
            base, scores, beta=1.0, prune_ratio=1e-9, nbits=16
        )
        assert np.all(pruned == np.uint64(1) << np.uint64(16))

    def test_beta_zero_arms_agree_with_fixed_through_algo_dispatch(self):
        # The AlgoNGST front door routes non-fixed strategies through
        # resolve_strategy; beta=0 must survive the full dispatch path.
        pixels = corrupted_stack(shape=(10,))
        cfg = NGSTConfig(strategy="adaptive", coherence_beta=0.0)
        assert resolve_strategy(cfg).name == "adaptive"
        assert_identical(AlgoNGST(NGSTConfig())(pixels), AlgoNGST(cfg)(pixels))


class TestSelectiveDegeneracy:
    def test_all_sensitive_default_map_is_byte_identical_to_fixed(self):
        pixels = corrupted_stack(shape=(8, 12))
        fixed = AlgoNGST(NGSTConfig())(pixels)
        selective = AlgoNGST(NGSTConfig(strategy="selective"))(pixels)
        assert_identical(fixed, selective)

    def test_temporal_only_stack_delegates_to_fixed(self):
        # No coordinates ⇒ no regions ⇒ wholesale delegation, even with
        # the map knobs set.
        pixels = corrupted_stack(shape=())
        fixed = AlgoNGST(NGSTConfig())(pixels)
        selective = AlgoNGST(
            NGSTConfig(strategy="selective", margin=2, science_fast=True)
        )(pixels)
        assert_identical(fixed, selective)

    def test_region_mask_semantics(self):
        cfg = NGSTConfig(
            strategy="selective", margin=1, header_rows=2, science_fast=False
        )
        mask = region_mask((6, 5), cfg)
        # Margin border is low-sensitivity (below the header rows)...
        assert not mask[5, :].any() and not mask[2:, 0].any()
        # ...but header rows override everything back to sensitive.
        assert mask[0, :].all() and mask[1, :].all()
        # Interior stays sensitive without science_fast.
        assert mask[2:5, 1:4].all()
        assert region_mask((), cfg) is None

    def test_science_fast_keeps_headers_protected(self):
        mask = region_mask(
            (6, 5), NGSTConfig(strategy="selective", science_fast=True, header_rows=1)
        )
        assert mask[0, :].all()
        assert not mask[1:, :].any()

    def test_partitioned_run_matches_column_slices(self):
        # Per-coordinate thresholds are column-independent, so the
        # sensitive partition must equal a fixed run on those columns.
        pixels = corrupted_stack(shape=(6, 6), gamma=0.02)
        cfg = NGSTConfig(
            strategy="selective", margin=1, per_coordinate_thresholds=True
        )
        result = AlgoNGST(cfg)(pixels)
        mask = region_mask((6, 6), cfg)
        flat = pixels.reshape(pixels.shape[0], -1)
        sens = np.nonzero(mask.reshape(-1))[0]
        reference = AlgoNGST(
            NGSTConfig(per_coordinate_thresholds=True)
        )(np.ascontiguousarray(flat[:, sens]))
        got = result.correction_vectors.reshape(pixels.shape[0], -1)[:, sens]
        assert got.tobytes() == reference.correction_vectors.tobytes()


class TestStrategyPlumbing:
    def test_resolve_strategy_covers_choices(self):
        for name in STRATEGY_CHOICES:
            cfg = NGSTConfig(strategy=name)
            assert resolve_strategy(cfg).name == name

    def test_arm_config_round_trips_names(self):
        for name in STRATEGY_CHOICES:
            assert strategy_arm_config(name).strategy == name
        with pytest.raises(ConfigurationError):
            strategy_arm_config("voting-by-vibes")

    def test_config_validates_strategy_fields(self):
        with pytest.raises(ConfigurationError):
            NGSTConfig(strategy="nope")
        with pytest.raises(ConfigurationError):
            NGSTConfig(coherence_beta=-1.0)
        with pytest.raises(ConfigurationError):
            NGSTConfig(coherence_prune_ratio=0.5)  # must be 0 or > 1
        with pytest.raises(ConfigurationError):
            NGSTConfig(margin=-1)
        with pytest.raises(ConfigurationError):
            NGSTConfig(header_rows=-2)

    def test_default_strategy_flag_tracks_every_knob(self):
        assert NGSTConfig().is_default_strategy
        for override in (
            {"strategy": "adaptive"},
            {"strategy": "selective"},
            {"coherence_beta": 0.0},
            {"coherence_prune_ratio": 2.0},
            {"margin": 1},
            {"header_rows": 1},
            {"science_fast": True},
        ):
            assert not NGSTConfig(**override).is_default_strategy
