"""Strategy-equivalence harness, part 3: streams, chunks, kills, resumes.

Adaptive arms must honour every invariant the fixed stream path holds:

* chunk-invariance — any transport chunk size produces the same bytes;
* stream ≡ batch — the streamed output equals ``run_batch`` on the same
  source, including the online autotuner (whose ``batch()`` replays the
  Λ trajectory from stack zero);
* kill/resume — interrupting at any chunk boundary and resuming from
  the checkpoint reproduces the uninterrupted run bit for bit, with the
  tuner's window/streak/trajectory restored mid-flight;
* fingerprints — strategy and tuner knobs are part of the checkpoint
  fingerprint (a changed config must refuse to resume), while default
  knobs keep the historical fingerprint so old checkpoints still load.
"""

import numpy as np
import pytest

from repro.config import NGSTConfig
from repro.faults import UncorrelatedFaultModel
from repro.faults.profile import GammaStepProfile
from repro.stream import (
    InjectStage,
    StreamCheckpoint,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    run_batch,
)
from repro.stream.autotune_stage import AutotuneVoterStage

N_FRAMES = 512
CHUNKS = (1, 7, 64)
PROFILE = GammaStepProfile(base=0.001, elevated=0.08, period=256, duty=0.5)


def make_source():
    return SyntheticWalkSource(shape=(16,), seed=11, n_frames=N_FRAMES)


def adaptive_stages():
    return [
        InjectStage(UncorrelatedFaultModel(0.01), seed=3),
        VoterStage(
            NGSTConfig(strategy="adaptive", coherence_beta=1.0),
            stack_frames=32,
        ),
    ]


def selective_stages():
    return [
        InjectStage(UncorrelatedFaultModel(0.01), seed=3),
        VoterStage(
            NGSTConfig(strategy="selective", margin=2, header_rows=1),
            stack_frames=32,
        ),
    ]


def autotune_stages(frozen=False):
    return [
        InjectStage(UncorrelatedFaultModel(0.001), seed=3, profile=PROFILE),
        AutotuneVoterStage(
            NGSTConfig(sensitivity=50.0),
            stack_frames=32,
            window_stacks=2,
            interval_stacks=1,
            min_delta=10.0,
            confirm=2,
            frozen=frozen,
        ),
    ]


STAGE_BUILDERS = {
    "adaptive": adaptive_stages,
    "selective": selective_stages,
    "autotune": autotune_stages,
}


def collect(stage_list, chunk, checkpoint=None, limit_chunks=None):
    outs = []
    pipeline = StreamPipeline(
        make_source(),
        stage_list,
        chunk_frames=chunk,
        sink=lambda c: outs.append(np.array(c, copy=True)),
        checkpoint=checkpoint,
        strict_resume=checkpoint is not None,
    )
    if checkpoint is not None:
        pipeline.resume()
    result = pipeline.run(limit_chunks=limit_chunks)
    data = np.concatenate(outs) if outs else np.empty((0, 16), np.uint16)
    return data, result


class TestChunkInvariance:
    @pytest.mark.parametrize("kind", sorted(STAGE_BUILDERS))
    def test_all_chunk_sizes_agree(self, kind):
        build = STAGE_BUILDERS[kind]
        reference, ref_result = collect(build(), CHUNKS[-1])
        for chunk in CHUNKS[:-1]:
            data, result = collect(build(), chunk)
            assert data.tobytes() == reference.tobytes(), (kind, chunk)
            assert result.psi_algorithm == ref_result.psi_algorithm

    def test_autotuner_trajectory_is_chunk_invariant(self):
        trajectories = []
        for chunk in CHUNKS:
            stages = autotune_stages()
            collect(stages, chunk)
            trajectories.append(stages[1].lambda_trajectory)
        assert trajectories[0], "profile must actually move Lambda"
        assert trajectories[0] == trajectories[1] == trajectories[2]


class TestStreamMatchesBatch:
    @pytest.mark.parametrize("kind", sorted(STAGE_BUILDERS))
    def test_streamed_bytes_equal_batch(self, kind):
        build = STAGE_BUILDERS[kind]
        streamed, result = collect(build(), 7)
        batch = run_batch(make_source(), build())
        assert streamed.tobytes() == batch.output.tobytes()
        assert result.psi_algorithm == batch.psi_algorithm

    def test_frozen_autotuner_is_a_plain_voter_stage(self):
        frozen, _ = collect(autotune_stages(frozen=True), 64)
        plain = [
            InjectStage(UncorrelatedFaultModel(0.001), seed=3, profile=PROFILE),
            VoterStage(NGSTConfig(sensitivity=50.0), stack_frames=32),
        ]
        reference, _ = collect(plain, 64)
        assert frozen.tobytes() == reference.tobytes()


class TestKillResume:
    @pytest.mark.parametrize("kind", sorted(STAGE_BUILDERS))
    @pytest.mark.parametrize("kill_at", [2, 5])
    def test_resumed_run_is_bit_identical(self, tmp_path, kind, kill_at):
        build = STAGE_BUILDERS[kind]
        reference, ref_result = collect(build(), 48)
        ck = StreamCheckpoint(tmp_path / f"{kind}-{kill_at}.jsonl")
        first, first_result = collect(
            build(), 48, checkpoint=ck, limit_chunks=kill_at
        )
        assert not first_result.completed
        rest, rest_result = collect(build(), 48, checkpoint=ck)
        assert rest_result.completed
        combined = np.concatenate([first, rest])
        assert combined.tobytes() == reference.tobytes()
        assert rest_result.psi_algorithm == ref_result.psi_algorithm

    def test_autotuner_state_round_trips_through_checkpoint(self):
        stages = autotune_stages()
        collect(stages, 64)
        tuner = stages[1]
        assert tuner.lambda_trajectory
        state = tuner.state_dict()
        clone = autotune_stages()[1]
        clone.load_state(state)
        assert clone.current_sensitivity == tuner.current_sensitivity
        assert clone.lambda_trajectory == tuner.lambda_trajectory
        assert len(clone._window) == len(tuner._window)
        for mine, theirs in zip(clone._window, tuner._window):
            assert mine.tobytes() == theirs.tobytes()


class TestFingerprints:
    def test_default_strategy_keeps_historical_fingerprint(self):
        stage = VoterStage(NGSTConfig(), stack_frames=32)
        assert "strategy" not in stage.describe()

    @pytest.mark.parametrize(
        "config",
        [
            NGSTConfig(strategy="adaptive"),
            NGSTConfig(strategy="adaptive", coherence_beta=0.0),
            NGSTConfig(strategy="selective", margin=2),
            NGSTConfig(science_fast=True),
        ],
    )
    def test_strategy_knobs_change_the_fingerprint(self, config):
        default = VoterStage(NGSTConfig(), stack_frames=32).describe()
        changed = VoterStage(config, stack_frames=32).describe()
        assert changed != default
        assert "strategy" in changed

    def test_autotuner_knobs_are_fingerprinted(self):
        base = autotune_stages()[1].describe()
        assert "+autotune(" in base
        different = AutotuneVoterStage(
            NGSTConfig(sensitivity=50.0),
            stack_frames=32,
            window_stacks=3,
            min_delta=10.0,
        ).describe()
        assert different != base

    def test_profiled_injection_is_fingerprinted(self):
        plain = InjectStage(UncorrelatedFaultModel(0.001), seed=3)
        profiled = InjectStage(
            UncorrelatedFaultModel(0.001), seed=3, profile=PROFILE
        )
        assert "+profile(" not in plain.describe()
        assert PROFILE.describe() in profiled.describe()
