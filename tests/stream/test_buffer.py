"""RingBuffer policies, accounting, and exact state round-trips."""

import numpy as np
import pytest

from repro.exceptions import BufferOverflowError, ConfigurationError
from repro.stream.buffer import BackpressurePolicy, RingBuffer


def frames(*values):
    return np.asarray(values, dtype=np.uint16)


class TestPolicyParsing:
    def test_parse_cli_spellings(self):
        assert BackpressurePolicy.parse("block") is BackpressurePolicy.BLOCK
        assert (
            BackpressurePolicy.parse("drop-oldest")
            is BackpressurePolicy.DROP_OLDEST
        )
        assert BackpressurePolicy.parse("error") is BackpressurePolicy.ERROR

    def test_parse_passthrough_and_unknown(self):
        assert (
            BackpressurePolicy.parse(BackpressurePolicy.BLOCK)
            is BackpressurePolicy.BLOCK
        )
        with pytest.raises(ConfigurationError):
            BackpressurePolicy.parse("drop_newest")


class TestBlockPolicy:
    def test_partial_accept_reports_count(self):
        buf = RingBuffer(4, "block")
        assert buf.push(frames(1, 2, 3)) == 3
        assert buf.push(frames(4, 5, 6)) == 1  # only one slot left
        stats = buf.stats
        assert stats.n_refused == 2
        assert stats.depth == 4
        np.testing.assert_array_equal(buf.pop(), frames(1, 2, 3, 4))

    def test_fifo_across_wraparound(self):
        buf = RingBuffer(3, "block")
        buf.push(frames(1, 2, 3))
        np.testing.assert_array_equal(buf.pop(2), frames(1, 2))
        buf.push(frames(4, 5))  # wraps around the ring edge
        np.testing.assert_array_equal(buf.pop(), frames(3, 4, 5))


class TestDropOldestPolicy:
    def test_evicts_oldest_and_counts(self):
        buf = RingBuffer(3, "drop-oldest")
        assert buf.push(frames(1, 2, 3)) == 3
        assert buf.push(frames(4, 5)) == 5 - 3  # returns frames accepted
        np.testing.assert_array_equal(buf.pop(), frames(3, 4, 5))
        assert buf.stats.n_dropped == 2

    def test_oversized_chunk_keeps_freshest(self):
        buf = RingBuffer(3, "drop-oldest")
        buf.push(frames(1))
        buf.push(frames(2, 3, 4, 5, 6))
        np.testing.assert_array_equal(buf.pop(), frames(4, 5, 6))
        assert buf.stats.n_dropped == 1 + 2  # buffered one + chunk's own head


class TestErrorPolicy:
    def test_overflow_raises_without_accepting(self):
        buf = RingBuffer(2, "error")
        buf.push(frames(1))
        with pytest.raises(BufferOverflowError):
            buf.push(frames(2, 3))
        assert len(buf) == 1  # nothing was accepted

    def test_fitting_push_is_accepted(self):
        buf = RingBuffer(2, "error")
        assert buf.push(frames(1, 2)) == 2
        np.testing.assert_array_equal(buf.pop(), frames(1, 2))


class TestAccountingAndState:
    def test_high_water_tracks_peak_occupancy(self):
        buf = RingBuffer(5, "block")
        buf.push(frames(1, 2, 3, 4))
        buf.pop(3)
        buf.push(frames(5))
        assert buf.stats.high_water == 4

    def test_peek_does_not_consume(self):
        buf = RingBuffer(3, "block")
        buf.push(frames(7, 8))
        np.testing.assert_array_equal(buf.peek(), frames(7, 8))
        assert len(buf) == 2
        assert buf.stats.n_popped == 0

    def test_shape_mismatch_rejected(self):
        buf = RingBuffer(4, "block")
        buf.push(np.zeros((2, 3), dtype=np.uint16))
        with pytest.raises(ConfigurationError):
            buf.push(np.zeros((1, 5), dtype=np.uint16))

    def test_state_round_trip_is_exact(self):
        buf = RingBuffer(4, "drop-oldest")
        buf.push(frames(1, 2, 3, 4))
        buf.pop(2)
        buf.push(frames(5, 6, 7))  # forces a drop and a wrap
        state = buf.state_dict()

        clone = RingBuffer(4, "drop-oldest")
        clone.load_state(state)
        assert clone.stats == buf.stats
        np.testing.assert_array_equal(clone.pop(), buf.pop())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RingBuffer(0)
