"""Kill/resume: an interrupted stream resumes to a bit-identical result."""

import json

import numpy as np
import pytest

from repro.faults import UncorrelatedFaultModel
from repro.stream import (
    InjectStage,
    StreamCheckpoint,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    WindowedStage,
    decode_array,
    encode_array,
    run_batch,
)
from repro.baselines.median import median_smooth_temporal
from functools import partial

N_FRAMES = 170


def make_source():
    return SyntheticWalkSource(shape=(12,), seed=42, n_frames=N_FRAMES)


def make_stages():
    return [
        InjectStage(UncorrelatedFaultModel(0.01), seed=21),
        VoterStage(stack_frames=24),
        WindowedStage(partial(median_smooth_temporal, window=5), 5, "median5"),
    ]


class TestArrayCodec:
    def test_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(0)
        for array in (
            rng.integers(0, 2**16, size=(7, 3), dtype=np.uint16),
            rng.normal(size=(4, 5)),  # float64 walk state
            np.empty((0, 9), dtype=np.uint16),
        ):
            back = decode_array(encode_array(array))
            assert back.dtype == array.dtype and back.shape == array.shape
            assert back.tobytes() == array.tobytes()

    def test_payload_is_json_serializable(self):
        payload = encode_array(np.arange(6, dtype=np.uint16))
        decoded = decode_array(json.loads(json.dumps(payload)))
        np.testing.assert_array_equal(decoded, np.arange(6, dtype=np.uint16))


class TestStreamCheckpoint:
    def test_latest_picks_newest_matching_record(self, tmp_path):
        ck = StreamCheckpoint(tmp_path / "s.jsonl")
        ck.record("fp-a", 1, 10, {"x": 1})
        ck.record("fp-b", 5, 50, {"x": 2})
        ck.record("fp-a", 2, 20, {"x": 3})
        best = ck.latest("fp-a")
        assert best["chunk"] == 2 and best["state"] == {"x": 3}
        assert ck.latest("fp-missing") is None

    def test_partial_trailing_line_is_skipped(self, tmp_path):
        ck = StreamCheckpoint(tmp_path / "s.jsonl")
        ck.record("fp", 1, 10, {"x": 1})
        with ck.path.open("a") as fh:
            fh.write('{"fingerprint": "fp", "chunk": 2, "frames_don')  # killed
        best = ck.latest("fp")
        assert best["chunk"] == 1

    def test_clear_removes_the_file(self, tmp_path):
        ck = StreamCheckpoint(tmp_path / "s.jsonl")
        ck.record("fp", 1, 10, {})
        ck.clear()
        assert ck.latest("fp") is None
        ck.clear()  # idempotent


class TestKillResume:
    def test_resumed_psi_is_bit_identical_to_uninterrupted(self, tmp_path):
        uninterrupted = run_batch(make_source(), make_stages())

        ck = StreamCheckpoint(tmp_path / "stream.jsonl")
        first = StreamPipeline(
            make_source(), make_stages(), chunk_frames=16, checkpoint=ck
        ).run(limit_chunks=3)
        assert not first.completed
        assert first.n_frames_in == 48

        resumed = StreamPipeline(
            make_source(), make_stages(), chunk_frames=16, checkpoint=ck
        ).run()
        assert resumed.completed
        assert resumed.n_frames_in == N_FRAMES
        assert resumed.psi_algorithm == uninterrupted.psi_algorithm
        assert (
            resumed.psi_no_preprocessing == uninterrupted.psi_no_preprocessing
        )

    def test_resume_with_different_chunk_size_is_still_exact(self, tmp_path):
        uninterrupted = run_batch(make_source(), make_stages())
        ck = StreamCheckpoint(tmp_path / "stream.jsonl")
        StreamPipeline(
            make_source(), make_stages(), chunk_frames=7, checkpoint=ck
        ).run(limit_chunks=5)
        resumed = StreamPipeline(
            make_source(), make_stages(), chunk_frames=33, checkpoint=ck
        ).run()
        assert resumed.completed
        assert resumed.psi_algorithm == uninterrupted.psi_algorithm

    def test_repeated_kills_converge_to_the_same_bits(self, tmp_path):
        uninterrupted = run_batch(make_source(), make_stages())
        ck = StreamCheckpoint(tmp_path / "stream.jsonl")
        result = None
        for _ in range(30):  # keep killing after 2 chunks until done
            result = StreamPipeline(
                make_source(), make_stages(), chunk_frames=16, checkpoint=ck
            ).run(limit_chunks=2)
            if result.completed:
                break
        assert result is not None and result.completed
        assert result.psi_algorithm == uninterrupted.psi_algorithm

    def test_changed_configuration_invalidates_checkpoint(self, tmp_path):
        ck = StreamCheckpoint(tmp_path / "stream.jsonl")
        StreamPipeline(
            make_source(), make_stages(), chunk_frames=16, checkpoint=ck
        ).run(limit_chunks=3)
        # A different injection seed changes the fingerprint: the stale
        # record is ignored and the run starts from frame zero.
        other_stages = [
            InjectStage(UncorrelatedFaultModel(0.01), seed=99),
            VoterStage(stack_frames=24),
            WindowedStage(partial(median_smooth_temporal, window=5), 5, "median5"),
        ]
        fresh = StreamPipeline(
            make_source(), other_stages, chunk_frames=16, checkpoint=ck
        ).run(limit_chunks=1)
        assert fresh.n_frames_in == 16  # not resumed from frame 48

    def test_resume_without_checkpoint_store_restarts(self):
        partial_run = StreamPipeline(
            make_source(), make_stages(), chunk_frames=16
        ).run(limit_chunks=3)
        assert not partial_run.completed
        full = StreamPipeline(make_source(), make_stages(), chunk_frames=16).run()
        assert full.completed and full.n_frames_in == N_FRAMES
