"""The ``repro stream`` subcommand, including mid-campaign kill/resume."""

import json

import numpy as np
import pytest

from repro.cli import main as repro_main
from repro.stream.cli import (
    EXIT_FINGERPRINT_MISMATCH,
    EXIT_INCOMPLETE,
    main as stream_main,
)


def run_json(tmp_path, args, name="out.json"):
    out = tmp_path / name
    rc = stream_main(args + ["--json", str(out)])
    return rc, json.loads(out.read_text())


class TestBasicRuns:
    def test_delegated_through_repro_main(self, capsys):
        rc = repro_main(["stream", "--frames", "64", "--chunk-frames", "32"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "frames in/out      64/64" in captured.out
        assert "psi algorithm" in captured.out

    def test_json_output_schema(self, tmp_path):
        rc, data = run_json(
            tmp_path, ["--frames", "96", "--chunk-frames", "32", "--shape", "8"]
        )
        assert rc == 0
        assert data["n_frames_in"] == data["n_frames_out"] == 96
        assert data["completed"] is True
        assert data["psi_no_preprocessing"] > data["psi_algorithm"] > 0
        assert data["improvement"] > 1
        assert [s["name"] for s in data["stages"]] == [
            "inject[UncorrelatedFaultModel]",
            "algo_ngst[N=64]",
        ]

    def test_smoother_and_no_inject(self, tmp_path):
        rc, data = run_json(
            tmp_path,
            [
                "--frames", "80", "--shape", "4", "--no-inject",
                "--stack-frames", "0", "--smoother", "median", "--window", "3",
            ],
        )
        assert rc == 0
        assert data["psi_no_preprocessing"] is None
        assert data["psi_algorithm"] >= 0
        assert [s["name"] for s in data["stages"]] == ["median3"]

    def test_replay_an_npy_file(self, tmp_path):
        frames = np.arange(600, dtype=np.uint16).reshape(100, 6)
        path = tmp_path / "frames.npy"
        np.save(path, frames)
        rc, data = run_json(
            tmp_path,
            ["--input", str(path), "--stack-frames", "16", "--gamma", "0.005"],
        )
        assert rc == 0 and data["n_frames_in"] == 100

    def test_progress_goes_to_stderr(self, capsys):
        rc = stream_main(
            ["--frames", "64", "--chunk-frames", "16", "--progress",
             "--progress-every", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "[stream] start:" in captured.err
        assert "[stream] done:" in captured.err


class TestKillResumeViaCli:
    def test_interrupted_run_resumes_to_identical_psi(self, tmp_path):
        base = [
            "--frames", "200", "--shape", "8", "--chunk-frames", "16",
            "--stack-frames", "24", "--seed", "3", "--inject-seed", "5",
        ]
        rc, uninterrupted = run_json(tmp_path, list(base), name="full.json")
        assert rc == 0

        ckdir = str(tmp_path / "ck")
        resume = base + ["--resume", "--checkpoint-dir", ckdir]
        rc, killed = run_json(
            tmp_path, resume + ["--limit-chunks", "4"], name="killed.json"
        )
        assert rc == EXIT_INCOMPLETE
        assert killed["completed"] is False and killed["n_frames_in"] == 64

        rc, resumed = run_json(tmp_path, list(resume), name="resumed.json")
        assert rc == 0
        assert resumed["completed"] is True
        assert resumed["n_frames_in"] == 200
        assert resumed["psi_algorithm"] == uninterrupted["psi_algorithm"]
        assert (
            resumed["psi_no_preprocessing"]
            == uninterrupted["psi_no_preprocessing"]
        )

    def test_resume_with_different_chunk_size(self, tmp_path):
        base = [
            "--frames", "120", "--shape", "4", "--stack-frames", "16",
            "--seed", "8", "--inject-seed", "9",
        ]
        rc, uninterrupted = run_json(tmp_path, list(base), name="full.json")
        ckdir = str(tmp_path / "ck")
        rc, _ = run_json(
            tmp_path,
            base + ["--resume", "--checkpoint-dir", ckdir, "--chunk-frames",
                    "8", "--limit-chunks", "3"],
            name="killed.json",
        )
        assert rc == EXIT_INCOMPLETE
        rc, resumed = run_json(
            tmp_path,
            base + ["--resume", "--checkpoint-dir", ckdir, "--chunk-frames", "40"],
            name="resumed.json",
        )
        assert rc == 0
        assert resumed["psi_algorithm"] == uninterrupted["psi_algorithm"]


class TestErrorPaths:
    def test_unknown_experiment_is_one_line(self, capsys):
        rc = repro_main(["definitely-not-an-experiment"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "unknown experiment" in captured.err
        assert "Traceback" not in captured.err

    def test_unwritable_checkpoint_dir_main_cli(self, capsys):
        rc = repro_main(
            ["fig2", "--quick", "--resume", "--checkpoint-dir", "/proc/nope"]
        )
        assert rc == 2
        captured = capsys.readouterr()
        assert "not writable" in captured.err
        assert "Traceback" not in captured.err

    def test_unwritable_checkpoint_dir_stream_cli(self, capsys):
        rc = stream_main(
            ["--frames", "10", "--resume", "--checkpoint-dir", "/proc/nope"]
        )
        assert rc == 2
        captured = capsys.readouterr()
        assert "not writable" in captured.err

    def test_missing_input_file_is_one_line(self, capsys, tmp_path):
        rc = stream_main(["--input", str(tmp_path / "absent.npy")])
        assert rc == 2
        assert "stream failed:" in capsys.readouterr().err

    def test_bad_flag_values(self, capsys):
        assert stream_main(["--frames", "0"]) == 2
        assert stream_main(["--frames", "10", "--limit-chunks", "0"]) == 2
        # configuration errors surface as one-line failures, not tracebacks
        rc = stream_main(["--frames", "10", "--window", "4", "--smoother", "mean"])
        assert rc == 2
        assert "stream failed:" in capsys.readouterr().err

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            stream_main(["--policy", "drop-newest"])


class TestFingerprintMismatchExitCode:
    def test_mismatched_resume_exits_4(self, tmp_path, capsys):
        ckdir = str(tmp_path / "ck")
        base = [
            "--frames", "120", "--shape", "4", "--chunk-frames", "16",
            "--stack-frames", "16", "--resume", "--checkpoint-dir", ckdir,
        ]
        rc, _ = run_json(tmp_path, base + ["--limit-chunks", "3"])
        assert rc == EXIT_INCOMPLETE

        # Same checkpoint, different pipeline (gamma changes the inject
        # stage's fingerprint): refuse loudly instead of starting over.
        rc = stream_main(base + ["--gamma", "0.05"])
        assert rc == EXIT_FINGERPRINT_MISMATCH
        captured = capsys.readouterr()
        assert "stream resume refused" in captured.err
        assert "Traceback" not in captured.err

    def test_matching_resume_still_exits_0(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        base = [
            "--frames", "120", "--shape", "4", "--chunk-frames", "16",
            "--stack-frames", "16", "--resume", "--checkpoint-dir", ckdir,
        ]
        rc, _ = run_json(tmp_path, base + ["--limit-chunks", "3"])
        assert rc == EXIT_INCOMPLETE
        rc, resumed = run_json(tmp_path, list(base), name="resumed.json")
        assert rc == 0 and resumed["completed"] is True

    @pytest.mark.parametrize(
        "changed",
        [
            ["--strategy", "adaptive"],
            ["--strategy", "adaptive", "--coherence-beta", "0"],
            ["--strategy", "selective", "--margin", "1"],
            ["--science-fast"],
            ["--autotune"],
            ["--profile", "step:elevated=0.05"],
        ],
        ids=["adaptive", "beta0", "selective", "science-fast", "autotune",
             "profile"],
    )
    def test_new_strategy_fields_invalidate_the_checkpoint(
        self, tmp_path, capsys, changed
    ):
        # Every strategy/autotuner/profile knob is stream semantics, so
        # flipping any of them mid-campaign must exit 4 — including
        # beta=0, which is byte-identical in OUTPUT but still a
        # different declared configuration.
        ckdir = str(tmp_path / "ck")
        base = [
            "--frames", "120", "--shape", "4", "--chunk-frames", "16",
            "--stack-frames", "16", "--resume", "--checkpoint-dir", ckdir,
        ]
        rc, _ = run_json(tmp_path, base + ["--limit-chunks", "3"])
        assert rc == EXIT_INCOMPLETE

        rc = stream_main(base + changed)
        assert rc == EXIT_FINGERPRINT_MISMATCH
        captured = capsys.readouterr()
        assert "stream resume refused" in captured.err
        assert "Traceback" not in captured.err

    def test_strategy_run_resumes_against_its_own_checkpoint(self, tmp_path):
        # The inverse guarantee: a checkpoint written WITH the strategy
        # flags resumes cleanly under the same flags...
        ckdir = str(tmp_path / "ck")
        base = [
            "--frames", "120", "--shape", "4", "--chunk-frames", "16",
            "--stack-frames", "16", "--strategy", "adaptive",
            "--resume", "--checkpoint-dir", ckdir,
        ]
        rc, _ = run_json(tmp_path, base + ["--limit-chunks", "3"])
        assert rc == EXIT_INCOMPLETE
        rc, resumed = run_json(tmp_path, list(base), name="resumed.json")
        assert rc == 0 and resumed["completed"] is True

    def test_autotune_run_resumes_against_its_own_checkpoint(self, tmp_path):
        # ...and so does the online autotuner, whose checkpoint state
        # additionally carries the tuner window and Λ trajectory.
        flags = [
            "--frames", "200", "--shape", "8", "--chunk-frames", "16",
            "--stack-frames", "24", "--autotune", "--autotune-min-delta",
            "10", "--profile", "step:elevated=0.08,period=100,duty=0.5",
        ]
        base = flags + ["--resume", "--checkpoint-dir", str(tmp_path / "ck")]
        rc, uninterrupted = run_json(tmp_path, list(flags), name="full.json")
        assert rc == 0
        rc, _ = run_json(tmp_path, base + ["--limit-chunks", "4"])
        assert rc == EXIT_INCOMPLETE
        rc, resumed = run_json(tmp_path, list(base), name="resumed.json")
        assert rc == 0 and resumed["completed"] is True
        assert resumed["psi_algorithm"] == uninterrupted["psi_algorithm"]


class TestBoundedUnboundedRuns:
    def test_max_chunks_ends_an_unbounded_stream_cleanly(self, tmp_path):
        rc, data = run_json(
            tmp_path,
            ["--frames", "0", "--shape", "4", "--chunk-frames", "16",
             "--stack-frames", "16", "--max-chunks", "5"],
        )
        assert rc == 0
        assert data["completed"] is True
        assert data["n_frames_in"] == 5 * 16

    def test_max_chunks_prefix_matches_bounded_run(self, tmp_path):
        base = ["--shape", "4", "--chunk-frames", "16", "--stack-frames",
                "16", "--seed", "6"]
        rc, bounded = run_json(
            tmp_path, ["--frames", "80"] + base, name="bounded.json"
        )
        rc2, capped = run_json(
            tmp_path, ["--frames", "0", "--max-chunks", "5"] + base,
            name="capped.json",
        )
        assert rc == rc2 == 0
        assert capped["psi_algorithm"] == bounded["psi_algorithm"]

    def test_max_seconds_ends_cleanly(self, tmp_path):
        rc, data = run_json(
            tmp_path,
            ["--frames", "0", "--shape", "4", "--chunk-frames", "16",
             "--stack-frames", "16", "--max-seconds", "0.2"],
        )
        assert rc == 0
        assert data["completed"] is True
        assert data["n_frames_in"] >= 16  # at least one chunk landed

    def test_unbounded_without_a_bound_is_refused(self, capsys):
        assert stream_main(["--frames", "0"]) == 2
        assert "--max-chunks" in capsys.readouterr().err

    def test_bad_max_chunks_refused(self):
        assert stream_main(["--frames", "0", "--max-chunks", "0"]) == 2
