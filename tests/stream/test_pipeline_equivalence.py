"""The load-bearing contract: streaming ≡ batch, bit for bit.

For any chunk size (including 1 and larger than the dataset), any
backpressure policy, and any seed, the streaming pipeline's output
frames and Ψ values must be byte-for-byte identical to the batch
pipeline run on the same stream.
"""

from functools import partial

import numpy as np
import pytest

from repro.baselines.majority import majority_vote_window
from repro.baselines.median import median_smooth_temporal
from repro.baselines.smoothing import (
    bisquare_smooth,
    inverse_square_smooth,
    mean_smooth,
    negative_exponential_smooth,
)
from repro.config import NGSTConfig
from repro.exceptions import ConfigurationError, DataFormatError
from repro.faults import CorrelatedFaultModel, UncorrelatedFaultModel
from repro.metrics import psi
from repro.stream import (
    ArraySource,
    InjectStage,
    StreamingPsi,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    WindowedStage,
    read_all,
    run_batch,
)

N_FRAMES = 150


def walk(seed, shape=(16,), n=N_FRAMES):
    return SyntheticWalkSource(shape=shape, seed=seed, n_frames=n)


def stages(seed, stack=32, smoother=None, window=5):
    built = [
        InjectStage(UncorrelatedFaultModel(0.01), seed=seed),
        VoterStage(NGSTConfig(), stack_frames=stack),
    ]
    if smoother is not None:
        built.append(WindowedStage(partial(smoother, window=window), window, "sm"))
    return built


def collect_stream(source, stage_list, chunk, policy="block"):
    outs = []
    result = StreamPipeline(
        source, stage_list, chunk_frames=chunk, policy=policy,
        sink=lambda c: outs.append(c),
    ).run()
    return np.concatenate(outs, axis=0), result


class TestStreamEqualsBatch:
    @pytest.mark.parametrize("chunk", [1, 3, 17, 64, N_FRAMES, 4 * N_FRAMES])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bit_identity_across_chunk_sizes_and_seeds(self, chunk, seed):
        ref = run_batch(walk(seed), stages(seed + 1))
        got, result = collect_stream(walk(seed), stages(seed + 1), chunk)
        assert got.tobytes() == ref.output.tobytes()
        assert result.psi_no_preprocessing == ref.psi_no_preprocessing
        assert result.psi_algorithm == ref.psi_algorithm
        assert result.n_frames_out == ref.n_frames == N_FRAMES

    @pytest.mark.parametrize("policy", ["block", "drop-oldest", "error"])
    def test_bit_identity_across_policies(self, policy):
        ref = run_batch(walk(5), stages(6))
        got, result = collect_stream(walk(5), stages(6), 13, policy=policy)
        assert got.tobytes() == ref.output.tobytes()
        assert result.psi_algorithm == ref.psi_algorithm

    @pytest.mark.parametrize(
        "smoother",
        [
            median_smooth_temporal,
            majority_vote_window,
            mean_smooth,
            negative_exponential_smooth,
            inverse_square_smooth,
            bisquare_smooth,
        ],
    )
    @pytest.mark.parametrize("window", [3, 5, 9])
    def test_every_windowed_kernel_streams_bit_identically(self, smoother, window):
        frames = read_all(walk(11, n=83))
        st = [WindowedStage(partial(smoother, window=window), window, "sm")]
        sb = [WindowedStage(partial(smoother, window=window), window, "sm")]
        ref = run_batch(ArraySource(frames), sb)
        got, result = collect_stream(ArraySource(frames), st, chunk=7)
        assert got.tobytes() == ref.output.tobytes()
        assert result.psi_algorithm == ref.psi_algorithm

    def test_full_chain_with_trailing_smoother(self):
        ref = run_batch(
            walk(2), stages(3, smoother=median_smooth_temporal, window=5)
        )
        got, result = collect_stream(
            walk(2), stages(3, smoother=median_smooth_temporal, window=5), 11
        )
        assert got.tobytes() == ref.output.tobytes()
        assert result.psi_algorithm == ref.psi_algorithm

    def test_correlated_fault_model_streams_identically(self):
        def make_stages(seed):
            return [
                InjectStage(CorrelatedFaultModel(), seed=seed),
                VoterStage(stack_frames=32),
            ]

        ref = run_batch(walk(4), make_stages(9))
        got, result = collect_stream(walk(4), make_stages(9), 19)
        assert got.tobytes() == ref.output.tobytes()
        assert result.psi_no_preprocessing == ref.psi_no_preprocessing

    def test_voter_remainder_rules_match_batch(self):
        # 150 = 4*32 + 22: remainder > upsilon/2, voted as a short stack.
        ref = run_batch(walk(8), stages(9, stack=32))
        got, _ = collect_stream(walk(8), stages(9, stack=32), 32)
        assert got.tobytes() == ref.output.tobytes()
        # 150 = 21*7 + 3... pick stack so remainder <= upsilon/2 (passthrough).
        ref2 = run_batch(walk(8), stages(9, stack=74))  # remainder 2 <= 2
        got2, _ = collect_stream(walk(8), stages(9, stack=74), 10)
        assert got2.tobytes() == ref2.output.tobytes()


class TestStreamingPsi:
    def test_tracks_metrics_psi_closely(self):
        rng = np.random.default_rng(1)
        pristine = rng.integers(1, 2**16, size=(40, 32), dtype=np.uint16)
        observed = pristine ^ rng.integers(
            0, 2**12, size=pristine.shape, dtype=np.uint16
        )
        acc = StreamingPsi()
        for start in range(0, 40, 7):  # arbitrary chunking
            acc.update(observed[start : start + 7], pristine[start : start + 7])
        batch = psi(observed, pristine)
        assert acc.value == pytest.approx(batch, rel=1e-12)
        assert acc.n_frames == 40

    def test_chunking_never_changes_the_bits(self):
        rng = np.random.default_rng(2)
        pristine = rng.integers(1, 2**16, size=(30, 8), dtype=np.uint16)
        observed = pristine ^ rng.integers(0, 64, size=pristine.shape, dtype=np.uint16)
        values = []
        for step in (1, 3, 10, 30):
            acc = StreamingPsi()
            for start in range(0, 30, step):
                acc.update(
                    observed[start : start + step], pristine[start : start + step]
                )
            values.append(acc.value)
        assert len(set(values)) == 1

    def test_zero_reference_uses_floor_and_cap(self):
        acc = StreamingPsi()
        acc.update(np.array([[1.0]]), np.array([[0.0]]))
        assert acc.value == acc.cap  # 1/max(0, floor) clamps to the cap

    def test_state_round_trip_is_exact(self):
        rng = np.random.default_rng(3)
        pristine = rng.integers(1, 2**16, size=(20, 4), dtype=np.uint16)
        observed = pristine ^ rng.integers(0, 32, size=pristine.shape, dtype=np.uint16)
        acc = StreamingPsi()
        acc.update(observed[:11], pristine[:11])
        clone = StreamingPsi()
        clone.load_state(acc.state_dict())
        acc.update(observed[11:], pristine[11:])
        clone.update(observed[11:], pristine[11:])
        assert clone.value == acc.value
        assert clone.frame_variance == acc.frame_variance

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataFormatError):
            StreamingPsi().update(np.zeros((2, 3)), np.zeros((2, 4)))


class TestBoundedMemory:
    def test_stage_carry_never_exceeds_declared_lag(self):
        _, result = collect_stream(
            walk(3), stages(4, smoother=mean_smooth, window=9), 8
        )
        for stage_stats, stage in zip(
            result.stages, stages(4, smoother=mean_smooth, window=9)
        ):
            assert stage_stats.max_buffered <= stage.lag

    def test_inlet_high_water_bounded_by_chunk(self):
        for chunk in (1, 16, 300):
            _, result = collect_stream(walk(6), stages(7), chunk)
            assert result.high_water <= chunk

    def test_alignment_buffer_bound_is_enforced_not_claimed(self):
        # The pristine-alignment buffer uses the `error` policy sized to
        # chunk + sum-of-lags; a broken lag bound would raise instead of
        # silently growing.  A full run through every stage type proves
        # the bound holds.
        got, result = collect_stream(
            walk(10), stages(11, smoother=median_smooth_temporal, window=7), 5
        )
        assert result.completed and got.shape[0] == N_FRAMES


class TestValidation:
    def test_two_corrupting_stages_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamPipeline(
                walk(0),
                [
                    InjectStage(UncorrelatedFaultModel(0.01), seed=1),
                    InjectStage(UncorrelatedFaultModel(0.01), seed=2),
                ],
            )

    def test_chunk_frames_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamPipeline(walk(0), [], chunk_frames=0)

    def test_limit_chunks_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            StreamPipeline(walk(0), []).run(limit_chunks=0)

    def test_windowed_stage_window_validation(self):
        with pytest.raises(ConfigurationError):
            WindowedStage(median_smooth_temporal, 4, "even")
        with pytest.raises(ConfigurationError):
            WindowedStage(median_smooth_temporal, 1, "short")

    def test_voter_stack_must_exceed_half_upsilon(self):
        with pytest.raises(ConfigurationError):
            VoterStage(NGSTConfig(upsilon=4), stack_frames=2)

    def test_stream_shorter_than_window_fails_like_batch(self):
        frames = read_all(walk(1, n=3))
        st = [WindowedStage(partial(mean_smooth, window=9), 9, "mean9")]
        with pytest.raises(DataFormatError):
            StreamPipeline(ArraySource(frames), st, chunk_frames=2).run()
        with pytest.raises(DataFormatError):
            run_batch(ArraySource(frames), st)

    def test_improvement_property(self):
        _, result = collect_stream(walk(12), stages(13), 25)
        assert result.improvement == pytest.approx(
            result.psi_no_preprocessing / result.psi_algorithm
        )
