"""The serve-layer sources: push-mode ingest and clean run bounds."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataFormatError
from repro.stream import (
    ArraySource,
    LimitedSource,
    PushFrameSource,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    read_all,
    run_batch,
)
from repro.config import NGSTConfig


def _frames(n, shape=(3,), dtype=np.uint16, start=0):
    count = n * int(np.prod(shape))
    return (
        np.arange(start, start + count, dtype=dtype).reshape((n,) + shape)
    )


class TestPushFrameSource:
    def test_push_then_read_round_trips(self):
        source = PushFrameSource((3,), np.uint16, capacity=64)
        frames = _frames(10)
        assert source.push(frames) == 10
        assert source.received == 10
        assert source.buffered == 10
        got = source.read(10)
        np.testing.assert_array_equal(got, frames)
        assert source.delivered == 10
        assert source.buffered == 0

    def test_empty_read_means_nothing_now_not_end(self):
        source = PushFrameSource((3,), np.uint16, capacity=8)
        assert source.read(4).shape[0] == 0
        source.push(_frames(2))
        assert source.read(4).shape[0] == 2

    def test_block_policy_refuses_overflow(self):
        source = PushFrameSource((3,), np.uint16, capacity=4, policy="block")
        accepted = source.push(_frames(6))
        assert accepted == 4
        assert source.received == 4
        assert source.free == 0

    def test_drop_oldest_counts_every_offered_frame(self):
        source = PushFrameSource(
            (3,), np.uint16, capacity=4, policy="drop-oldest"
        )
        assert source.push(_frames(6)) == 6
        assert source.received == 6
        assert source.buffered == 4  # freshest four survive
        np.testing.assert_array_equal(source.read(4), _frames(6)[2:])

    def test_format_mismatch_raises(self):
        source = PushFrameSource((3,), np.uint16)
        with pytest.raises(DataFormatError):
            source.push(_frames(2, shape=(4,)))
        with pytest.raises(DataFormatError):
            source.push(_frames(2).astype(np.float32))

    def test_state_round_trip_preserves_buffered_frames(self):
        source = PushFrameSource((3,), np.uint16, capacity=16, label="t/s")
        source.push(_frames(6))
        source.read(2)
        state = source.state_dict()

        clone = PushFrameSource((3,), np.uint16, capacity=16, label="t/s")
        clone.load_state(state)
        assert clone.received == 6
        assert clone.delivered == 2
        np.testing.assert_array_equal(clone.read(10), _frames(6)[2:])

    def test_describe_carries_the_label_and_format(self):
        source = PushFrameSource((3,), np.uint16, label="serve:a/b")
        assert source.describe() == "serve:a/b(shape=(3,), dtype=<u2)"

    def test_pump_driven_pipeline_matches_batch(self):
        frames = read_all(SyntheticWalkSource((4,), seed=9, n_frames=80))
        stages = [VoterStage(NGSTConfig(upsilon=4), stack_frames=8)]
        oracle = run_batch(ArraySource(frames), stages)

        source = PushFrameSource((4,), np.uint16, capacity=64)
        outputs = []
        pipeline = StreamPipeline(
            source,
            [VoterStage(NGSTConfig(upsilon=4), stack_frames=8)],
            chunk_frames=16,
            sink=outputs.append,
        )
        pipeline.resume()
        pipeline.announce()
        for i in range(0, 80, 7):
            source.push(frames[i : i + 7])
            pipeline.pump()
        pipeline.pump()
        result = pipeline.finalize()
        got = np.concatenate(outputs, axis=0)
        assert got.tobytes() == oracle.output.tobytes()
        assert result.psi_algorithm == oracle.psi_algorithm


class TestLimitedSource:
    def test_frame_bound_ends_cleanly(self):
        inner = SyntheticWalkSource((2,), seed=1)  # unbounded
        limited = LimitedSource(inner, max_frames=50)
        frames = read_all(limited)
        assert frames.shape[0] == 50
        assert limited.read(10).shape[0] == 0  # stays exhausted

    def test_frame_bound_matches_inner_prefix(self):
        whole = read_all(SyntheticWalkSource((2,), seed=4, n_frames=64))
        limited = LimitedSource(
            SyntheticWalkSource((2,), seed=4), max_frames=40
        )
        np.testing.assert_array_equal(read_all(limited), whole[:40])

    def test_time_bound_with_injected_clock(self):
        ticks = iter([0.0, 0.1, 0.2, 5.0, 5.1])
        limited = LimitedSource(
            SyntheticWalkSource((2,), seed=2),
            max_seconds=1.0,
            clock=lambda: next(ticks),
        )
        assert limited.read(8).shape[0] == 8  # clock 0.1: within budget
        assert limited.read(8).shape[0] == 8  # clock 0.2
        assert limited.read(8).shape[0] == 0  # clock 5.0: budget spent

    def test_describe_names_the_frame_bound_only(self):
        limited = LimitedSource(
            SyntheticWalkSource((2,), seed=0), max_frames=10, max_seconds=9.0
        )
        assert "max_frames=10" in limited.describe()
        assert "9.0" not in limited.describe()

    def test_state_round_trip(self):
        source = LimitedSource(
            SyntheticWalkSource((2,), seed=3), max_frames=20
        )
        first = source.read(12)
        clone = LimitedSource(
            SyntheticWalkSource((2,), seed=3), max_frames=20
        )
        clone.load_state(source.state_dict())
        rest = clone.read(20)
        assert rest.shape[0] == 8
        whole = read_all(
            LimitedSource(SyntheticWalkSource((2,), seed=3), max_frames=20)
        )
        np.testing.assert_array_equal(
            np.concatenate([first, rest]), whole
        )

    @pytest.mark.parametrize(
        "kwargs",
        [{}, {"max_frames": 0}, {"max_seconds": 0.0}, {"max_seconds": -1.0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            LimitedSource(SyntheticWalkSource((2,), seed=0), **kwargs)
