"""Frame sources: chunk invariance, exact resume, file replay, downlink."""

import numpy as np
import pytest

from repro.config import NGSTDatasetConfig
from repro.data import generate_walk
from repro.exceptions import ConfigurationError, DataFormatError
from repro.stream.source import (
    ArraySource,
    DownlinkSource,
    SyntheticWalkSource,
    frame_rng,
    read_all,
)


class TestFrameRng:
    def test_matches_spawn_tree_children(self):
        root = np.random.SeedSequence(1234)
        children = root.spawn(3)
        for i, child in enumerate(children):
            direct = frame_rng(1234, i).integers(0, 2**32, 8)
            spawned = np.random.default_rng(child).integers(0, 2**32, 8)
            np.testing.assert_array_equal(direct, spawned)


class TestSyntheticWalkSource:
    def test_chunk_invariance(self):
        whole = read_all(SyntheticWalkSource(shape=(6,), seed=3, n_frames=97))
        src = SyntheticWalkSource(shape=(6,), seed=3, n_frames=97)
        pieces = []
        for k in (1, 2, 3, 50, 100, 100):
            chunk = src.read(k)
            if chunk.shape[0]:
                pieces.append(chunk)
        np.testing.assert_array_equal(whole, np.concatenate(pieces, axis=0))

    def test_statistics_match_batch_generator(self):
        # Same Eq. (1) recursion as generate_walk: clipped uint16 frames
        # around the configured initial value.
        config = NGSTDatasetConfig()
        frames = read_all(
            SyntheticWalkSource(shape=(), config=config, seed=0, n_frames=200)
        )
        assert frames.dtype == np.uint16
        assert int(frames[0]) == config.initial_value
        batch = generate_walk(config, np.random.default_rng(0), shape=())
        assert abs(float(frames.mean()) - float(np.mean(batch))) < 20 * config.sigma

    def test_state_round_trip_resumes_exactly(self):
        src = SyntheticWalkSource(shape=(4,), seed=9, n_frames=60)
        head = src.read(25)
        state = src.state_dict()
        rest = src.read(60)

        clone = SyntheticWalkSource(shape=(4,), seed=9, n_frames=60)
        clone.load_state(state)
        np.testing.assert_array_equal(clone.read(60), rest)
        assert head.shape[0] == 25

    def test_exhaustion_and_validation(self):
        src = SyntheticWalkSource(n_frames=3)
        assert src.read(10).shape[0] == 3
        assert src.read(10).shape[0] == 0
        with pytest.raises(ConfigurationError):
            src.read(0)
        with pytest.raises(ConfigurationError):
            SyntheticWalkSource(n_frames=0)


class TestArraySource:
    def test_replay_in_memory(self):
        data = np.arange(24, dtype=np.uint16).reshape(8, 3)
        src = ArraySource(data)
        np.testing.assert_array_equal(read_all(src), data)

    def test_npy_replay_is_memory_mapped(self, tmp_path):
        data = np.arange(40, dtype=np.uint16).reshape(10, 4)
        path = tmp_path / "frames.npy"
        np.save(path, data)
        src = ArraySource.from_file(path)
        np.testing.assert_array_equal(read_all(src), data)

    def test_npz_replay_by_key(self, tmp_path):
        data = np.arange(12, dtype=np.uint16).reshape(4, 3)
        path = tmp_path / "frames.npz"
        np.savez(path, stack=data)
        src = ArraySource.from_file(path, key="stack")
        np.testing.assert_array_equal(read_all(src), data)
        with pytest.raises(DataFormatError):
            ArraySource.from_file(path, key="missing")

    def test_scalar_input_rejected(self):
        with pytest.raises(DataFormatError):
            ArraySource(np.uint16(7))

    def test_state_round_trip(self):
        data = np.arange(10, dtype=np.uint16)
        src = ArraySource(data)
        src.read(4)
        clone = ArraySource(data)
        clone.load_state(src.state_dict())
        np.testing.assert_array_equal(clone.read(10), data[4:])


class TestDownlinkSource:
    def test_chunk_invariance_through_the_channel(self):
        def make():
            return DownlinkSource(
                SyntheticWalkSource(shape=(16,), seed=2, n_frames=12), seed=5
            )

        whole = read_all(make())
        src = make()
        pieces = [src.read(5) for _ in range(4)]
        got = np.concatenate([p for p in pieces if p.shape[0]], axis=0)
        np.testing.assert_array_equal(whole, got)
        assert src.n_transmissions >= 12  # at least one packet per frame

    def test_state_round_trip_resumes_exactly(self):
        src = DownlinkSource(
            SyntheticWalkSource(shape=(8,), seed=4, n_frames=10), seed=6
        )
        src.read(4)
        state = src.state_dict()
        rest = src.read(10)

        clone = DownlinkSource(
            SyntheticWalkSource(shape=(8,), seed=4, n_frames=10), seed=6
        )
        clone.load_state(state)
        np.testing.assert_array_equal(clone.read(10), rest)
        assert clone.n_transmissions == src.n_transmissions
