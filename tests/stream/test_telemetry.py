"""Stream telemetry events and the stock progress printer."""

import io

from repro.faults import UncorrelatedFaultModel
from repro.runtime.telemetry import RunCompleted, Telemetry
from repro.stream import (
    ChunkCompleted,
    InjectStage,
    StreamCompleted,
    StreamPipeline,
    StreamProgressPrinter,
    StreamStarted,
    SyntheticWalkSource,
    VoterStage,
)


def run_with_telemetry(n_frames=96, chunk=32, **kwargs):
    events = []
    hub = Telemetry()
    hub.subscribe(events.append)
    source = SyntheticWalkSource(shape=(4,), seed=1, n_frames=n_frames)
    stages = [
        InjectStage(UncorrelatedFaultModel(0.01), seed=2),
        VoterStage(stack_frames=24),
    ]
    result = StreamPipeline(
        source, stages, chunk_frames=chunk, telemetry=hub, **kwargs
    ).run()
    return events, result


class TestEventFlow:
    def test_one_start_n_chunks_one_completion(self):
        events, result = run_with_telemetry()
        starts = [e for e in events if isinstance(e, StreamStarted)]
        chunks = [e for e in events if isinstance(e, ChunkCompleted)]
        dones = [e for e in events if isinstance(e, StreamCompleted)]
        assert len(starts) == 1 and len(dones) == 1
        assert len(chunks) == result.n_chunks == 3
        assert starts[0].stages == (
            "inject[UncorrelatedFaultModel]",
            "algo_ngst[N=24]",
        )
        assert dones[0].n_frames_in == 96
        assert [c.chunk_index for c in chunks] == [1, 2, 3]

    def test_chunk_events_carry_queue_accounting(self):
        events, _ = run_with_telemetry()
        for event in events:
            if isinstance(event, ChunkCompleted):
                assert event.queue_depth == 0  # inlet drained every cycle
                assert 0 < event.high_water <= 32

    def test_completion_carries_stage_stats(self):
        events, _ = run_with_telemetry()
        done = next(e for e in events if isinstance(e, StreamCompleted))
        assert [s.name for s in done.stages] == [
            "inject[UncorrelatedFaultModel]",
            "algo_ngst[N=24]",
        ]
        assert all(s.frames_in == 96 for s in done.stages)


class TestProgressPrinter:
    def test_prints_stream_events(self):
        sink = io.StringIO()
        printer = StreamProgressPrinter(stream=sink)
        events, _ = run_with_telemetry()
        for event in events:
            printer(event)
        text = sink.getvalue()
        assert "[stream] start:" in text
        assert "[stream] chunk 1:" in text
        assert "[stream] done: 96 frame(s) in 3 chunk(s)" in text

    def test_every_thins_chunk_lines_only(self):
        sink = io.StringIO()
        printer = StreamProgressPrinter(stream=sink, every=2)
        events, _ = run_with_telemetry()
        for event in events:
            printer(event)
        text = sink.getvalue()
        assert "chunk 1:" not in text
        assert "chunk 2:" in text
        assert "chunk 3:" not in text
        assert "[stream] start:" in text and "[stream] done:" in text

    def test_runtime_events_delegate_to_progress_printer(self):
        line = StreamProgressPrinter.format(
            RunCompleted(
                key="k",
                n_trials=10,
                n_shards_run=2,
                n_shards_restored=0,
                elapsed_s=1.0,
                trials_per_sec=10.0,
            )
        )
        assert line  # rendered by the runtime ProgressPrinter

    def test_foreign_events_are_silent(self):
        assert StreamProgressPrinter.format(object()) == ""
