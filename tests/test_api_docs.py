"""The committed API index must match the code."""

import sys
from pathlib import Path

TOOLS = Path(__file__).parent.parent / "tools"
sys.path.insert(0, str(TOOLS))


def test_api_docs_current():
    import gen_api_docs

    committed = gen_api_docs.OUTPUT.read_text()
    assert committed == gen_api_docs.generate(), (
        "docs/API.md is stale; run `python tools/gen_api_docs.py`"
    )


def test_every_public_name_documented():
    import gen_api_docs

    content = gen_api_docs.generate()
    # Spot-check that key entry points appear with non-empty summaries.
    for name in ("AlgoNGST", "AlgoOTIS", "FaultInjector", "rice_encode"):
        assert f"`{name}`" in content
    # No empty summary cells for repro's own classes/functions.
    import repro

    for name in repro.__all__:
        if name.startswith("__"):
            continue
        obj = getattr(repro, name)
        if callable(obj):
            assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"
