"""Schema smoke test for ``tools/bench_report.py``.

Runs the report in quick mode (small problem sizes, sub-minute) and
validates the structure CI and downstream tooling rely on; the timing
values themselves are machine-dependent and deliberately unasserted.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

bench_report = pytest.importorskip("bench_report")


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    bench_dir = tmp_path_factory.mktemp("bench")
    out = bench_dir / "report.json"
    stream_out = bench_dir / "stream.json"
    cache_out = bench_dir / "cache.json"
    native_out = bench_dir / "native.json"
    dag_out = bench_dir / "dag.json"
    cluster_out = bench_dir / "cluster.json"
    strategies_out = bench_dir / "strategies.json"
    assert (
        bench_report.main(
            [
                "--quick",
                "--warmup",
                "1",
                "--out",
                str(out),
                "--stream-out",
                str(stream_out),
                "--cache-out",
                str(cache_out),
                "--native-out",
                str(native_out),
                "--dag-out",
                str(dag_out),
                "--cluster-out",
                str(cluster_out),
                "--strategies-out",
                str(strategies_out),
            ]
        )
        == 0
    )
    return (
        json.loads(out.read_text()),
        json.loads(stream_out.read_text()),
        json.loads(cache_out.read_text()),
        json.loads(native_out.read_text()),
        json.loads(dag_out.read_text()),
        json.loads(cluster_out.read_text()),
        json.loads(strategies_out.read_text()),
    )


@pytest.fixture(scope="module")
def report(reports):
    return reports[0]


@pytest.fixture(scope="module")
def stream_report(reports):
    return reports[1]


@pytest.fixture(scope="module")
def cache_report(reports):
    return reports[2]


@pytest.fixture(scope="module")
def native_report(reports):
    return reports[3]


@pytest.fixture(scope="module")
def dag_report(reports):
    return reports[4]


@pytest.fixture(scope="module")
def cluster_report(reports):
    return reports[5]


@pytest.fixture(scope="module")
def strategies_report(reports):
    return reports[6]


def test_report_top_level_schema(report):
    assert report["schema_version"] == bench_report.SCHEMA_VERSION
    assert report["quick"] is True
    assert "bench_report.py" in report["generated_by"]
    assert isinstance(report["kernels"], list) and report["kernels"]
    assert isinstance(report["campaign"], dict)


def test_report_kernel_entries(report):
    for entry in report["kernels"]:
        assert set(bench_report.KERNEL_KEYS) <= set(entry), entry
        assert entry["before_ms"] > 0
        assert entry["after_ms"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["before_ms"] / entry["after_ms"], rel=1e-2
        )
        assert isinstance(entry["config"], dict)


def test_report_covers_the_headline_kernels(report):
    names = {entry["name"] for entry in report["kernels"]}
    assert {
        "correlated_flip_grid",
        "voter_grt",
        "to_bit_planes",
        "from_bit_planes",
        "median_smooth_temporal",
        "majority_vote_window",
        "cross_frame_preprocess",
        "mosaic",
    } <= names


def test_report_campaign_entry(report):
    campaign = report["campaign"]
    assert campaign["n_trials"] >= 1
    assert campaign["elapsed_s"] > 0
    assert campaign["trials_per_s"] > 0


def test_committed_report_is_schema_valid():
    """The checked-in BENCH_PR2.json must parse under the same schema."""
    path = REPO_ROOT / "BENCH_PR2.json"
    committed = json.loads(path.read_text())
    assert committed["schema_version"] == bench_report.SCHEMA_VERSION
    for entry in committed["kernels"]:
        assert set(bench_report.KERNEL_KEYS) <= set(entry)


def test_stream_report_top_level_schema(stream_report):
    assert stream_report["schema_version"] == bench_report.STREAM_SCHEMA_VERSION
    assert stream_report["quick"] is True
    assert isinstance(stream_report["throughput"], list)
    assert stream_report["throughput"]
    assert isinstance(stream_report["memory"], dict)


def test_stream_throughput_entries(stream_report):
    for entry in stream_report["throughput"]:
        assert set(bench_report.STREAM_KEYS) <= set(entry), entry
        assert entry["chunk_frames"] >= 1
        assert entry["frames_per_sec"] > 0
        assert entry["elapsed_s"] > 0


def test_stream_psi_is_chunk_invariant(stream_report):
    """The bit-identity contract, witnessed in the benchmark itself."""
    psis = {entry["psi_algorithm"] for entry in stream_report["throughput"]}
    assert len(psis) == 1


def test_stream_memory_demonstrates_the_bound(stream_report):
    memory = stream_report["memory"]
    small, large = memory["stream"]
    assert large["n_frames"] == 2 * small["n_frames"]
    # Doubling the stream length barely moves the streaming peak...
    assert memory["stream_growth_ratio"] < 1.25
    # ...while the batch pipeline's peak scales with the whole stream.
    assert large["peak_bytes"] < memory["batch"]["peak_bytes"]
    assert memory["total_stage_lag"] >= 0


def test_committed_stream_report_is_schema_valid():
    """The checked-in BENCH_PR3.json must parse under the same schema."""
    committed = json.loads((REPO_ROOT / "BENCH_PR3.json").read_text())
    assert committed["schema_version"] == bench_report.STREAM_SCHEMA_VERSION
    for entry in committed["throughput"]:
        assert set(bench_report.STREAM_KEYS) <= set(entry)
    assert committed["memory"]["stream_growth_ratio"] < 1.25


def test_cache_report_top_level_schema(cache_report):
    assert cache_report["schema_version"] == bench_report.CACHE_SCHEMA_VERSION
    assert cache_report["quick"] is True
    assert set(bench_report.FUSED_KEYS) <= set(cache_report["fused_sweep"])
    assert set(bench_report.POOL_KEYS) <= set(cache_report["pool"])
    assert set(bench_report.IPC_KEYS) <= set(cache_report["ipc"])


def test_cache_report_witnesses_bit_identity(cache_report):
    """The benchmark itself verifies fused == unfused, both backends."""
    assert cache_report["fused_sweep"]["bit_identical"] is True
    assert cache_report["pool"]["bit_identical"] is True


def test_cache_report_cache_counters(cache_report):
    """A warm rerun of the same sweep must actually hit the cache."""
    cache = cache_report["fused_sweep"]["cache"]
    assert cache["hits"] > 0
    assert cache["hit_rate"] > 0
    assert cache["bytes_saved"] > 0


def test_cache_report_ipc_handle_is_smaller(cache_report):
    """The shm handle must beat pickling the arrays itself on bytes."""
    ipc = cache_report["ipc"]
    assert ipc["handle_bytes"] < ipc["pickled_arrays_bytes"]
    assert ipc["payload_bytes"] > 0


def test_committed_cache_report_is_schema_valid():
    """The checked-in BENCH_PR4.json must parse under the same schema
    and show the headline result: >= 3x warm-cache speedup on the
    Λ-sweep with a nonzero hit rate, bit-identical to unfused."""
    committed = json.loads((REPO_ROOT / "BENCH_PR4.json").read_text())
    assert committed["schema_version"] == bench_report.CACHE_SCHEMA_VERSION
    assert set(bench_report.FUSED_KEYS) <= set(committed["fused_sweep"])
    assert set(bench_report.POOL_KEYS) <= set(committed["pool"])
    assert set(bench_report.IPC_KEYS) <= set(committed["ipc"])
    fused = committed["fused_sweep"]
    assert fused["bit_identical"] is True
    assert fused["speedup_warm"] >= 3.0
    assert fused["cache"]["hit_rate"] > 0
    assert fused["cache"]["bytes_saved"] > 0


def test_native_report_top_level_schema(native_report):
    assert native_report["schema_version"] == bench_report.NATIVE_SCHEMA_VERSION
    assert native_report["quick"] is True
    assert isinstance(native_report["native_available"], bool)
    assert isinstance(native_report["kernels"], list) and native_report["kernels"]
    assert isinstance(native_report["headline"], dict)
    assert isinstance(native_report["campaign"], dict)
    assert isinstance(native_report["stream"], dict)
    assert isinstance(native_report["threaded"], dict)


def test_native_kernel_entries(native_report):
    for entry in native_report["kernels"]:
        assert set(bench_report.NATIVE_KERNEL_KEYS) <= set(entry), entry
        assert entry["numpy_ms"] > 0
        assert entry["native_ms"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["numpy_ms"] / entry["native_ms"], rel=1e-2
        )
        assert isinstance(entry["config"], dict)


def test_native_report_covers_dispatched_kernels(native_report):
    names = {entry["name"] for entry in native_report["kernels"]}
    assert {
        "correlated_flip_grid",
        "voter_grt",
        "to_bit_planes",
        "from_bit_planes",
        "majority_vote_window",
        "weighted_window_smooth",
    } <= names


def test_native_headline_summary_is_consistent(native_report):
    headline = native_report["headline"]
    assert set(headline["best_speedup"]) == set(bench_report.HEADLINE_KERNELS)
    assert set(headline["kernels_at_2x"]) <= set(bench_report.HEADLINE_KERNELS)
    for name in headline["kernels_at_2x"]:
        assert headline["best_speedup"][name] >= 2.0
    assert headline["gate_met"] is (len(headline["kernels_at_2x"]) >= 2)


def test_native_e2e_sections_are_bit_identical(native_report):
    """Tier flips must not change results — with or without the
    extension (absent, the native tier falls back to NumPy)."""
    assert native_report["campaign"]["bit_identical"] is True
    assert native_report["stream"]["bit_identical"] is True


def test_native_threaded_entry(native_report):
    threaded = native_report["threaded"]
    assert set(bench_report.THREADED_KEYS) <= set(threaded)
    assert threaded["threads"] >= 2
    assert threaded["n_trials"] >= 1
    for key in ("numpy_serial_s", "native_serial_s",
                "numpy_threads_s", "native_threads_s"):
        assert threaded[key] > 0
    assert threaded["native_thread_scaling"] > 0


def test_committed_native_report_is_schema_valid():
    """The checked-in BENCH_PR7.json must parse under the same schema
    and — having been generated with the extension loaded — show the
    headline result: >= 2x over the NumPy tier on >= 2 of the 3
    headline kernels, every end-to-end section bit-identical."""
    committed = json.loads((REPO_ROOT / "BENCH_PR7.json").read_text())
    assert committed["schema_version"] == bench_report.NATIVE_SCHEMA_VERSION
    for entry in committed["kernels"]:
        assert set(bench_report.NATIVE_KERNEL_KEYS) <= set(entry)
    assert set(bench_report.THREADED_KEYS) <= set(committed["threaded"])
    assert committed["native_available"] is True
    assert committed["campaign"]["bit_identical"] is True
    assert committed["stream"]["bit_identical"] is True
    # CI regenerates the repo-root reports in quick mode before this
    # test runs; the perf gate is only meaningful at full size, where
    # the headline kernels clear 2x with a wide margin.
    if not committed["quick"]:
        headline = committed["headline"]
        assert len(headline["kernels_at_2x"]) >= 2
        assert headline["gate_met"] is True


def test_dag_report_top_level_schema(dag_report):
    assert dag_report["schema_version"] == bench_report.DAG_SCHEMA_VERSION
    assert dag_report["quick"] is True
    assert set(bench_report.DAG_RUN_KEYS) <= set(dag_report["report_run"])


def test_dag_report_run_entry(dag_report):
    run = dag_report["report_run"]
    assert run["n_nodes"] >= len(run["experiments"]) > 0
    assert run["sequential_s"] > 0
    assert run["dag_cold_s"] > 0
    assert run["dag_warm_s"] > 0
    assert run["n_run_cold"] == run["n_nodes"]


def test_dag_report_witnesses_recovery_contract(dag_report):
    """The warm replay is the resume path: every node restored from
    the store, no recomputation, panels bit-identical to sequential."""
    run = dag_report["report_run"]
    assert run["n_restored_warm"] == run["n_nodes"]
    assert run["dag_warm_s"] < run["dag_cold_s"]
    assert run["bit_identical"] is True


def test_committed_dag_report_is_schema_valid():
    """The checked-in BENCH_PR8.json must parse under the same schema
    and witness the orchestrator's headline: the single-DAG report run
    is bit-identical to the sequential loop, and a warm store replays
    the whole run as no-ops."""
    committed = json.loads((REPO_ROOT / "BENCH_PR8.json").read_text())
    assert committed["schema_version"] == bench_report.DAG_SCHEMA_VERSION
    run = committed["report_run"]
    assert set(bench_report.DAG_RUN_KEYS) <= set(run)
    assert run["bit_identical"] is True
    assert run["n_restored_warm"] == run["n_nodes"]
    assert run["dag_warm_s"] < run["dag_cold_s"]


def test_cluster_report_top_level_schema(cluster_report):
    assert (
        cluster_report["schema_version"] == bench_report.CLUSTER_SCHEMA_VERSION
    )
    assert cluster_report["quick"] is True
    assert cluster_report["cpu_count"] >= 1
    assert isinstance(cluster_report["single_core_container"], bool)
    assert isinstance(cluster_report["scaling"], dict)
    assert set(bench_report.CLUSTER_OVERHEAD_KEYS) <= set(
        cluster_report["overhead"]
    )


def test_cluster_report_scaling_runs(cluster_report):
    scaling = cluster_report["scaling"]
    assert scaling["serial_s"] > 0
    assert scaling["runs"]
    for run in scaling["runs"]:
        assert set(bench_report.CLUSTER_RUN_KEYS) <= set(run), run
        assert run["workers"] >= 1
        assert run["elapsed_s"] > 0
        assert run["bytes_sent"] > 0
        assert run["bytes_received"] > 0
        assert len(run["per_worker"]) == run["workers"]


def test_cluster_report_witnesses_bit_identity(cluster_report):
    """Every worker count produces byte-identical report panels —
    the backend-independence contract, witnessed in the benchmark."""
    assert cluster_report["scaling"]["bit_identical_all"] is True
    for run in cluster_report["scaling"]["runs"]:
        assert run["bit_identical"] is True


def test_cluster_report_overhead_entry(cluster_report):
    overhead = cluster_report["overhead"]
    assert overhead["n_shards"] >= 1
    assert overhead["cluster_s"] > 0
    assert overhead["per_shard_roundtrip_ms"] > 0
    assert overhead["per_shard_overhead_ms"] >= 0
    # Warm dispatches carry keys and floats, not arrays or functions.
    assert 0 < overhead["wire_bytes_per_shard"] < 10_000


def test_committed_cluster_report_is_schema_valid():
    """The checked-in BENCH_PR9.json must parse under the same schema
    and meet the acceptance gate: >= 1.7x at two workers, or a
    documented single-core-container caveat with per-shard overhead
    numbers making the dispatch cost inspectable."""
    committed = json.loads((REPO_ROOT / "BENCH_PR9.json").read_text())
    assert committed["schema_version"] == bench_report.CLUSTER_SCHEMA_VERSION
    scaling = committed["scaling"]
    assert scaling["bit_identical_all"] is True
    for run in scaling["runs"]:
        assert set(bench_report.CLUSTER_RUN_KEYS) <= set(run)
    assert set(bench_report.CLUSTER_OVERHEAD_KEYS) <= set(
        committed["overhead"]
    )
    if committed["scaling"]["speedup_at_2"] < 1.7:
        assert committed["single_core_container"] is True
        assert "single-core" in committed["note"]
        assert committed["overhead"]["per_shard_overhead_ms"] >= 0


def test_strategies_report_top_level_schema(strategies_report):
    assert (
        strategies_report["schema_version"]
        == bench_report.STRATEGY_SCHEMA_VERSION
    )
    assert strategies_report["quick"] is True
    assert isinstance(strategies_report["psi_grid"], dict)
    assert set(bench_report.STRATEGY_STEP_KEYS) <= set(
        strategies_report["step_profile"]
    )
    assert set(bench_report.STRATEGY_OVERHEAD_KEYS) <= set(
        strategies_report["overhead"]
    )


def test_strategies_grid_rows(strategies_report):
    grid = strategies_report["psi_grid"]
    assert grid["rows"]
    for row in grid["rows"]:
        assert set(bench_report.STRATEGY_GRID_KEYS) <= set(row), row
        assert row["n_repeats"] >= 1
        for key in ("psi_fixed", "psi_adaptive", "psi_selective"):
            assert row[key] >= 0
    assert grid["operating_gamma"] == grid["rows"][0]["gamma"]
    assert grid["adaptive_no_worse_at_operating_point"] is True


def test_strategies_step_profile_entry(strategies_report):
    """The autotuner's raison d'être: under a time-varying Γ profile it
    must actually move Λ and end no worse than the fixed arm it
    started as."""
    step = strategies_report["step_profile"]
    assert step["n_frames"] >= 1
    assert "step(" in step["profile"]
    assert step["lambda_trajectory"], "the tuner never adjusted"
    for record in step["lambda_trajectory"]:
        assert record["old_sensitivity"] != record["new_sensitivity"]
        assert record["frame_index"] >= 0
    assert step["psi_autotune"] <= step["psi_fixed"]


def test_strategies_overhead_entry(strategies_report):
    overhead = strategies_report["overhead"]
    assert overhead["plain_s"] > 0
    assert overhead["autotune_s"] > 0
    assert overhead["overhead_us_per_frame"] >= 0
    assert overhead["overhead_ratio"] > 0


def test_committed_strategies_report_is_schema_valid():
    """The checked-in BENCH_PR10.json must parse under the same schema
    and show the acceptance result: the adaptive arm no worse than the
    fixed arm at the operating Γ, and the autotuner strictly better
    than its own starting Λ under the time-varying step profile."""
    committed = json.loads((REPO_ROOT / "BENCH_PR10.json").read_text())
    assert (
        committed["schema_version"] == bench_report.STRATEGY_SCHEMA_VERSION
    )
    grid = committed["psi_grid"]
    for row in grid["rows"]:
        assert set(bench_report.STRATEGY_GRID_KEYS) <= set(row)
    assert grid["adaptive_no_worse_at_operating_point"] is True
    step = committed["step_profile"]
    assert set(bench_report.STRATEGY_STEP_KEYS) <= set(step)
    assert step["lambda_trajectory"]
    assert step["psi_autotune"] < step["psi_fixed"]
    assert set(bench_report.STRATEGY_OVERHEAD_KEYS) <= set(
        committed["overhead"]
    )


load_serve = pytest.importorskip("load_serve")


@pytest.fixture(scope="module")
def serve_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "serve.json"
    assert load_serve.main(["--quick", "--out", str(out)]) == 0
    return json.loads(out.read_text())


def test_serve_report_top_level_schema(serve_report):
    assert serve_report["schema_version"] == load_serve.SERVE_SCHEMA_VERSION
    assert serve_report["quick"] is True
    assert set(load_serve.THROUGHPUT_KEYS) <= set(serve_report["throughput"])
    assert set(load_serve.CHURN_KEYS) <= set(serve_report["churn"])


def test_serve_report_throughput_entries(serve_report):
    throughput = serve_report["throughput"]
    assert throughput["frames_per_sec"] > 0
    assert throughput["p99_ms"] >= throughput["p50_ms"] > 0
    assert throughput["messages"] > 0
    assert throughput["bit_identical"] is True


def test_serve_report_witnesses_chaos_resume(serve_report):
    """The churn phase proves the resume contract under fire: chaos
    kills plus a mid-load drain/restart, every stream byte-identical."""
    churn = serve_report["churn"]
    assert churn["chaos_kills"] > 0
    assert churn["restarts"] == 1
    assert churn["bit_identical"] is True
    assert churn["psi_exact"] is True


def test_committed_serve_report_is_schema_valid():
    """The checked-in BENCH_PR6.json must parse under the same schema
    and show the headline result: >= 500 concurrent streams sustained,
    and the churn phase byte-identical through kills and a restart."""
    committed = json.loads((REPO_ROOT / "BENCH_PR6.json").read_text())
    assert committed["schema_version"] == load_serve.SERVE_SCHEMA_VERSION
    throughput = committed["throughput"]
    assert set(load_serve.THROUGHPUT_KEYS) <= set(throughput)
    assert throughput["streams"] >= 500
    assert throughput["frames_per_sec"] > 0
    assert throughput["p99_ms"] >= throughput["p50_ms"] > 0
    assert throughput["bit_identical"] is True
    churn = committed["churn"]
    assert set(load_serve.CHURN_KEYS) <= set(churn)
    assert churn["chaos_kills"] > 0
    assert churn["drains"] > 0
    assert churn["bit_identical"] is True
    assert churn["psi_exact"] is True
