"""Schema smoke test for ``tools/bench_report.py``.

Runs the report in quick mode (small problem sizes, sub-minute) and
validates the structure CI and downstream tooling rely on; the timing
values themselves are machine-dependent and deliberately unasserted.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))

bench_report = pytest.importorskip("bench_report")


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("bench") / "report.json"
    assert bench_report.main(["--quick", "--out", str(out)]) == 0
    return json.loads(out.read_text())


def test_report_top_level_schema(report):
    assert report["schema_version"] == bench_report.SCHEMA_VERSION
    assert report["quick"] is True
    assert "bench_report.py" in report["generated_by"]
    assert isinstance(report["kernels"], list) and report["kernels"]
    assert isinstance(report["campaign"], dict)


def test_report_kernel_entries(report):
    for entry in report["kernels"]:
        assert set(bench_report.KERNEL_KEYS) <= set(entry), entry
        assert entry["before_ms"] > 0
        assert entry["after_ms"] > 0
        assert entry["speedup"] == pytest.approx(
            entry["before_ms"] / entry["after_ms"], rel=1e-2
        )
        assert isinstance(entry["config"], dict)


def test_report_covers_the_headline_kernels(report):
    names = {entry["name"] for entry in report["kernels"]}
    assert {
        "correlated_flip_grid",
        "voter_grt",
        "to_bit_planes",
        "from_bit_planes",
        "median_smooth_temporal",
        "majority_vote_window",
        "cross_frame_preprocess",
        "mosaic",
    } <= names


def test_report_campaign_entry(report):
    campaign = report["campaign"]
    assert campaign["n_trials"] >= 1
    assert campaign["elapsed_s"] > 0
    assert campaign["trials_per_s"] > 0


def test_committed_report_is_schema_valid():
    """The checked-in BENCH_PR2.json must parse under the same schema."""
    path = REPO_ROOT / "BENCH_PR2.json"
    committed = json.loads(path.read_text())
    assert committed["schema_version"] == bench_report.SCHEMA_VERSION
    for entry in committed["kernels"]:
        assert set(bench_report.KERNEL_KEYS) <= set(entry)
