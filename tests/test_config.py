"""Validation tests for the configuration dataclasses."""

import pytest

from repro.config import (
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
    OTISBounds,
    OTISConfig,
    UncorrelatedFaultConfig,
)
from repro.exceptions import ConfigurationError


class TestNGSTConfig:
    def test_defaults(self):
        cfg = NGSTConfig()
        assert cfg.upsilon == 4
        assert 0 <= cfg.sensitivity <= 100
        assert cfg.half_upsilon == 2

    @pytest.mark.parametrize("upsilon", [-2, 0, 1, 3, 5])
    def test_rejects_bad_upsilon(self, upsilon):
        with pytest.raises(ConfigurationError):
            NGSTConfig(upsilon=upsilon)

    def test_rejects_bool_upsilon(self):
        with pytest.raises(ConfigurationError):
            NGSTConfig(upsilon=True)

    @pytest.mark.parametrize("lam", [-1, 100.5, 1e9])
    def test_rejects_bad_sensitivity(self, lam):
        with pytest.raises(ConfigurationError):
            NGSTConfig(sensitivity=lam)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NGSTConfig().sensitivity = 10


class TestOTISBounds:
    def test_effective_defaults(self):
        bounds = OTISBounds(lower=0, upper=200)
        assert bounds.effective() == (0, 200)

    def test_geographic_tightening(self):
        bounds = OTISBounds(0, 200, geographic_lower=30, geographic_upper=150)
        assert bounds.effective() == (30, 150)

    def test_geographic_cannot_widen(self):
        bounds = OTISBounds(10, 100, geographic_lower=0, geographic_upper=500)
        assert bounds.effective() == (10, 100)

    def test_rejects_inverted(self):
        with pytest.raises(ConfigurationError):
            OTISBounds(lower=10, upper=5)

    def test_rejects_empty_geographic_window(self):
        with pytest.raises(ConfigurationError):
            OTISBounds(0, 200, geographic_lower=150, geographic_upper=100)


class TestOTISConfig:
    def test_defaults_valid(self):
        cfg = OTISConfig()
        assert cfg.upsilon in (4, 8)
        assert cfg.iterations >= 1

    @pytest.mark.parametrize("upsilon", [2, 3, 6, 16])
    def test_rejects_non_2d_neighbourhoods(self, upsilon):
        with pytest.raises(ConfigurationError):
            OTISConfig(upsilon=upsilon)

    def test_rejects_bad_trend_window(self):
        with pytest.raises(ConfigurationError):
            OTISConfig(trend_window=0)

    def test_rejects_bad_dn_scale(self):
        with pytest.raises(ConfigurationError):
            OTISConfig(dn_scale=0)

    def test_rejects_negative_tile(self):
        with pytest.raises(ConfigurationError):
            OTISConfig(tile=-1)

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            OTISConfig(iterations=0)


class TestFaultConfigs:
    @pytest.mark.parametrize("gamma0", [-0.1, 1.1])
    def test_uncorrelated_rejects_bad_probability(self, gamma0):
        with pytest.raises(ConfigurationError):
            UncorrelatedFaultConfig(gamma0=gamma0)

    def test_uncorrelated_accepts_bounds(self):
        UncorrelatedFaultConfig(gamma0=0.0)
        UncorrelatedFaultConfig(gamma0=1.0)

    def test_correlated_rejects_half_and_above(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFaultConfig(gamma_ini=0.5)

    def test_correlated_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFaultConfig(gamma_ini=-0.01)

    def test_correlated_rejects_zero_terms(self):
        with pytest.raises(ConfigurationError):
            CorrelatedFaultConfig(max_run_terms=0)


class TestNGSTDatasetConfig:
    def test_defaults(self):
        cfg = NGSTDatasetConfig()
        assert cfg.n_variants == 64
        assert cfg.initial_value == 27000

    def test_rejects_single_variant(self):
        with pytest.raises(ConfigurationError):
            NGSTDatasetConfig(n_variants=1)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            NGSTDatasetConfig(sigma=-1)

    def test_rejects_17bit_initial(self):
        with pytest.raises(ConfigurationError):
            NGSTDatasetConfig(initial_value=70000)

    def test_rejects_floor_above_initial(self):
        with pytest.raises(ConfigurationError):
            NGSTDatasetConfig(initial_value=10, background_floor=20)
