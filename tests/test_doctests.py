"""Run the doctests embedded in module documentation."""

import doctest

import pytest

import repro.core.algo_ngst
import repro.core.bitops
import repro.core.voter

MODULES = [
    repro.core.algo_ngst,
    repro.core.bitops,
    repro.core.voter,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples must actually exist
