"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; they must never rot.
Each is executed in-process (runpy) with stdout captured, and a couple
of headline strings are asserted so silent degradation is caught too.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


class TestExamplesRun:
    def test_all_examples_discovered(self):
        assert len(ALL_EXAMPLES) >= 6

    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "no preprocessing" in out
        assert "Algo_NGST" in out
        assert "bit accounting" in out

    def test_ngst_pipeline(self, capsys):
        out = run_example("ngst_pipeline.py", capsys)
        assert "cosmic rays struck" in out
        assert "with Algo_NGST" in out
        assert "downlink" in out

    def test_otis_thermal_mapping(self, capsys):
        out = run_example("otis_thermal_mapping.py", capsys)
        assert "CATASTROPHE" in out
        assert "geyser kept" in out

    def test_fits_header_recovery(self, capsys):
        out = run_example("fits_header_recovery.py", capsys)
        assert "bit-exact: True" in out
        assert "repair" in out

    def test_sensitivity_tuning(self, capsys):
        out = run_example("sensitivity_tuning.py", capsys)
        assert "optimum L" in out

    def test_fault_campaign(self, capsys):
        out = run_example("fault_campaign.py", capsys)
        assert "uncorrelated" in out
        assert "transit burst" in out

    def test_window_diagnostics(self, capsys):
        out = run_example("window_diagnostics.py", capsys)
        assert "sensitivity profile" in out
        assert "bit-position attribution" in out

    def test_swath_scanning(self, capsys):
        out = run_example("swath_scanning.py", capsys)
        assert "cross-frame consensus" in out
        assert "mosaic Psi" in out
