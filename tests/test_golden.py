"""Golden regression tests: seeded outputs pinned exactly.

These catch *accidental* behaviour changes (a reordered reduction, an
off-by-one in a window) that the behavioural suite might absorb.  When
a change is intentional, update the pinned values and say why in the
commit.
"""

import hashlib

import numpy as np
import pytest

from repro.config import (
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
    OTISConfig,
)
from repro.core.algo_ngst import AlgoNGST
from repro.core.algo_otis import AlgoOTIS
from repro.data.ngst import generate_walk
from repro.data.otis import blob
from repro.faults.correlated import CorrelatedFaultModel
from repro.faults.injector import FaultInjector
from repro.faults.uncorrelated import UncorrelatedFaultModel
from repro.metrics.relative_error import psi
from repro.ngst.rice import rice_encode
from repro.otis.quantize import encode_dn


def digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def make_world():
    rng = np.random.default_rng(123456)
    pristine = generate_walk(
        NGSTDatasetConfig(n_variants=32, sigma=25.0), rng, (8, 8)
    )
    corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.01), seed=9).inject(
        pristine
    )
    return pristine, corrupted


class TestGoldenValues:
    def test_walk_generation_pinned(self):
        pristine, _ = make_world()
        assert digest(pristine) == "20fa5b503f198ec8"

    def test_uncorrelated_injection_pinned(self):
        _, corrupted = make_world()
        assert digest(corrupted) == "fc60d81d211803ab"

    def test_algo_ngst_output_pinned(self):
        _, corrupted = make_world()
        result = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
        assert digest(result.corrected) == "56e6b3fae7dd307a"

    def test_algo_ngst_psi_pinned(self):
        pristine, corrupted = make_world()
        result = AlgoNGST(NGSTConfig(sensitivity=80))(corrupted)
        assert psi(corrupted, pristine) == pytest.approx(
            0.023844846999034185, rel=1e-12
        )
        assert psi(result.corrected, pristine) == pytest.approx(
            0.00099825938598397, rel=1e-12
        )

    def test_correlated_injection_pinned(self):
        pristine, _ = make_world()
        model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=0.05))
        corrupted, _ = FaultInjector(model, seed=9).inject(pristine)
        assert digest(corrupted) == "111706a78ffc62c9"

    def test_algo_otis_output_pinned(self):
        dn = encode_dn(blob(24, 24))
        corrupted, _ = FaultInjector(UncorrelatedFaultModel(0.02), seed=9).inject(dn)
        result = AlgoOTIS(OTISConfig())(corrupted)
        assert digest(result.corrected) == "73eeb7f571cbec7a"

    def test_rice_stream_pinned(self):
        pristine, _ = make_world()
        blob_bytes = rice_encode(pristine[0])
        assert hashlib.sha256(blob_bytes).hexdigest()[:16] == "e2ee86bc8a5f3002"
