"""Contract tests on the top-level public API surface."""

import inspect

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_every_public_class_is_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert (obj.__doc__ or "").strip(), f"{name} lacks a docstring"

    def test_error_hierarchy(self):
        from repro.exceptions import (
            ALFTError,
            CodecError,
            ConfigurationError,
            DataFormatError,
            FITSFormatError,
            HeaderSanityError,
            ReproError,
            SimulationError,
        )

        for exc in (
            ALFTError,
            CodecError,
            ConfigurationError,
            DataFormatError,
            FITSFormatError,
            HeaderSanityError,
            SimulationError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(HeaderSanityError, FITSFormatError)
        assert issubclass(ConfigurationError, ValueError)

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must keep working verbatim-ish."""
        rng = np.random.default_rng(7)
        pristine = repro.generate_walk(
            repro.NGSTDatasetConfig(), rng, shape=(16, 16)
        )
        corrupted, _ = repro.FaultInjector(
            repro.UncorrelatedFaultModel(0.01), seed=1
        ).inject(pristine)
        repaired = repro.AlgoNGST(repro.NGSTConfig(sensitivity=80))(
            corrupted
        ).corrected
        assert repro.psi(repaired, pristine) < repro.psi(corrupted, pristine)


class TestConfigReprs:
    """Frozen dataclasses should round-trip through repr for debugging."""

    @pytest.mark.parametrize(
        "config",
        [
            repro.NGSTConfig(),
            repro.OTISConfig(),
            repro.NGSTDatasetConfig(),
            repro.UncorrelatedFaultConfig(),
            repro.CorrelatedFaultConfig(),
            repro.OTISBounds(),
        ],
        ids=lambda c: type(c).__name__,
    )
    def test_repr_eval_roundtrip(self, config):
        namespace = {
            name: getattr(repro, name)
            for name in repro.__all__
            if not name.startswith("__")
        }
        clone = eval(repr(config), namespace)  # noqa: S307 - test-only
        assert clone == config

    def test_configs_hashable(self):
        assert hash(repro.NGSTConfig()) == hash(repro.NGSTConfig())
        assert hash(repro.NGSTConfig()) != hash(
            repro.NGSTConfig(sensitivity=99)
        )


class TestCrossDtypeSupport:
    def test_algo_ngst_uint32_stack(self):
        stack = np.full((16, 4), 2_000_000_000, dtype=np.uint32)
        stack[5, 2] ^= np.uint32(1 << 30)
        result = repro.AlgoNGST(repro.NGSTConfig(sensitivity=80))(stack)
        assert result.corrected[5, 2] == 2_000_000_000

    def test_uncorrelated_model_uint8(self):
        data = np.zeros(1000, dtype=np.uint8)
        corrupted, mask = repro.UncorrelatedFaultModel(0.1).corrupt(
            data, np.random.default_rng(0)
        )
        assert corrupted.dtype == np.uint8
        assert 0 < np.bitwise_count(mask).sum() < 1000 * 8 * 0.2

    def test_bit_confusion_uint32(self):
        a = np.array([7], dtype=np.uint32)
        conf = repro.bit_confusion(a, a, a)
        assert conf.total_bits == 32
