"""Machine-readable perf trajectory for the kernel and streaming work.

Times every vectorized hot-path kernel against the ``_reference_*``
oracle it replaced (the pre-vectorization implementation, kept in-tree
as the bit-identity witness) and writes the per-kernel before/after
numbers plus an end-to-end campaign throughput figure to
``BENCH_PR2.json``.  A second report, ``BENCH_PR3.json``, covers the
``repro.stream`` subsystem: frames/sec across transport chunk sizes
(with the Ψ value recorded per run — identical by the bit-identity
contract) and peak traced allocation of the streaming path versus the
batch pipeline, demonstrating the O(chunk + window) memory bound (the
streaming peak stays flat as the stream length doubles; the batch peak
scales with it).  A third report, ``BENCH_PR4.json``, covers the
``repro.cache`` + plan-fusion work: wall-clock of a figure-4-style
multi-arm Λ-sweep unfused vs fused (cold and warm cache, serial and
across a worker pool), the cache hit/miss/bytes-saved counters, and
the IPC cost of shipping warm artifacts to workers as a shared-memory
handle versus pickling the arrays — with the fused results asserted
bit-identical to the unfused ones inside the benchmark itself.  A
fourth report, ``BENCH_PR7.json``, covers the compiled kernel tier:
NumPy-vs-native wall-clock per dispatched kernel (timed by flipping
``repro.native.kernel_tier`` around the same public entry point), the
≥2x headline-kernel regression gate, end-to-end campaign and stream
deltas per tier, and a ThreadPoolBackend shard run demonstrating that
the GIL-releasing native calls scale across threads.

Usage::

    PYTHONPATH=src python tools/bench_report.py            # full sizes
    PYTHONPATH=src python tools/bench_report.py --quick    # CI sizes

``--quick`` shrinks problem sizes and repeat counts so the reports run
in seconds; the committed JSON files are generated at full size.
``--repeats N`` / ``--warmup N`` override the best-of-N loop count and
add untimed warmup iterations for noisy hosts.
"""

from __future__ import annotations

import argparse
import json
import pickle
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.majority import (  # noqa: E402
    _reference_majority_vote_window,
    majority_vote_temporal,
    majority_vote_window,
)
from repro.cache import ArtifactCache, SharedArtifactMap  # noqa: E402
from repro.baselines.median import (  # noqa: E402
    _reference_median_smooth_spatial,
    _reference_median_smooth_temporal,
    median_smooth_spatial,
    median_smooth_temporal,
)
from repro.baselines.smoothing import (  # noqa: E402
    _reference_weighted_window_smooth,
    _weighted_window_smooth,
)
from repro.config import (  # noqa: E402
    CorrelatedFaultConfig,
    NGSTConfig,
    NGSTDatasetConfig,
)
from repro.core import bitops  # noqa: E402
from repro.core.algo_ngst import AlgoNGST  # noqa: E402
from repro.core.voter import VoterMatrix, _reference_grt  # noqa: E402
from repro.data.ngst import generate_walk  # noqa: E402
from repro.experiments.common import walk_dataset  # noqa: E402
from repro.faults.campaign import Campaign  # noqa: E402
from repro.faults.correlated import (  # noqa: E402
    CorrelatedFaultModel,
    _reference_correlated_flip_grid,
    correlated_flip_grid,
)
from repro.faults.injector import FaultInjector  # noqa: E402
from repro.faults.uncorrelated import UncorrelatedFaultModel  # noqa: E402
from repro.metrics.relative_error import psi  # noqa: E402
from repro.native import kernel_tier, native_available  # noqa: E402
from repro.native import loader as native_loader  # noqa: E402
from repro.runtime import (  # noqa: E402
    Arm,
    ArmRequest,
    ArtifactPipeline,
    FaultSpec,
    ProcessPoolBackend,
    ThreadPoolBackend,
    TrialRuntime,
    fuse,
)
from repro.otis.scan import (  # noqa: E402
    ScanConfig,
    _reference_cross_frame_preprocess,
    _reference_mosaic,
    cross_frame_preprocess,
    mosaic,
    scan_scene,
)
from repro.stream import (  # noqa: E402
    InjectStage,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    run_batch,
)

SCHEMA_VERSION = 1

#: BENCH_PR3.json schema version (streaming report).
STREAM_SCHEMA_VERSION = 1

#: Keys every kernel entry must carry — mirrored by the schema smoke test.
KERNEL_KEYS = ("name", "config", "before_ms", "after_ms", "speedup")

#: Keys every streaming-throughput entry must carry.
STREAM_KEYS = ("chunk_frames", "frames_per_sec", "elapsed_s", "psi_algorithm")

#: BENCH_PR4.json schema version (artifact cache + plan fusion report).
CACHE_SCHEMA_VERSION = 1

#: Keys the fused-sweep section must carry.
FUSED_KEYS = (
    "n_arms",
    "n_trials",
    "unfused_s",
    "fused_cold_s",
    "fused_warm_s",
    "speedup_cold",
    "speedup_warm",
    "bit_identical",
    "cache",
)

#: Keys the worker-pool section must carry.
POOL_KEYS = ("jobs", "unfused_s", "fused_warm_s", "speedup", "broadcast_bytes")

#: Keys the IPC-cost section must carry.
IPC_KEYS = (
    "payload_bytes",
    "pickled_arrays_bytes",
    "handle_bytes",
    "pickle_ms",
    "handle_ms",
    "bytes_ratio",
)

#: BENCH_PR7.json schema version (native kernel tier report).
NATIVE_SCHEMA_VERSION = 1

#: BENCH_PR8.json schema version (DAG orchestrator report).
DAG_SCHEMA_VERSION = 1

#: Keys the DAG-vs-sequential section must carry.
DAG_RUN_KEYS = (
    "experiments",
    "n_nodes",
    "sequential_s",
    "dag_cold_s",
    "dag_warm_s",
    "n_run_cold",
    "n_restored_warm",
    "warm_replay_speedup",
    "bit_identical",
)

#: BENCH_PR9.json schema version (cluster backend report).
CLUSTER_SCHEMA_VERSION = 1

#: Keys every per-worker-count scaling run must carry.
CLUSTER_RUN_KEYS = (
    "workers",
    "elapsed_s",
    "speedup",
    "bit_identical",
    "bytes_sent",
    "bytes_received",
    "artifact_pulls",
    "pulled_bytes",
    "cache_hit_rate",
    "per_worker",
)

#: Keys the per-shard dispatch overhead section must carry.
CLUSTER_OVERHEAD_KEYS = (
    "n_shards",
    "serial_s",
    "cluster_s",
    "per_shard_roundtrip_ms",
    "per_shard_overhead_ms",
    "wire_bytes_per_shard",
)

#: Keys every NumPy-vs-native kernel entry must carry.
NATIVE_KERNEL_KEYS = ("name", "config", "numpy_ms", "native_ms", "speedup")

#: Keys the threaded-shard end-to-end section must carry.
THREADED_KEYS = (
    "threads",
    "n_trials",
    "numpy_serial_s",
    "native_serial_s",
    "numpy_threads_s",
    "native_threads_s",
    "native_thread_scaling",
)

#: The three headline kernels of the ≥2x regression gate.
HEADLINE_KERNELS = ("correlated_flip_grid", "voter_grt", "bit_planes")

#: BENCH_PR10.json schema version (adaptive strategies report).
STRATEGY_SCHEMA_VERSION = 1

#: Keys every static-Γ grid row must carry.
STRATEGY_GRID_KEYS = (
    "gamma",
    "n_repeats",
    "psi_fixed",
    "psi_adaptive",
    "psi_selective",
)

#: Keys the time-varying step-profile section must carry.
STRATEGY_STEP_KEYS = (
    "n_frames",
    "profile",
    "psi_fixed",
    "psi_autotune",
    "improvement",
    "lambda_trajectory",
)

#: Keys the autotuner-overhead section must carry.
STRATEGY_OVERHEAD_KEYS = (
    "n_frames",
    "plain_s",
    "autotune_s",
    "overhead_us_per_frame",
    "overhead_ratio",
)


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _entry(name, config, before_fn, after_fn, repeats, warmup=0):
    # Interleave the two sides so load drift on a shared machine hits
    # both equally; best-of-N discards the contended runs.
    for _ in range(warmup):
        before_fn()
        after_fn()
    before = float("inf")
    after = float("inf")
    for _ in range(repeats):
        before = min(before, _time_once(before_fn))
        after = min(after, _time_once(after_fn))
    before_ms = before * 1e3
    after_ms = after * 1e3
    return {
        "name": name,
        "config": config,
        "before_ms": round(before_ms, 4),
        "after_ms": round(after_ms, 4),
        "speedup": round(before_ms / after_ms, 3) if after_ms else float("inf"),
    }


def _bench_kernels(quick: bool, repeats: int | None = None, warmup: int = 0) -> list[dict]:
    if repeats is None:
        repeats = 3 if quick else 15
    entries = []

    # --- correlated fault grid -------------------------------------------
    side = 128 if quick else 512
    for gamma in (0.3,) if quick else (0.1, 0.3, 0.45):
        entries.append(
            _entry(
                "correlated_flip_grid",
                {"shape": [side, side], "gamma_ini": gamma},
                lambda g=gamma: _reference_correlated_flip_grid(
                    (side, side), g, np.random.default_rng(0)
                ),
                lambda g=gamma: correlated_flip_grid(
                    (side, side), g, np.random.default_rng(0)
                ),
                repeats,
                warmup,
            )
        )

    # --- voter combiners -------------------------------------------------
    n, hw = (16, 64) if quick else (32, 256)
    rng = np.random.default_rng(1)
    pixels = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    for upsilon in (4, 8):
        matrix = VoterMatrix(pixels, upsilon)
        voters = matrix.pruned(matrix.thresholds(0.75))
        entries.append(
            _entry(
                "voter_grt",
                {"upsilon": upsilon, "stack": [n, hw, hw]},
                lambda v=voters: _reference_grt(v),
                lambda v=voters: VoterMatrix.grt(v),
                repeats,
                warmup,
            )
        )

    # --- bit-plane transforms --------------------------------------------
    words = rng.integers(0, 2**16, size=(32, hw, hw), dtype=np.uint16)
    entries.append(
        _entry(
            "to_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops._reference_to_bit_planes(words),
            lambda: bitops.to_bit_planes(words),
            repeats,
            warmup,
        )
    )
    planes = bitops.to_bit_planes(words)
    entries.append(
        _entry(
            "from_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops._reference_from_bit_planes(planes, np.uint16),
            lambda: bitops.from_bit_planes(planes, np.uint16),
            repeats,
            warmup,
        )
    )
    values = rng.integers(0, 2**16, size=hw * hw, dtype=np.uint64)
    entries.append(
        _entry(
            "ceil_pow2",
            {"n_values": int(values.size)},
            lambda: bitops._reference_ceil_pow2(values),
            lambda: bitops.ceil_pow2(values),
            repeats,
            warmup,
        )
    )

    # --- sliding-window baselines ----------------------------------------
    stack = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    entries.append(
        _entry(
            "median_smooth_temporal",
            {"stack": [n, hw, hw], "window": 3},
            lambda: _reference_median_smooth_temporal(stack),
            lambda: median_smooth_temporal(stack),
            repeats,
            warmup,
        )
    )
    field = rng.integers(0, 2**16, size=(hw * 2, hw * 2), dtype=np.uint16)
    entries.append(
        _entry(
            "median_smooth_spatial",
            {"field": list(field.shape), "window": 3},
            lambda: _reference_median_smooth_spatial(field),
            lambda: median_smooth_spatial(field),
            repeats,
            warmup,
        )
    )
    entries.append(
        _entry(
            "majority_vote_window",
            {"stack": [n, hw, hw], "window": 5},
            lambda: _reference_majority_vote_window(stack, 5),
            lambda: majority_vote_window(stack, 5),
            repeats,
            warmup,
        )
    )
    weights = np.exp(-np.abs(np.arange(-2, 3)) / 1.0)
    entries.append(
        _entry(
            "weighted_window_smooth",
            {"stack": [n, hw, hw], "window": 5},
            lambda: _reference_weighted_window_smooth(stack, weights),
            lambda: _weighted_window_smooth(stack, weights),
            repeats,
            warmup,
        )
    )

    # --- overlapping-swath scan ------------------------------------------
    scan_cfg = ScanConfig(frame_rows=32, frame_cols=hw, step_rows=8)
    scene_rows = 256 if quick else 1024
    scene = rng.integers(0, 2**16, size=(scene_rows, hw), dtype=np.uint16)
    frames = scan_scene(scene, scan_cfg)
    entries.append(
        _entry(
            "cross_frame_preprocess",
            {"n_frames": len(frames), "frame": [32, hw]},
            lambda: _reference_cross_frame_preprocess(frames, scan_cfg),
            lambda: cross_frame_preprocess(frames, scan_cfg),
            max(2, repeats // 3),
            warmup,
        )
    )
    entries.append(
        _entry(
            "mosaic",
            {"n_frames": len(frames), "frame": [32, hw]},
            lambda: _reference_mosaic(frames, scan_cfg),
            lambda: mosaic(frames, scan_cfg),
            max(2, repeats // 3),
            warmup,
        )
    )
    return entries


def _bench_campaign(quick: bool) -> dict:
    """End-to-end throughput of the generate → corrupt → smooth → ψ loop."""
    n_trials = 4 if quick else 16
    side = 32 if quick else 64
    campaign = Campaign(
        generate=lambda rng: generate_walk(
            NGSTDatasetConfig(n_variants=16, sigma=25.0), rng, (side, side)
        ),
        fault_model=UncorrelatedFaultModel(0.01),
        metric=psi,
        preprocess=median_smooth_temporal,
    )
    t0 = time.perf_counter()
    summary = campaign.run(n_trials, seed=7)
    elapsed = time.perf_counter() - t0
    return {
        "n_trials": n_trials,
        "dataset": [16, side, side],
        "elapsed_s": round(elapsed, 4),
        "trials_per_s": round(n_trials / elapsed, 3) if elapsed else float("inf"),
        "mean_psi": summary.mean,
    }


def _stream_pipeline(n_frames, coord, chunk, stack_frames=32):
    source = SyntheticWalkSource(shape=coord, seed=3, n_frames=n_frames)
    stages = [
        InjectStage(UncorrelatedFaultModel(0.01), seed=5),
        VoterStage(stack_frames=stack_frames),
    ]
    return source, stages, StreamPipeline(
        source, stages, chunk_frames=chunk
    )


def _bench_stream_throughput(quick: bool) -> list[dict]:
    """Frames/sec per transport chunk size; Ψ recorded to witness identity."""
    n_frames = 1024 if quick else 8192
    coord = (64,)
    chunks = (1, 16, 64, 256) if quick else (1, 16, 64, 256, 1024, 8192)
    entries = []
    for chunk in chunks:
        _, _, pipeline = _stream_pipeline(n_frames, coord, chunk)
        t0 = time.perf_counter()
        result = pipeline.run()
        elapsed = time.perf_counter() - t0
        entries.append(
            {
                "chunk_frames": chunk,
                "n_frames": n_frames,
                "coord_shape": list(coord),
                "frames_per_sec": round(n_frames / elapsed, 2) if elapsed else 0.0,
                "elapsed_s": round(elapsed, 4),
                # Identical across every chunk size by the bit-identity
                # contract; recorded unrounded so drift would be visible.
                "psi_algorithm": result.psi_algorithm,
            }
        )
    return entries


def _traced_peak(fn) -> int:
    """Peak traced allocation (bytes) while running *fn*.

    numpy registers its buffer allocator with ``tracemalloc``, so this
    captures array storage — the footprint that matters here — without
    the noise of whole-process RSS.
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _bench_stream_memory(quick: bool) -> dict:
    """Streaming vs batch peak memory on the same workload.

    Two facts demonstrate the O(chunk + window) bound: the streaming
    peak is far below the batch peak at equal stream length, and it
    stays flat when the stream length doubles (the batch peak doubles).
    """
    coord = (64,)
    chunk = 64
    n_small = 2048 if quick else 16384
    n_large = 2 * n_small

    stream_peaks = []
    for n_frames in (n_small, n_large):
        _, _, pipeline = _stream_pipeline(n_frames, coord, chunk)
        stream_peaks.append(
            {
                "n_frames": n_frames,
                "peak_bytes": _traced_peak(pipeline.run),
            }
        )

    def batch():
        source, stages, _ = _stream_pipeline(n_large, coord, chunk)
        run_batch(source, stages)

    batch_peak = _traced_peak(batch)
    total_lag = sum(s.lag for s in _stream_pipeline(n_small, coord, chunk)[1])
    return {
        "coord_shape": list(coord),
        "frame_bytes": int(np.prod(coord)) * 2,  # uint16 frames
        "chunk_frames": chunk,
        "total_stage_lag": total_lag,
        "stream": stream_peaks,
        "batch": {"n_frames": n_large, "peak_bytes": batch_peak},
        # ~1.0 when the bound holds (peak independent of stream length).
        "stream_growth_ratio": round(
            stream_peaks[1]["peak_bytes"] / stream_peaks[0]["peak_bytes"], 3
        ),
        "stream_to_batch_ratio": round(
            stream_peaks[1]["peak_bytes"] / batch_peak, 4
        ),
    }


def _sweep_fixture(quick: bool):
    """The figure-4-style Λ-sweep both sides of BENCH_PR4 run.

    Arms: no-preprocessing control, Algo_NGST at every Λ of the grid,
    and the two smoothing baselines — all against the correlated fault
    model, the paper's costliest injection path.
    """
    shape = (8, 8) if quick else (16, 16)
    n_variants = 16 if quick else 64
    lambdas = (50.0, 80.0) if quick else (10.0, 30.0, 50.0, 70.0, 80.0, 90.0, 100.0)
    n_trials = 4 if quick else 16
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=25.0)
    model = CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=0.05))
    dataset = walk_dataset(dataset_cfg, shape)

    arms = [Arm("no-preprocessing", lambda c, p: psi(c, p))]
    for lam in lambdas:
        algo = AlgoNGST(NGSTConfig(sensitivity=lam))
        arms.append(
            Arm(f"L={int(lam)}", lambda c, p, algo=algo: psi(algo(c).corrected, p))
        )
    arms.append(Arm("median-w3", lambda c, p: psi(median_smooth_temporal(c), p)))
    arms.append(Arm("majority-w3", lambda c, p: psi(majority_vote_temporal(c), p)))

    def unfused_trial(rng, arm):
        # The historical per-arm protocol: every arm regenerates and
        # re-injects its own copies of the bit-identical artifacts.
        pristine = generate_walk(dataset_cfg, rng, shape)
        injector = FaultInjector(model, seed=int(rng.integers(2**31)))
        corrupted, _ = injector.inject(pristine)
        return arm.evaluate(corrupted, pristine)

    group = fuse(
        [
            ArmRequest(arm, ArtifactPipeline(dataset, FaultSpec.of(model)), n_trials, 2003)
            for arm in arms
        ]
    )[0]
    config = {
        "shape": list(shape),
        "n_variants": n_variants,
        "gamma_ini": 0.05,
        "lambdas": [float(lam) for lam in lambdas],
    }
    return arms, group, unfused_trial, n_trials, config


def _run_unfused(
    arms, unfused_trial, n_trials, backend=None, shard_size=None
) -> tuple[float, dict]:
    runtime = TrialRuntime(backend=backend, shard_size=shard_size)
    t0 = time.perf_counter()
    values = {
        arm.name: runtime.run(
            lambda rng, arm=arm: unfused_trial(rng, arm), n_trials, 2003
        )
        for arm in arms
    }
    return time.perf_counter() - t0, values


def _bench_fused_sweep(quick: bool) -> dict:
    """Unfused vs fused (cold/warm cache) Λ-sweep wall-clock, serial."""
    arms, group, unfused_trial, n_trials, config = _sweep_fixture(quick)

    unfused_s, unfused_values = _run_unfused(arms, unfused_trial, n_trials)

    cache = ArtifactCache()
    runtime = TrialRuntime(cache=cache)
    t0 = time.perf_counter()
    fused_cold = runtime.run_fused(group)
    fused_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused_warm = runtime.run_fused(group)
    fused_warm_s = time.perf_counter() - t0

    bit_identical = all(
        np.asarray(unfused_values[name]).tobytes()
        == np.asarray(fused_cold[name]).tobytes()
        == np.asarray(fused_warm[name]).tobytes()
        for name in unfused_values
    )
    return {
        "config": config,
        "n_arms": len(arms),
        "n_trials": n_trials,
        "unfused_s": round(unfused_s, 4),
        "fused_cold_s": round(fused_cold_s, 4),
        "fused_warm_s": round(fused_warm_s, 4),
        "speedup_cold": round(unfused_s / fused_cold_s, 3) if fused_cold_s else 0.0,
        "speedup_warm": round(unfused_s / fused_warm_s, 3) if fused_warm_s else 0.0,
        "bit_identical": bit_identical,
        "cache": cache.stats().as_dict(),
    }


def _bench_fused_pool(quick: bool) -> dict:
    """Unfused vs warm-cache fused at the same worker count."""
    from repro.runtime import CacheSnapshot, Telemetry

    jobs = 2 if quick else 8
    arms, group, unfused_trial, n_trials, _ = _sweep_fixture(quick)

    cache = ArtifactCache()
    fused_serial = TrialRuntime(cache=cache).run_fused(group)  # warm the cache

    unfused_s, unfused_values = _run_unfused(
        arms, unfused_trial, n_trials, backend=ProcessPoolBackend(jobs), shard_size=1
    )

    snapshots: list[CacheSnapshot] = []
    telemetry = Telemetry()
    telemetry.subscribe(
        lambda event: snapshots.append(event)
        if isinstance(event, CacheSnapshot)
        else None
    )
    pool_runtime = TrialRuntime(
        backend=ProcessPoolBackend(jobs),
        cache=cache,
        telemetry=telemetry,
        shard_size=1,
    )
    t0 = time.perf_counter()
    fused_pool = pool_runtime.run_fused(group)
    fused_warm_s = time.perf_counter() - t0

    bit_identical = all(
        np.asarray(unfused_values[name]).tobytes()
        == np.asarray(fused_serial[name]).tobytes()
        == np.asarray(fused_pool[name]).tobytes()
        for name in unfused_values
    )
    stats = cache.stats()
    return {
        "jobs": jobs,
        "n_arms": len(arms),
        "n_trials": n_trials,
        "unfused_s": round(unfused_s, 4),
        "fused_warm_s": round(fused_warm_s, 4),
        "speedup": round(unfused_s / fused_warm_s, 3) if fused_warm_s else 0.0,
        "bit_identical": bit_identical,
        "broadcast_bytes": snapshots[-1].broadcast_bytes if snapshots else 0,
        "overlay_hits": stats.overlay_hits,
    }


def _bench_ipc(quick: bool) -> dict:
    """Shared-memory handle vs pickled arrays: IPC bytes and time.

    Measures what actually crosses the process boundary when warm
    artifacts reach pool workers: the pickled
    :class:`SharedArtifactMap` worker view (a segment name plus array
    specs) versus pickling the arrays themselves.
    """
    arms, group, _, n_trials, _ = _sweep_fixture(quick)
    cache = ArtifactCache()
    TrialRuntime(cache=cache).run_fused(group)  # warm every artifact
    entries = {
        key: entry
        for key in list(cache._memory)
        if (entry := cache.peek(key)) is not None
    }
    payload = {k: {n: np.asarray(a) for n, a in e.arrays.items()} for k, e in entries.items()}
    payload_bytes = sum(e.nbytes for e in entries.values())

    repeats = 3 if quick else 10
    with SharedArtifactMap.broadcast(entries) as broadcast:
        view = broadcast.worker_view()
        handle_blob = pickle.dumps(view)
        pickle_blob = pickle.dumps(payload)
        handle_ms = min(
            _time_once(lambda: pickle.dumps(view)) for _ in range(repeats)
        ) * 1e3
        pickle_ms = min(
            _time_once(lambda: pickle.dumps(payload)) for _ in range(repeats)
        ) * 1e3
    return {
        "n_entries": len(entries),
        "payload_bytes": payload_bytes,
        "pickled_arrays_bytes": len(pickle_blob),
        "handle_bytes": len(handle_blob),
        "pickle_ms": round(pickle_ms, 4),
        "handle_ms": round(handle_ms, 4),
        "bytes_ratio": round(len(pickle_blob) / len(handle_blob), 2),
    }


def _tier_entry(name, config, fn, repeats, warmup=0):
    """Time *fn* under the NumPy tier vs the native tier.

    Both sides call the same public entry point; only the dispatch tier
    differs, so the delta is exactly the compiled kernel's contribution.
    Without the extension the native side falls back to NumPy and the
    speedup reads ~1.0 — the report stays truthful on pure-NumPy hosts.
    """

    def numpy_side():
        with kernel_tier("numpy"):
            fn()

    def native_side():
        with kernel_tier("native"):
            fn()

    timed = _entry(name, config, numpy_side, native_side, repeats, warmup)
    return {
        "name": name,
        "config": config,
        "numpy_ms": timed["before_ms"],
        "native_ms": timed["after_ms"],
        "speedup": timed["speedup"],
    }


def _bench_native_kernels(
    quick: bool, repeats: int | None = None, warmup: int = 0
) -> list[dict]:
    if repeats is None:
        repeats = 3 if quick else 15
    entries = []

    side = 128 if quick else 512
    for gamma in (0.3,) if quick else (0.1, 0.3, 0.45):
        entries.append(
            _tier_entry(
                "correlated_flip_grid",
                {"shape": [side, side], "gamma_ini": gamma},
                lambda g=gamma: correlated_flip_grid(
                    (side, side), g, np.random.default_rng(0)
                ),
                repeats,
                warmup,
            )
        )

    n, hw = (16, 64) if quick else (32, 256)
    rng = np.random.default_rng(1)
    pixels = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    for upsilon in (4, 8):
        matrix = VoterMatrix(pixels, upsilon)
        voters = matrix.pruned(matrix.thresholds(0.75))
        entries.append(
            _tier_entry(
                "voter_grt",
                {"upsilon": upsilon, "stack": [n, hw, hw]},
                lambda v=voters: VoterMatrix.grt(v),
                repeats,
                warmup,
            )
        )

    words = rng.integers(0, 2**16, size=(32, hw, hw), dtype=np.uint16)
    entries.append(
        _tier_entry(
            "to_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops.to_bit_planes(words),
            repeats,
            warmup,
        )
    )
    planes = bitops.to_bit_planes(words)
    entries.append(
        _tier_entry(
            "from_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops.from_bit_planes(planes, np.uint16),
            repeats,
            warmup,
        )
    )

    stack = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    entries.append(
        _tier_entry(
            "majority_vote_window",
            {"stack": [n, hw, hw], "window": 5},
            lambda: majority_vote_window(stack, 5),
            repeats,
            warmup,
        )
    )
    weights = np.exp(-np.abs(np.arange(-2, 3)) / 1.0)
    entries.append(
        _tier_entry(
            "weighted_window_smooth",
            {"stack": [n, hw, hw], "window": 5},
            lambda: _weighted_window_smooth(stack, weights),
            repeats,
            warmup,
        )
    )
    return entries


def _headline_summary(entries: list[dict]) -> dict:
    """The ≥2x-on-≥2-of-3 regression gate over the headline kernels."""
    groups = {
        "correlated_flip_grid": ("correlated_flip_grid",),
        "voter_grt": ("voter_grt",),
        "bit_planes": ("to_bit_planes", "from_bit_planes"),
    }
    best = {}
    for headline, names in groups.items():
        speedups = [e["speedup"] for e in entries if e["name"] in names]
        best[headline] = round(max(speedups), 3) if speedups else 0.0
    at_2x = sorted(name for name, speedup in best.items() if speedup >= 2.0)
    return {
        "best_speedup": best,
        "kernels_at_2x": at_2x,
        "gate_met": len(at_2x) >= 2,
    }


def _bench_native_campaign(quick: bool) -> dict:
    """End-to-end campaign delta: correlated injection + majority vote."""
    n_trials = 4 if quick else 16
    side = 32 if quick else 64
    campaign = Campaign(
        generate=lambda rng: generate_walk(
            NGSTDatasetConfig(n_variants=16, sigma=25.0), rng, (side, side)
        ),
        fault_model=CorrelatedFaultModel(CorrelatedFaultConfig(gamma_ini=0.05)),
        metric=psi,
        preprocess=lambda stack: majority_vote_window(stack, 5),
    )
    out = {"n_trials": n_trials, "dataset": [16, side, side]}
    means = {}
    for tier in ("numpy", "native"):
        with kernel_tier(tier):
            t0 = time.perf_counter()
            summary = campaign.run(n_trials, seed=7)
            out[f"{tier}_s"] = round(time.perf_counter() - t0, 4)
        means[tier] = summary.mean
    out["speedup"] = (
        round(out["numpy_s"] / out["native_s"], 3) if out["native_s"] else 0.0
    )
    out["bit_identical"] = means["numpy"] == means["native"]
    out["mean_psi"] = means["numpy"]
    return out


def _bench_native_stream(quick: bool) -> dict:
    """Streaming-pipeline delta per tier (inject + voter stages)."""
    n_frames = 1024 if quick else 8192
    chunk = 64
    out = {"n_frames": n_frames, "chunk_frames": chunk}
    psis = {}
    for tier in ("numpy", "native"):
        _, _, pipeline = _stream_pipeline(n_frames, (64,), chunk)
        with kernel_tier(tier):
            t0 = time.perf_counter()
            result = pipeline.run()
            out[f"{tier}_s"] = round(time.perf_counter() - t0, 4)
        psis[tier] = result.psi_algorithm
    out["speedup"] = (
        round(out["numpy_s"] / out["native_s"], 3) if out["native_s"] else 0.0
    )
    out["bit_identical"] = psis["numpy"] == psis["native"]
    return out


def _bench_threaded(quick: bool) -> dict:
    """ThreadPoolBackend shards over the correlated-grid trial per tier.

    The tier override is a module-level global, so worker threads
    inherit whatever ``kernel_tier`` the caller holds.  The native C
    scan runs with the GIL released (cffi drops it around every call),
    so native threads_s should drop below native serial_s while the
    NumPy tier stays GIL-bound — on a multi-core host.  ``cpu_count``
    is recorded so a ~1.0x scaling figure on a single-core box reads
    as a host limit, not a GIL artifact.
    """
    import os

    threads = 2 if quick else 4
    n_trials = 8 if quick else 32
    side = 128 if quick else 384

    def trial(rng):
        flips = correlated_flip_grid((side, side), 0.3, rng)
        return float(flips.mean())

    out = {
        "threads": threads,
        "n_trials": n_trials,
        "grid": [side, side],
        "cpu_count": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
    }
    for tier in ("numpy", "native"):
        with kernel_tier(tier):
            t0 = time.perf_counter()
            serial = TrialRuntime().run(trial, n_trials, 11)
            out[f"{tier}_serial_s"] = round(time.perf_counter() - t0, 4)
            t0 = time.perf_counter()
            threaded = TrialRuntime(backend=ThreadPoolBackend(threads)).run(
                trial, n_trials, 11
            )
            out[f"{tier}_threads_s"] = round(time.perf_counter() - t0, 4)
        assert np.asarray(serial).tobytes() == np.asarray(threaded).tobytes()
    out["native_thread_scaling"] = (
        round(out["native_serial_s"] / out["native_threads_s"], 3)
        if out["native_threads_s"]
        else 0.0
    )
    return out


def build_native_report(
    quick: bool, repeats: int | None = None, warmup: int = 0
) -> dict:
    kernels = _bench_native_kernels(quick, repeats, warmup)
    return {
        "schema_version": NATIVE_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "native_available": native_available(),
        "native_origin": native_loader.origin(),
        "kernels": kernels,
        "headline": _headline_summary(kernels),
        "campaign": _bench_native_campaign(quick),
        "stream": _bench_native_stream(quick),
        "threaded": _bench_threaded(quick),
    }


def _bench_dag_report(quick: bool) -> dict:
    """One 3-experiment `repro report` DAG run vs the sequential loop.

    Times the same subset three ways: the historical per-experiment
    sequential loop, a cold single-DAG run into a fresh on-disk store,
    and a warm no-op replay against that store (the resume path a
    killed run takes) — asserting the DAG panels are bit-identical to
    the sequential results inside the benchmark itself.
    """
    import tempfile

    from repro.dag.report import (
        PANELS_NODE,
        build_report_graph,
        quick_overrides,
    )
    from repro.dag.build import json_payload
    from repro.dag.scheduler import DagScheduler
    from repro.experiments.registry import run_experiment
    from repro.runtime import Telemetry
    from repro.runtime.telemetry import DagCompleted

    experiments = ["fig2", "fig4", "motivation"]

    start = time.perf_counter()
    sequential_panels = []
    for experiment_id in experiments:
        overrides = quick_overrides(experiment_id) if quick else {}
        for result in run_experiment(experiment_id, **overrides):
            sequential_panels.append(result.to_dict())
    sequential_s = time.perf_counter() - start

    completions: list = []
    telemetry = Telemetry()
    telemetry.subscribe(
        lambda e: completions.append(e) if isinstance(e, DagCompleted) else None
    )
    with tempfile.TemporaryDirectory() as store:
        graph = build_report_graph(experiments, quick=quick)
        scheduler = DagScheduler(
            cache=ArtifactCache(directory=store), telemetry=telemetry
        )
        start = time.perf_counter()
        outputs = scheduler.run(graph, targets=(PANELS_NODE,))
        dag_cold_s = time.perf_counter() - start
        panels = json_payload(outputs[PANELS_NODE])

        warm_graph = build_report_graph(experiments, quick=quick)
        warm_scheduler = DagScheduler(
            cache=ArtifactCache(directory=store), telemetry=telemetry
        )
        start = time.perf_counter()
        warm_scheduler.run(warm_graph, targets=(PANELS_NODE,))
        dag_warm_s = time.perf_counter() - start

    cold, warm = completions[0], completions[1]
    return {
        "experiments": experiments,
        "n_nodes": cold.n_nodes,
        "sequential_s": round(sequential_s, 4),
        "dag_cold_s": round(dag_cold_s, 4),
        "dag_warm_s": round(dag_warm_s, 4),
        "n_run_cold": cold.n_run,
        "n_restored_warm": warm.n_restored,
        "warm_replay_speedup": round(dag_cold_s / max(dag_warm_s, 1e-9), 2),
        "bit_identical": panels == sequential_panels,
    }


def build_dag_report(quick: bool) -> dict:
    return {
        "schema_version": DAG_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "report_run": _bench_dag_report(quick),
    }


def _cluster_noop_shard_fn(shard):
    # Near-zero compute: the cluster round trip IS the measurement.
    return [float(seed) for seed in shard.seeds]


def _bench_cluster_scaling(quick: bool) -> dict:
    """The report subset over 1/2/4 loopback workers vs serial.

    Every cluster run is byte-compared against the serial panels — the
    bit-identity contract witnessed inside the benchmark, like the
    fused-sweep and DAG sections.  Workers are real forked processes
    crossing the real TCP protocol, so on a single-core container they
    time-slice one CPU and wall-clock speedup is not expected there;
    ``cpu_count`` is recorded so the numbers are interpretable.
    """
    import os

    from repro.cluster import LocalCluster
    from repro.dag.build import json_payload
    from repro.dag.report import PANELS_NODE, build_report_graph
    from repro.dag.scheduler import DagScheduler

    experiments = ["fig2"] if quick else ["fig2", "fig4", "motivation"]
    start = time.perf_counter()
    reference = json_payload(
        DagScheduler(cache=ArtifactCache()).run(
            build_report_graph(experiments, quick=quick),
            targets=(PANELS_NODE,),
        )[PANELS_NODE]
    )
    serial_s = time.perf_counter() - start
    reference_blob = json.dumps(reference, sort_keys=True)

    runs = []
    for n_workers in (1, 2) if quick else (1, 2, 4):
        with LocalCluster(n_workers=n_workers) as cluster:
            backend = cluster.backend(
                heartbeat_interval_s=0.2, heartbeat_timeout_s=10.0
            )
            scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
            start = time.perf_counter()
            panels = json_payload(
                scheduler.run(
                    build_report_graph(experiments, quick=quick),
                    targets=(PANELS_NODE,),
                )[PANELS_NODE]
            )
            elapsed = time.perf_counter() - start
            stats = [w.as_dict() for w in backend.stats().values()]
            backend.close()
        pulls = sum(w["artifact_pulls"] for w in stats)
        hits = sum(w["local_hits"] for w in stats)
        runs.append(
            {
                "workers": n_workers,
                "elapsed_s": round(elapsed, 4),
                "speedup": round(serial_s / max(elapsed, 1e-9), 2),
                "bit_identical": json.dumps(panels, sort_keys=True)
                == reference_blob,
                "bytes_sent": sum(w["bytes_sent"] for w in stats),
                "bytes_received": sum(w["bytes_received"] for w in stats),
                "artifact_pulls": pulls,
                "pulled_bytes": sum(w["pulled_bytes"] for w in stats),
                "cache_hit_rate": round(hits / max(hits + pulls, 1), 4),
                "per_worker": stats,
            }
        )
    at_two = next((r for r in runs if r["workers"] == 2), runs[-1])
    return {
        "experiments": experiments,
        "serial_s": round(serial_s, 4),
        "runs": runs,
        "speedup_at_2": at_two["speedup"],
        "bit_identical_all": all(r["bit_identical"] for r in runs),
        "cpu_count": os.cpu_count(),
    }


def _bench_cluster_overhead(quick: bool) -> dict:
    """Per-shard dispatch cost over a warm single-worker connection.

    Runs near-empty shards so the measured time is the protocol itself:
    pickle + frame + TCP round trip + result unpack.  The overhead
    column is what a shard must out-compute for remote dispatch to pay
    off on an otherwise idle worker.
    """
    from repro.cluster import LocalCluster
    from repro.runtime import SerialBackend
    from repro.runtime.plan import Shard

    n_shards = 32 if quick else 256
    shards = [
        Shard(index=i, start=i, stop=i + 1, seeds=(i,))
        for i in range(n_shards)
    ]
    start = time.perf_counter()
    list(SerialBackend().run_shards(_cluster_noop_shard_fn, shards))
    serial_s = time.perf_counter() - start

    with LocalCluster(n_workers=1) as cluster:
        backend = cluster.backend(
            heartbeat_interval_s=0.5, heartbeat_timeout_s=10.0
        )
        # Warm run: connect, handshake, and ship the function once so
        # the timed loop sees the steady-state ~O(100B) dispatches.
        list(backend.run_shards(_cluster_noop_shard_fn, shards[:1]))
        warm_bytes = sum(
            w.bytes_sent + w.bytes_received for w in backend.stats().values()
        )
        start = time.perf_counter()
        list(backend.run_shards(_cluster_noop_shard_fn, shards))
        cluster_s = time.perf_counter() - start
        total_bytes = sum(
            w.bytes_sent + w.bytes_received for w in backend.stats().values()
        )
        backend.close()

    return {
        "n_shards": n_shards,
        "serial_s": round(serial_s, 4),
        "cluster_s": round(cluster_s, 4),
        "per_shard_roundtrip_ms": round(cluster_s / n_shards * 1e3, 3),
        "per_shard_overhead_ms": round(
            max(cluster_s - serial_s, 0.0) / n_shards * 1e3, 3
        ),
        "wire_bytes_per_shard": round((total_bytes - warm_bytes) / n_shards),
    }


def build_cluster_report(quick: bool) -> dict:
    import os

    cpu_count = os.cpu_count() or 1
    return {
        "schema_version": CLUSTER_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": cpu_count,
        "single_core_container": cpu_count < 2,
        "note": (
            "generated on a single-core container: loopback workers "
            "time-slice one CPU, so wall-clock speedup over serial is "
            "not expected here; see per_shard_overhead_ms for the "
            "dispatch cost a multi-core deployment amortises"
            if cpu_count < 2
            else ""
        ),
        "scaling": _bench_cluster_scaling(quick),
        "overhead": _bench_cluster_overhead(quick),
    }


def _bench_strategy_grid(quick: bool) -> dict:
    """Ψ for the fixed / adaptive / selective arms over a static-Γ grid.

    The operating point is the lowest Γ of the grid — the nominal
    environment every strategy must not regress at.  The adaptive arm's
    promise is "no worse when nothing is wrong, better when the stack
    is incoherent", so the headline boolean checks the first half here
    (the second half is the step-profile section's job).
    """
    from repro.core.strategies import strategy_arm_config

    shape = (8, 8) if quick else (16, 16)
    n_variants = 32 if quick else 64
    n_repeats = 2 if quick else 8
    gammas = (0.001, 0.05) if quick else (0.001, 0.005, 0.01, 0.05)
    dataset_cfg = NGSTDatasetConfig(n_variants=n_variants, sigma=25.0)
    arms = {
        name: AlgoNGST(strategy_arm_config(name))
        for name in ("fixed", "adaptive", "selective")
    }

    rows = []
    for gamma in gammas:
        sums = dict.fromkeys(arms, 0.0)
        for repeat in range(n_repeats):
            rng = np.random.default_rng(1000 + repeat)
            pristine = generate_walk(dataset_cfg, rng, shape)
            corrupted, _ = FaultInjector(
                UncorrelatedFaultModel(gamma), seed=repeat
            ).inject(pristine)
            for name, algo in arms.items():
                sums[name] += psi(algo(corrupted).corrected, pristine)
        rows.append(
            {
                "gamma": gamma,
                "n_repeats": n_repeats,
                **{
                    f"psi_{name}": total / n_repeats
                    for name, total in sums.items()
                },
            }
        )
    operating = rows[0]
    return {
        "shape": list(shape),
        "n_variants": n_variants,
        "lambda": 50.0,
        "operating_gamma": gammas[0],
        "rows": rows,
        # Exactly-no-worse would be brittle on a 2-repeat quick run;
        # 5% covers seed noise while still catching a real regression.
        "adaptive_no_worse_at_operating_point": (
            operating["psi_adaptive"]
            <= operating["psi_fixed"] * 1.05 + 1e-12
        ),
    }


def _strategy_step_profile(quick: bool):
    from repro.faults.profile import GammaStepProfile

    n_frames = 512 if quick else 2048
    return n_frames, GammaStepProfile(
        base=0.001, elevated=0.08, period=256, duty=0.5
    )


def _bench_strategy_step(quick: bool) -> dict:
    """Autotuned vs fixed Λ under a time-varying Γ step profile.

    Both streams start at Λ=50 over the identical injected stream; the
    tuner's only advantage is reacting to the elevated-Γ windows.  Its
    committed Λ trajectory is recorded so the report shows *when* it
    moved, not just that the aggregate Ψ improved.
    """
    from repro.stream.autotune_stage import AutotuneVoterStage

    n_frames, profile = _strategy_step_profile(quick)

    def source():
        return SyntheticWalkSource(shape=(16,), seed=11, n_frames=n_frames)

    def inject():
        return InjectStage(
            UncorrelatedFaultModel(0.001), seed=3, profile=profile
        )

    fixed = StreamPipeline(
        source(),
        [inject(), VoterStage(NGSTConfig(sensitivity=50.0), stack_frames=32)],
        chunk_frames=64,
    ).run()
    tuner = AutotuneVoterStage(
        NGSTConfig(sensitivity=50.0),
        stack_frames=32,
        window_stacks=2,
        interval_stacks=1,
        min_delta=10.0,
        confirm=2,
    )
    autotuned = StreamPipeline(
        source(), [inject(), tuner], chunk_frames=64
    ).run()
    return {
        "n_frames": n_frames,
        "profile": profile.describe(),
        "starting_lambda": 50.0,
        "psi_fixed": fixed.psi_algorithm,
        "psi_autotune": autotuned.psi_algorithm,
        "improvement": (
            round(fixed.psi_algorithm / autotuned.psi_algorithm, 4)
            if autotuned.psi_algorithm
            else float("inf")
        ),
        "lambda_trajectory": list(tuner.lambda_trajectory),
    }


def _bench_autotune_overhead(quick: bool) -> dict:
    """Per-frame cost of the online estimators over a plain voter.

    Same source, same injection, same stacks — the only delta is the
    σ̂/Γ̂ estimation at each stack boundary, so the per-frame figure is
    exactly what a mission pays to keep the tuner armed.
    """
    from repro.stream.autotune_stage import AutotuneVoterStage

    n_frames = 1024 if quick else 8192
    repeats = 2 if quick else 5

    def run(stage_factory) -> float:
        best = float("inf")
        for _ in range(repeats):
            source = SyntheticWalkSource(
                shape=(64,), seed=3, n_frames=n_frames
            )
            stages = [
                InjectStage(UncorrelatedFaultModel(0.01), seed=5),
                stage_factory(),
            ]
            pipeline = StreamPipeline(source, stages, chunk_frames=64)
            best = min(best, _time_once(pipeline.run))
        return best

    plain_s = run(
        lambda: VoterStage(NGSTConfig(sensitivity=50.0), stack_frames=32)
    )
    autotune_s = run(
        lambda: AutotuneVoterStage(
            NGSTConfig(sensitivity=50.0),
            stack_frames=32,
            window_stacks=2,
            interval_stacks=1,
        )
    )
    return {
        "n_frames": n_frames,
        "coord_shape": [64],
        "stack_frames": 32,
        "plain_s": round(plain_s, 4),
        "autotune_s": round(autotune_s, 4),
        "overhead_us_per_frame": round(
            max(autotune_s - plain_s, 0.0) / n_frames * 1e6, 3
        ),
        "overhead_ratio": round(autotune_s / plain_s, 3) if plain_s else 0.0,
    }


def build_strategies_report(quick: bool) -> dict:
    return {
        "schema_version": STRATEGY_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "psi_grid": _bench_strategy_grid(quick),
        "step_profile": _bench_strategy_step(quick),
        "overhead": _bench_autotune_overhead(quick),
    }


def build_cache_report(quick: bool) -> dict:
    return {
        "schema_version": CACHE_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "fused_sweep": _bench_fused_sweep(quick),
        "pool": _bench_fused_pool(quick),
        "ipc": _bench_ipc(quick),
    }


def build_stream_report(quick: bool) -> dict:
    return {
        "schema_version": STREAM_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "throughput": _bench_stream_throughput(quick),
        "memory": _bench_stream_memory(quick),
    }


def build_report(quick: bool, repeats: int | None = None, warmup: int = 0) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": _bench_kernels(quick, repeats, warmup),
        "campaign": _bench_campaign(quick),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small problem sizes and repeat counts (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR2.json",
        help="kernel report path (default: repo-root BENCH_PR2.json)",
    )
    parser.add_argument(
        "--stream-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR3.json",
        help="streaming report path (default: repo-root BENCH_PR3.json)",
    )
    parser.add_argument(
        "--cache-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR4.json",
        help="cache/fusion report path (default: repo-root BENCH_PR4.json)",
    )
    parser.add_argument(
        "--native-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR7.json",
        help="native-tier report path (default: repo-root BENCH_PR7.json)",
    )
    parser.add_argument(
        "--dag-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR8.json",
        help="DAG orchestrator report path (default: repo-root BENCH_PR8.json)",
    )
    parser.add_argument(
        "--cluster-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR9.json",
        help="cluster backend report path (default: repo-root BENCH_PR9.json)",
    )
    parser.add_argument(
        "--strategies-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR10.json",
        help="adaptive strategies report path "
        "(default: repo-root BENCH_PR10.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N loop count per kernel (default: 15, or 3 with --quick)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=0,
        help="untimed warmup iterations per kernel side before timing",
    )
    args = parser.parse_args(argv)
    report = build_report(args.quick, args.repeats, args.warmup)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    width = max(len(k["name"]) for k in report["kernels"])
    for k in report["kernels"]:
        print(
            f"{k['name']:<{width}}  {k['before_ms']:>10.2f}ms -> "
            f"{k['after_ms']:>10.2f}ms  ({k['speedup']:>6.2f}x)  {k['config']}"
        )
    c = report["campaign"]
    print(f"campaign: {c['n_trials']} trials in {c['elapsed_s']}s "
          f"({c['trials_per_s']} trials/s)")
    print(f"wrote {args.out}")

    stream_report = build_stream_report(args.quick)
    args.stream_out.write_text(json.dumps(stream_report, indent=2) + "\n")
    for t in stream_report["throughput"]:
        print(
            f"stream: chunk={t['chunk_frames']:<5}  "
            f"{t['frames_per_sec']:>10.1f} frames/s  "
            f"psi={t['psi_algorithm']:.6g}"
        )
    m = stream_report["memory"]
    print(
        f"stream memory: peak {m['stream'][-1]['peak_bytes'] / 1e6:.2f} MB vs "
        f"batch {m['batch']['peak_bytes'] / 1e6:.2f} MB "
        f"(growth ratio {m['stream_growth_ratio']}x when the stream doubles)"
    )
    print(f"wrote {args.stream_out}")

    cache_report = build_cache_report(args.quick)
    args.cache_out.write_text(json.dumps(cache_report, indent=2) + "\n")
    f = cache_report["fused_sweep"]
    print(
        f"fused sweep: {f['n_arms']} arms x {f['n_trials']} trials  "
        f"unfused {f['unfused_s']}s -> cold {f['fused_cold_s']}s "
        f"({f['speedup_cold']}x) -> warm {f['fused_warm_s']}s "
        f"({f['speedup_warm']}x)  hit rate {f['cache']['hit_rate']:.0%}  "
        f"bit_identical={f['bit_identical']}"
    )
    p = cache_report["pool"]
    print(
        f"fused pool:  jobs={p['jobs']}  unfused {p['unfused_s']}s -> "
        f"warm {p['fused_warm_s']}s ({p['speedup']}x)  "
        f"broadcast {p['broadcast_bytes']} bytes"
    )
    i = cache_report["ipc"]
    print(
        f"ipc: {i['n_entries']} entries  pickled arrays "
        f"{i['pickled_arrays_bytes']} B / {i['pickle_ms']}ms vs shm handle "
        f"{i['handle_bytes']} B / {i['handle_ms']}ms ({i['bytes_ratio']}x smaller)"
    )
    print(f"wrote {args.cache_out}")

    native_report = build_native_report(args.quick, args.repeats, args.warmup)
    args.native_out.write_text(json.dumps(native_report, indent=2) + "\n")
    width = max(len(k["name"]) for k in native_report["kernels"])
    for k in native_report["kernels"]:
        print(
            f"native: {k['name']:<{width}}  {k['numpy_ms']:>10.2f}ms -> "
            f"{k['native_ms']:>10.2f}ms  ({k['speedup']:>6.2f}x)  {k['config']}"
        )
    h = native_report["headline"]
    print(
        f"native headline gate: {len(h['kernels_at_2x'])}/{len(HEADLINE_KERNELS)} "
        f"kernels at >=2x {h['kernels_at_2x']}  gate_met={h['gate_met']}  "
        f"(extension: {'loaded' if native_report['native_available'] else 'absent'})"
    )
    nc = native_report["campaign"]
    print(
        f"native campaign: numpy {nc['numpy_s']}s -> native {nc['native_s']}s "
        f"({nc['speedup']}x)  bit_identical={nc['bit_identical']}"
    )
    ns = native_report["stream"]
    print(
        f"native stream:   numpy {ns['numpy_s']}s -> native {ns['native_s']}s "
        f"({ns['speedup']}x)  bit_identical={ns['bit_identical']}"
    )
    nt = native_report["threaded"]
    print(
        f"native threads:  serial {nt['native_serial_s']}s -> "
        f"{nt['threads']} threads {nt['native_threads_s']}s "
        f"({nt['native_thread_scaling']}x scaling; numpy tier "
        f"{nt['numpy_serial_s']}s -> {nt['numpy_threads_s']}s)"
    )
    print(f"wrote {args.native_out}")

    dag_report = build_dag_report(args.quick)
    args.dag_out.write_text(json.dumps(dag_report, indent=2) + "\n")
    d = dag_report["report_run"]
    print(
        f"dag report: {len(d['experiments'])} experiments as {d['n_nodes']} "
        f"nodes  sequential {d['sequential_s']}s -> dag cold {d['dag_cold_s']}s "
        f"-> warm replay {d['dag_warm_s']}s ({d['warm_replay_speedup']}x)  "
        f"bit_identical={d['bit_identical']}"
    )
    print(f"wrote {args.dag_out}")

    cluster_report = build_cluster_report(args.quick)
    args.cluster_out.write_text(json.dumps(cluster_report, indent=2) + "\n")
    s = cluster_report["scaling"]
    for r in s["runs"]:
        print(
            f"cluster: {r['workers']} worker(s)  {r['elapsed_s']}s "
            f"({r['speedup']}x vs serial {s['serial_s']}s)  "
            f"pulls={r['artifact_pulls']} ({r['pulled_bytes']} B)  "
            f"hit rate {r['cache_hit_rate']:.0%}  "
            f"bit_identical={r['bit_identical']}"
        )
    o = cluster_report["overhead"]
    print(
        f"cluster overhead: {o['n_shards']} empty shards  "
        f"{o['per_shard_roundtrip_ms']}ms round trip / "
        f"{o['per_shard_overhead_ms']}ms overhead per shard  "
        f"{o['wire_bytes_per_shard']} B on the wire  "
        f"(cpu_count={cluster_report['cpu_count']})"
    )
    if cluster_report["note"]:
        print(f"cluster note: {cluster_report['note']}")
    print(f"wrote {args.cluster_out}")

    strategies_report = build_strategies_report(args.quick)
    args.strategies_out.write_text(
        json.dumps(strategies_report, indent=2) + "\n"
    )
    g = strategies_report["psi_grid"]
    for row in g["rows"]:
        print(
            f"strategy grid: gamma={row['gamma']:<6}  "
            f"fixed {row['psi_fixed']:.4g}  "
            f"adaptive {row['psi_adaptive']:.4g}  "
            f"selective {row['psi_selective']:.4g}"
        )
    print(
        f"strategy grid: adaptive no worse at gamma="
        f"{g['operating_gamma']}: {g['adaptive_no_worse_at_operating_point']}"
    )
    sp = strategies_report["step_profile"]
    print(
        f"strategy step: fixed psi {sp['psi_fixed']:.4g} -> autotune "
        f"{sp['psi_autotune']:.4g} ({sp['improvement']}x) over "
        f"{sp['profile']} with {len(sp['lambda_trajectory'])} adjustment(s)"
    )
    ov = strategies_report["overhead"]
    print(
        f"strategy overhead: plain {ov['plain_s']}s -> autotune "
        f"{ov['autotune_s']}s ({ov['overhead_us_per_frame']}us/frame, "
        f"{ov['overhead_ratio']}x)"
    )
    print(f"wrote {args.strategies_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
