"""Machine-readable perf trajectory for the kernel and streaming work.

Times every vectorized hot-path kernel against the ``_reference_*``
oracle it replaced (the pre-vectorization implementation, kept in-tree
as the bit-identity witness) and writes the per-kernel before/after
numbers plus an end-to-end campaign throughput figure to
``BENCH_PR2.json``.  A second report, ``BENCH_PR3.json``, covers the
``repro.stream`` subsystem: frames/sec across transport chunk sizes
(with the Ψ value recorded per run — identical by the bit-identity
contract) and peak traced allocation of the streaming path versus the
batch pipeline, demonstrating the O(chunk + window) memory bound (the
streaming peak stays flat as the stream length doubles; the batch peak
scales with it).

Usage::

    PYTHONPATH=src python tools/bench_report.py            # full sizes
    PYTHONPATH=src python tools/bench_report.py --quick    # CI sizes

``--quick`` shrinks problem sizes and repeat counts so the reports run
in seconds; the committed JSON files are generated at full size.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.majority import (  # noqa: E402
    _reference_majority_vote_window,
    majority_vote_window,
)
from repro.baselines.median import (  # noqa: E402
    _reference_median_smooth_spatial,
    _reference_median_smooth_temporal,
    median_smooth_spatial,
    median_smooth_temporal,
)
from repro.baselines.smoothing import (  # noqa: E402
    _reference_weighted_window_smooth,
    _weighted_window_smooth,
)
from repro.config import NGSTDatasetConfig  # noqa: E402
from repro.core import bitops  # noqa: E402
from repro.core.voter import VoterMatrix, _reference_grt  # noqa: E402
from repro.data.ngst import generate_walk  # noqa: E402
from repro.faults.campaign import Campaign  # noqa: E402
from repro.faults.correlated import (  # noqa: E402
    _reference_correlated_flip_grid,
    correlated_flip_grid,
)
from repro.faults.uncorrelated import UncorrelatedFaultModel  # noqa: E402
from repro.metrics.relative_error import psi  # noqa: E402
from repro.otis.scan import (  # noqa: E402
    ScanConfig,
    _reference_cross_frame_preprocess,
    _reference_mosaic,
    cross_frame_preprocess,
    mosaic,
    scan_scene,
)
from repro.stream import (  # noqa: E402
    InjectStage,
    StreamPipeline,
    SyntheticWalkSource,
    VoterStage,
    run_batch,
)

SCHEMA_VERSION = 1

#: BENCH_PR3.json schema version (streaming report).
STREAM_SCHEMA_VERSION = 1

#: Keys every kernel entry must carry — mirrored by the schema smoke test.
KERNEL_KEYS = ("name", "config", "before_ms", "after_ms", "speedup")

#: Keys every streaming-throughput entry must carry.
STREAM_KEYS = ("chunk_frames", "frames_per_sec", "elapsed_s", "psi_algorithm")


def _time_once(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _entry(name, config, before_fn, after_fn, repeats):
    # Interleave the two sides so load drift on a shared machine hits
    # both equally; best-of-N discards the contended runs.
    before = float("inf")
    after = float("inf")
    for _ in range(repeats):
        before = min(before, _time_once(before_fn))
        after = min(after, _time_once(after_fn))
    before_ms = before * 1e3
    after_ms = after * 1e3
    return {
        "name": name,
        "config": config,
        "before_ms": round(before_ms, 4),
        "after_ms": round(after_ms, 4),
        "speedup": round(before_ms / after_ms, 3) if after_ms else float("inf"),
    }


def _bench_kernels(quick: bool) -> list[dict]:
    repeats = 3 if quick else 15
    entries = []

    # --- correlated fault grid -------------------------------------------
    side = 128 if quick else 512
    for gamma in (0.3,) if quick else (0.1, 0.3, 0.45):
        entries.append(
            _entry(
                "correlated_flip_grid",
                {"shape": [side, side], "gamma_ini": gamma},
                lambda g=gamma: _reference_correlated_flip_grid(
                    (side, side), g, np.random.default_rng(0)
                ),
                lambda g=gamma: correlated_flip_grid(
                    (side, side), g, np.random.default_rng(0)
                ),
                repeats,
            )
        )

    # --- voter combiners -------------------------------------------------
    n, hw = (16, 64) if quick else (32, 256)
    rng = np.random.default_rng(1)
    pixels = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    for upsilon in (4, 8):
        matrix = VoterMatrix(pixels, upsilon)
        voters = matrix.pruned(matrix.thresholds(0.75))
        entries.append(
            _entry(
                "voter_grt",
                {"upsilon": upsilon, "stack": [n, hw, hw]},
                lambda v=voters: _reference_grt(v),
                lambda v=voters: VoterMatrix.grt(v),
                repeats,
            )
        )

    # --- bit-plane transforms --------------------------------------------
    words = rng.integers(0, 2**16, size=(32, hw, hw), dtype=np.uint16)
    entries.append(
        _entry(
            "to_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops._reference_to_bit_planes(words),
            lambda: bitops.to_bit_planes(words),
            repeats,
        )
    )
    planes = bitops.to_bit_planes(words)
    entries.append(
        _entry(
            "from_bit_planes",
            {"shape": list(words.shape), "dtype": "uint16"},
            lambda: bitops._reference_from_bit_planes(planes, np.uint16),
            lambda: bitops.from_bit_planes(planes, np.uint16),
            repeats,
        )
    )
    values = rng.integers(0, 2**16, size=hw * hw, dtype=np.uint64)
    entries.append(
        _entry(
            "ceil_pow2",
            {"n_values": int(values.size)},
            lambda: bitops._reference_ceil_pow2(values),
            lambda: bitops.ceil_pow2(values),
            repeats,
        )
    )

    # --- sliding-window baselines ----------------------------------------
    stack = rng.integers(0, 2**16, size=(n, hw, hw), dtype=np.uint16)
    entries.append(
        _entry(
            "median_smooth_temporal",
            {"stack": [n, hw, hw], "window": 3},
            lambda: _reference_median_smooth_temporal(stack),
            lambda: median_smooth_temporal(stack),
            repeats,
        )
    )
    field = rng.integers(0, 2**16, size=(hw * 2, hw * 2), dtype=np.uint16)
    entries.append(
        _entry(
            "median_smooth_spatial",
            {"field": list(field.shape), "window": 3},
            lambda: _reference_median_smooth_spatial(field),
            lambda: median_smooth_spatial(field),
            repeats,
        )
    )
    entries.append(
        _entry(
            "majority_vote_window",
            {"stack": [n, hw, hw], "window": 5},
            lambda: _reference_majority_vote_window(stack, 5),
            lambda: majority_vote_window(stack, 5),
            repeats,
        )
    )
    weights = np.exp(-np.abs(np.arange(-2, 3)) / 1.0)
    entries.append(
        _entry(
            "weighted_window_smooth",
            {"stack": [n, hw, hw], "window": 5},
            lambda: _reference_weighted_window_smooth(stack, weights),
            lambda: _weighted_window_smooth(stack, weights),
            repeats,
        )
    )

    # --- overlapping-swath scan ------------------------------------------
    scan_cfg = ScanConfig(frame_rows=32, frame_cols=hw, step_rows=8)
    scene_rows = 256 if quick else 1024
    scene = rng.integers(0, 2**16, size=(scene_rows, hw), dtype=np.uint16)
    frames = scan_scene(scene, scan_cfg)
    entries.append(
        _entry(
            "cross_frame_preprocess",
            {"n_frames": len(frames), "frame": [32, hw]},
            lambda: _reference_cross_frame_preprocess(frames, scan_cfg),
            lambda: cross_frame_preprocess(frames, scan_cfg),
            max(2, repeats // 3),
        )
    )
    entries.append(
        _entry(
            "mosaic",
            {"n_frames": len(frames), "frame": [32, hw]},
            lambda: _reference_mosaic(frames, scan_cfg),
            lambda: mosaic(frames, scan_cfg),
            max(2, repeats // 3),
        )
    )
    return entries


def _bench_campaign(quick: bool) -> dict:
    """End-to-end throughput of the generate → corrupt → smooth → ψ loop."""
    n_trials = 4 if quick else 16
    side = 32 if quick else 64
    campaign = Campaign(
        generate=lambda rng: generate_walk(
            NGSTDatasetConfig(n_variants=16, sigma=25.0), rng, (side, side)
        ),
        fault_model=UncorrelatedFaultModel(0.01),
        metric=psi,
        preprocess=median_smooth_temporal,
    )
    t0 = time.perf_counter()
    summary = campaign.run(n_trials, seed=7)
    elapsed = time.perf_counter() - t0
    return {
        "n_trials": n_trials,
        "dataset": [16, side, side],
        "elapsed_s": round(elapsed, 4),
        "trials_per_s": round(n_trials / elapsed, 3) if elapsed else float("inf"),
        "mean_psi": summary.mean,
    }


def _stream_pipeline(n_frames, coord, chunk, stack_frames=32):
    source = SyntheticWalkSource(shape=coord, seed=3, n_frames=n_frames)
    stages = [
        InjectStage(UncorrelatedFaultModel(0.01), seed=5),
        VoterStage(stack_frames=stack_frames),
    ]
    return source, stages, StreamPipeline(
        source, stages, chunk_frames=chunk
    )


def _bench_stream_throughput(quick: bool) -> list[dict]:
    """Frames/sec per transport chunk size; Ψ recorded to witness identity."""
    n_frames = 1024 if quick else 8192
    coord = (64,)
    chunks = (1, 16, 64, 256) if quick else (1, 16, 64, 256, 1024, 8192)
    entries = []
    for chunk in chunks:
        _, _, pipeline = _stream_pipeline(n_frames, coord, chunk)
        t0 = time.perf_counter()
        result = pipeline.run()
        elapsed = time.perf_counter() - t0
        entries.append(
            {
                "chunk_frames": chunk,
                "n_frames": n_frames,
                "coord_shape": list(coord),
                "frames_per_sec": round(n_frames / elapsed, 2) if elapsed else 0.0,
                "elapsed_s": round(elapsed, 4),
                # Identical across every chunk size by the bit-identity
                # contract; recorded unrounded so drift would be visible.
                "psi_algorithm": result.psi_algorithm,
            }
        )
    return entries


def _traced_peak(fn) -> int:
    """Peak traced allocation (bytes) while running *fn*.

    numpy registers its buffer allocator with ``tracemalloc``, so this
    captures array storage — the footprint that matters here — without
    the noise of whole-process RSS.
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return int(peak)


def _bench_stream_memory(quick: bool) -> dict:
    """Streaming vs batch peak memory on the same workload.

    Two facts demonstrate the O(chunk + window) bound: the streaming
    peak is far below the batch peak at equal stream length, and it
    stays flat when the stream length doubles (the batch peak doubles).
    """
    coord = (64,)
    chunk = 64
    n_small = 2048 if quick else 16384
    n_large = 2 * n_small

    stream_peaks = []
    for n_frames in (n_small, n_large):
        _, _, pipeline = _stream_pipeline(n_frames, coord, chunk)
        stream_peaks.append(
            {
                "n_frames": n_frames,
                "peak_bytes": _traced_peak(pipeline.run),
            }
        )

    def batch():
        source, stages, _ = _stream_pipeline(n_large, coord, chunk)
        run_batch(source, stages)

    batch_peak = _traced_peak(batch)
    total_lag = sum(s.lag for s in _stream_pipeline(n_small, coord, chunk)[1])
    return {
        "coord_shape": list(coord),
        "frame_bytes": int(np.prod(coord)) * 2,  # uint16 frames
        "chunk_frames": chunk,
        "total_stage_lag": total_lag,
        "stream": stream_peaks,
        "batch": {"n_frames": n_large, "peak_bytes": batch_peak},
        # ~1.0 when the bound holds (peak independent of stream length).
        "stream_growth_ratio": round(
            stream_peaks[1]["peak_bytes"] / stream_peaks[0]["peak_bytes"], 3
        ),
        "stream_to_batch_ratio": round(
            stream_peaks[1]["peak_bytes"] / batch_peak, 4
        ),
    }


def build_stream_report(quick: bool) -> dict:
    return {
        "schema_version": STREAM_SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "throughput": _bench_stream_throughput(quick),
        "memory": _bench_stream_memory(quick),
    }


def build_report(quick: bool) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "tools/bench_report.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": _bench_kernels(quick),
        "campaign": _bench_campaign(quick),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small problem sizes and repeat counts (CI mode)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR2.json",
        help="kernel report path (default: repo-root BENCH_PR2.json)",
    )
    parser.add_argument(
        "--stream-out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR3.json",
        help="streaming report path (default: repo-root BENCH_PR3.json)",
    )
    args = parser.parse_args(argv)
    report = build_report(args.quick)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    width = max(len(k["name"]) for k in report["kernels"])
    for k in report["kernels"]:
        print(
            f"{k['name']:<{width}}  {k['before_ms']:>10.2f}ms -> "
            f"{k['after_ms']:>10.2f}ms  ({k['speedup']:>6.2f}x)  {k['config']}"
        )
    c = report["campaign"]
    print(f"campaign: {c['n_trials']} trials in {c['elapsed_s']}s "
          f"({c['trials_per_s']} trials/s)")
    print(f"wrote {args.out}")

    stream_report = build_stream_report(args.quick)
    args.stream_out.write_text(json.dumps(stream_report, indent=2) + "\n")
    for t in stream_report["throughput"]:
        print(
            f"stream: chunk={t['chunk_frames']:<5}  "
            f"{t['frames_per_sec']:>10.1f} frames/s  "
            f"psi={t['psi_algorithm']:.6g}"
        )
    m = stream_report["memory"]
    print(
        f"stream memory: peak {m['stream'][-1]['peak_bytes'] / 1e6:.2f} MB vs "
        f"batch {m['batch']['peak_bytes'] / 1e6:.2f} MB "
        f"(growth ratio {m['stream_growth_ratio']}x when the stream doubles)"
    )
    print(f"wrote {args.stream_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
