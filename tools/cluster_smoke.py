"""CI smoke test for the cluster backend: kill a worker mid-report.

Spawns three real ``repro worker`` subprocesses on loopback ports,
runs the quick fig2 report DAG over them through ``ClusterBackend``,
SIGKILLs one worker while shards are in flight, and byte-compares the
resulting panels against a serial in-process run.  Exercises the whole
stack end to end — the worker CLI, the TCP protocol, by-value function
shipping, content-addressed artifact pulls, heartbeat-timeout
detection, and shard re-dispatch — with zero mocks.

Exit code 0 only if the interrupted cluster run is byte-identical to
serial.  Usage::

    PYTHONPATH=src python tools/cluster_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
sys.path.insert(0, str(SRC_ROOT))

from repro.cache.store import ArtifactCache  # noqa: E402
from repro.cluster import ClusterBackend  # noqa: E402
from repro.dag.build import json_payload  # noqa: E402
from repro.dag.report import PANELS_NODE, build_report_graph  # noqa: E402
from repro.dag.scheduler import DagScheduler  # noqa: E402

N_WORKERS = 3


def _spawn_worker(cache_dir: str) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start one ``repro worker`` subprocess and read its bound address."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--port",
            "0",
            "--cache-dir",
            cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    line = (proc.stdout.readline() or "").strip()
    if not line or proc.poll() is not None:
        proc.kill()
        raise RuntimeError("worker subprocess failed to report an address")
    host, _, port = line.rpartition(":")
    return proc, (host, int(port))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.parse_args(argv)

    experiments = ["fig2"]
    print(f"serial reference: {experiments} (quick)")
    start = time.perf_counter()
    reference = json_payload(
        DagScheduler(cache=ArtifactCache()).run(
            build_report_graph(experiments, quick=True),
            targets=(PANELS_NODE,),
        )[PANELS_NODE]
    )
    print(f"serial reference done in {time.perf_counter() - start:.2f}s")

    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as base:
        procs: list[subprocess.Popen] = []
        addresses: list[tuple[str, int]] = []
        try:
            for i in range(N_WORKERS):
                proc, address = _spawn_worker(str(Path(base) / f"worker-{i}"))
                procs.append(proc)
                addresses.append(address)
                print(f"worker {i}: pid={proc.pid} at {address[0]}:{address[1]}")

            backend = ClusterBackend(
                addresses,
                heartbeat_interval_s=0.2,
                heartbeat_timeout_s=2.0,
            )
            victim_label = f"{addresses[0][0]}:{addresses[0][1]}"
            killed_mid_run = threading.Event()
            run_done = threading.Event()

            def _kill_after_first_shard() -> None:
                # SIGKILL worker 0 the moment it has completed a shard —
                # deterministically mid-run, however fast the box is.
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and not run_done.is_set():
                    worker = backend.stats().get(victim_label)
                    if worker is not None and worker.shards >= 1:
                        procs[0].send_signal(signal.SIGKILL)
                        if not run_done.is_set():
                            killed_mid_run.set()
                        return
                    time.sleep(0.002)

            killer = threading.Thread(target=_kill_after_first_shard)
            killer.start()
            scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
            start = time.perf_counter()
            panels = json_payload(
                scheduler.run(
                    build_report_graph(experiments, quick=True),
                    targets=(PANELS_NODE,),
                )[PANELS_NODE]
            )
            elapsed = time.perf_counter() - start
            run_done.set()
            killer.join(timeout=35)
            stats = backend.stats()
            backend.close()
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait(timeout=10)

    killed = killed_mid_run.is_set()
    redispatches = sum(w.redispatches for w in stats.values())
    for label, w in sorted(stats.items()):
        print(
            f"  {label}: {w.shards} shard(s), {w.artifact_pulls} pull(s), "
            f"{w.redispatches} re-dispatch(es)"
        )
    print(
        f"cluster run over {N_WORKERS} workers done in {elapsed:.2f}s "
        f"(worker 0 SIGKILLed: {killed}, re-dispatches: {redispatches})"
    )
    if not killed:
        # The run outpaced the timer — the byte-compare below still
        # gates, but the kill path was not exercised this time.
        print("warning: run finished before the kill landed", file=sys.stderr)

    identical = json.dumps(panels, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    )
    print(f"bit_identical={identical}")
    if not identical:
        print("FAIL: cluster panels differ from serial", file=sys.stderr)
        return 1
    print("OK: interrupted cluster report is byte-identical to serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
