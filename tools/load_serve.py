"""Load-test harness for ``repro.serve`` — emits ``BENCH_PR6.json``.

Two phases against an in-process :class:`~repro.serve.ReproServer`:

* **throughput** — hundreds of concurrent synthetic Eq. (1) streams
  (each client a real TCP connection speaking the NDJSON ingest
  protocol) through a non-durable tenant, recording aggregate
  frames/sec and the pooled per-message round-trip latency
  distribution (p50/p99/mean).  A sample of streams is checked
  byte-for-byte against the batch oracle
  (:func:`repro.stream.run_batch`).
* **churn** — durable streams under a chaos monkey that abruptly kills
  connections mid-message, plus one mid-load graceful drain followed
  by a server restart on the same port and checkpoint directory.
  Every stream must finish **byte-identical** to the batch oracle with
  an exactly equal Ψ — the serve layer's resume contract, witnessed
  under fire.

Usage::

    PYTHONPATH=src python tools/load_serve.py            # full sizes
    PYTHONPATH=src python tools/load_serve.py --quick    # CI sizes

``--quick`` shrinks stream counts and lengths so the run finishes in
seconds; the committed ``BENCH_PR6.json`` is generated at full size
(>= 500 concurrent streams in the throughput phase).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import (  # noqa: E402
    ReproServer,
    ServerConfig,
    StreamClient,
    TenantConfig,
)
from repro.stream import (  # noqa: E402
    ArraySource,
    SyntheticWalkSource,
    read_all,
    run_batch,
)

#: Schema of BENCH_PR6.json; tests/test_bench_report.py gates on it.
SERVE_SCHEMA_VERSION = 1

#: Required keys of the ``throughput`` section.
THROUGHPUT_KEYS = (
    "streams",
    "frames_per_stream",
    "total_frames",
    "elapsed_s",
    "frames_per_sec",
    "p50_ms",
    "p99_ms",
    "mean_ms",
    "messages",
    "oracle_streams",
    "bit_identical",
)

#: Required keys of the ``churn`` section.
CHURN_KEYS = (
    "streams",
    "frames_per_stream",
    "chaos_kills",
    "reconnects",
    "drains",
    "restarts",
    "bit_identical",
    "psi_exact",
)


def _raise_fd_limit() -> None:
    """Hundreds of concurrent TCP streams need more than 1024 fds."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    target = min(hard, 8192) if hard > 0 else 8192
    if soft < target:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
        except (OSError, ValueError):  # pragma: no cover - restricted env
            pass


def _walk_stack(shape: tuple[int, ...], seed: int, n_frames: int) -> np.ndarray:
    """One synthetic Eq. (1) random-walk frame stack."""
    return read_all(SyntheticWalkSource(shape, seed=seed, n_frames=n_frames))


def _latency_stats(latencies_s: list[float]) -> tuple[float, float, float]:
    """Pooled per-message round-trip (p50, p99, mean) in milliseconds."""
    pooled = np.asarray(latencies_s, dtype=np.float64) * 1e3
    return (
        float(np.percentile(pooled, 50)),
        float(np.percentile(pooled, 99)),
        float(pooled.mean()),
    )


def _oracle_matches(
    tenant: TenantConfig, frames: np.ndarray, outputs: np.ndarray, psi: float
) -> bool:
    """Does a served stream match the batch pipeline bit-for-bit?"""
    oracle = run_batch(ArraySource(frames), tenant.build_stages())
    return (
        outputs.shape == oracle.output.shape
        and outputs.tobytes() == oracle.output.tobytes()
        and psi == oracle.psi_algorithm
    )


async def _throughput_phase(quick: bool, streams: "int | None") -> dict:
    """Many concurrent streams through one server; measure the envelope."""
    n_streams = streams if streams else (24 if quick else 500)
    n_frames = 64 if quick else 128
    shape = (8, 8)
    tenant = TenantConfig(
        name="load",
        gamma=0.01,
        inject_seed=7,
        upsilon=4,
        stack_frames=8,
        chunk_frames=32,
        durable=False,
    )
    with tempfile.TemporaryDirectory(prefix="repro-serve-load-") as tmp:
        server = ReproServer(ServerConfig(checkpoint_dir=tmp, jobs=4 if quick else 8))
        server.registry.put(tenant)
        await server.start()
        stacks = [
            _walk_stack(shape, seed=1000 + i, n_frames=n_frames)
            for i in range(n_streams)
        ]
        clients = [
            StreamClient(
                "127.0.0.1",
                server.ingest_port,
                tenant.name,
                f"s{i:04d}",
                stacks[i],
                batch_frames=32,
                max_attempts=200,
                retry_delay_s=0.05,
            )
            for i in range(n_streams)
        ]
        t0 = time.perf_counter()
        results = await asyncio.gather(*(c.run() for c in clients))
        elapsed = time.perf_counter() - t0
        messages = server.metrics.counter("messages")
        await server.drain()
        await server.stop()
    sample = sorted({0, 1, n_streams // 2, n_streams - 1})
    bit_identical = all(
        _oracle_matches(
            tenant, stacks[i], results[i].outputs, results[i].result["psi_algorithm"]
        )
        for i in sample
    )
    p50, p99, mean = _latency_stats(
        [t for r in results for t in r.latencies_s]
    )
    total_frames = n_streams * n_frames
    return {
        "streams": n_streams,
        "frames_per_stream": n_frames,
        "total_frames": total_frames,
        "elapsed_s": round(elapsed, 4),
        "frames_per_sec": round(total_frames / elapsed, 1),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "mean_ms": round(mean, 3),
        "messages": messages,
        "oracle_streams": len(sample),
        "bit_identical": bit_identical,
    }


async def _churn_phase(quick: bool) -> dict:
    """Chaos kills plus a mid-load drain/restart; every stream must resume."""
    n_streams = 12 if quick else 48
    n_frames = 96 if quick else 160
    batch_frames = 8
    shape = (6, 6)
    tenant = TenantConfig(
        name="churn",
        gamma=0.02,
        inject_seed=3,
        upsilon=4,
        stack_frames=8,
        smoother="median",
        window=5,
        chunk_frames=16,
        durable=True,
    )
    chaos_rate = 0.12
    with tempfile.TemporaryDirectory(prefix="repro-serve-churn-") as tmp:
        server = ReproServer(
            ServerConfig(
                checkpoint_dir=tmp,
                jobs=4,
                chaos_kill_rate=chaos_rate,
                chaos_seed=1234,
            )
        )
        server.registry.put(tenant)
        await server.start()
        ingest_port = server.ingest_port
        stacks = [
            _walk_stack(shape, seed=2000 + i, n_frames=n_frames)
            for i in range(n_streams)
        ]
        tasks = [
            asyncio.ensure_future(
                StreamClient(
                    "127.0.0.1",
                    ingest_port,
                    tenant.name,
                    f"c{i:03d}",
                    stacks[i],
                    batch_frames=batch_frames,
                    max_attempts=400,
                    retry_delay_s=0.05,
                ).run()
            )
            for i in range(n_streams)
        ]
        # Drain once a tenth of the expected messages have landed — far
        # from completion, so the drain provably interrupts live streams.
        threshold = max(
            2, (n_streams * math.ceil(n_frames / batch_frames)) // 10
        )
        while server.metrics.counter("messages") < threshold:
            await asyncio.sleep(0.005)
        await server.drain()
        await server.stop()
        kills = server.chaos.kills
        # Restart on the same ingest port and checkpoint directory: the
        # retrying clients find the new server and resume where the
        # drained one checkpointed them.
        restarted = ReproServer(
            ServerConfig(
                checkpoint_dir=tmp,
                ingest_port=ingest_port,
                jobs=4,
                chaos_kill_rate=chaos_rate,
                chaos_seed=4321,
            )
        )
        await restarted.start()
        results = await asyncio.gather(*tasks)
        kills += restarted.chaos.kills
        await restarted.drain()
        await restarted.stop()
    oracles = [
        run_batch(ArraySource(stacks[i]), tenant.build_stages())
        for i in range(n_streams)
    ]
    bit_identical = all(
        results[i].outputs.shape == oracles[i].output.shape
        and results[i].outputs.tobytes() == oracles[i].output.tobytes()
        for i in range(n_streams)
    )
    psi_exact = all(
        results[i].result["psi_algorithm"] == oracles[i].psi_algorithm
        for i in range(n_streams)
    )
    return {
        "streams": n_streams,
        "frames_per_stream": n_frames,
        "chaos_kills": kills,
        "reconnects": sum(r.reconnects for r in results),
        "drains": sum(r.drained for r in results),
        "restarts": 1,
        "bit_identical": bit_identical,
        "psi_exact": psi_exact,
    }


def build_serve_report(quick: bool, streams: "int | None" = None) -> dict:
    """Run both phases and assemble the BENCH_PR6 payload."""
    _raise_fd_limit()
    throughput = asyncio.run(_throughput_phase(quick, streams))
    churn = asyncio.run(_churn_phase(quick))
    return {
        "schema_version": SERVE_SCHEMA_VERSION,
        "generated_by": "tools/load_serve.py" + (" --quick" if quick else ""),
        "quick": quick,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "throughput": throughput,
        "churn": churn,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small stream counts and lengths (CI mode)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=None,
        help="override the throughput phase's concurrent stream count",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_PR6.json",
        help="report path (default: repo-root BENCH_PR6.json)",
    )
    args = parser.parse_args(argv)
    report = build_serve_report(args.quick, args.streams)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    t = report["throughput"]
    print(
        f"throughput: {t['streams']} streams x {t['frames_per_stream']} frames "
        f"in {t['elapsed_s']}s  ({t['frames_per_sec']} frames/s)  "
        f"p50={t['p50_ms']}ms p99={t['p99_ms']}ms  "
        f"oracle bit-identical={t['bit_identical']}"
    )
    c = report["churn"]
    print(
        f"churn: {c['streams']} streams, {c['chaos_kills']} chaos kills, "
        f"{c['reconnects']} reconnects, {c['drains']} drains, "
        f"{c['restarts']} restart  bit-identical={c['bit_identical']} "
        f"psi-exact={c['psi_exact']}"
    )
    print(f"wrote {args.out}")
    if not (t["bit_identical"] and c["bit_identical"] and c["psi_exact"]):
        print("BIT-IDENTITY FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
