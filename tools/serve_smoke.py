"""End-to-end smoke of the ``repro serve`` CLI — the CI serve job.

Drives the *real* CLI entry point as a subprocess (not an in-process
server), so the printed-port contract, the signal-free drain path, and
the restart-resume story are all exercised the way an operator sees
them:

1. start ``repro serve`` and parse its ``repro-serve listening`` line;
2. register a tenant over ``PUT /tenants/<name>`` and check
   ``GET /healthz`` and the Prometheus ``GET /metrics`` exposition;
3. stream frames with :class:`repro.serve.StreamClient`, and — after
   the first ack — ``POST /drain`` so the server checkpoints and exits
   mid-stream;
4. restart the server on the same port and checkpoint directory; the
   still-retrying client resumes and finishes;
5. assert the collected output and Ψ are byte-identical to the batch
   oracle, i.e. the kill changed nothing.

Exits non-zero on any failed check.  Runs in a few seconds::

    PYTHONPATH=src python tools/serve_smoke.py

``--repeat-chaos N`` additionally runs the two chaos kill/resume tests
(``TestChaosResume`` and ``TestDrainRestart`` in
``tests/serve/test_server.py``) N times in a row — the deflake loop CI
uses to prove the pinned chaos seeds make those tests deterministic,
not merely lucky.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import StreamClient, TenantConfig  # noqa: E402
from repro.stream import ArraySource, SyntheticWalkSource, read_all, run_batch  # noqa: E402

_LISTENING = re.compile(
    r"repro-serve listening ingest=(\S+):(\d+) control=(\S+):(\d+)"
)


def _free_port() -> int:
    """A port the OS just handed out (small race, fine for a smoke)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(ingest_port: int, control_port: int, checkpoint_dir: str):
    """Launch ``repro serve`` and wait for its listening line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(ingest_port),
            "--control-port",
            str(control_port),
            "--checkpoint-dir",
            checkpoint_dir,
            "--jobs",
            "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    match = _LISTENING.match(line.strip())
    if not match:
        proc.kill()
        raise SystemExit(f"bad listening line: {line!r}")
    return proc


def _http(method: str, url: str, body: "dict | None" = None):
    """One control-plane request; returns (status, parsed-or-text body)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        raw = response.read().decode()
        status = response.status
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw


async def _drain_after_first_ack(control_url: str) -> None:
    """POST /drain as soon as the server has processed one message."""
    while True:
        _, snapshot = await asyncio.to_thread(
            _http, "GET", control_url + "/metrics.json"
        )
        if snapshot["counters"]["messages"] >= 1:
            break
        await asyncio.sleep(0.02)
    status, payload = await asyncio.to_thread(
        _http, "POST", control_url + "/drain"
    )
    assert status == 202 and payload["draining"] is True, payload


async def _smoke() -> int:
    tenant = TenantConfig(
        name="smoke",
        gamma=0.02,
        inject_seed=5,
        upsilon=4,
        stack_frames=8,
        smoother="median",
        window=5,
        chunk_frames=16,
        durable=True,
    )
    frames = read_all(SyntheticWalkSource((6, 6), seed=42, n_frames=128))
    ingest_port, control_port = _free_port(), _free_port()
    control_url = f"http://127.0.0.1:{control_port}"
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        proc = _start_server(ingest_port, control_port, tmp)
        try:
            status, health = _http("GET", control_url + "/healthz")
            assert status == 200 and health["status"] == "ok", health
            status, echoed = _http(
                "PUT", control_url + "/tenants/smoke", tenant.to_dict()
            )
            assert status == 200 and echoed["name"] == "smoke", echoed
            status, exposition = _http("GET", control_url + "/metrics")
            assert status == 200, status
            assert "repro_serve_messages_total" in exposition, exposition[:200]

            client = StreamClient(
                "127.0.0.1",
                ingest_port,
                "smoke",
                "s1",
                frames,
                batch_frames=8,
                max_attempts=200,
                retry_delay_s=0.05,
            )
            run = asyncio.ensure_future(client.run())
            await _drain_after_first_ack(control_url)
            assert proc.wait(timeout=30) == 0, "server exit code after drain"

            # Same port, same checkpoint dir: the retrying client resumes.
            proc = _start_server(ingest_port, control_port, tmp)
            result = await run
        finally:
            proc.kill()
            proc.wait(timeout=10)

    oracle = run_batch(ArraySource(frames), tenant.build_stages())
    assert result.outputs.tobytes() == oracle.output.tobytes(), "output diverged"
    assert result.result["psi_algorithm"] == oracle.psi_algorithm, "psi diverged"
    assert result.drained + result.reconnects >= 1, "drain never interrupted"
    print(
        f"serve smoke OK: {frames.shape[0]} frames, "
        f"{result.drained} drain notice(s), {result.reconnects} reconnect(s), "
        f"psi={result.result['psi_algorithm']:.6g} — byte-identical resume"
    )
    return 0


#: The two kill/resume tests the --repeat-chaos deflake loop re-runs.
CHAOS_TESTS = (
    "tests/serve/test_server.py::TestChaosResume::"
    "test_kills_do_not_change_a_single_byte",
    "tests/serve/test_server.py::TestDrainRestart::"
    "test_mid_stream_drain_then_restart_resumes",
)


def _repeat_chaos(repeats: int) -> int:
    """Run the chaos kill/resume tests *repeats* times; 0 on all-green.

    Each iteration is a fresh pytest process (fresh event loop, fresh
    tmp dirs, fresh sockets), so a pass N times in a row means the
    pinned chaos/drain schedules are deterministic under process-level
    variation — the property the seed pins exist to guarantee.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    for iteration in range(1, repeats + 1):
        code = subprocess.call(
            [sys.executable, "-m", "pytest", "-q", *CHAOS_TESTS],
            cwd=REPO_ROOT,
            env=env,
        )
        if code != 0:
            print(
                f"chaos deflake loop FAILED on iteration "
                f"{iteration}/{repeats}",
                file=sys.stderr,
            )
            return 1
        print(f"chaos deflake iteration {iteration}/{repeats} OK")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeat-chaos",
        type=int,
        default=0,
        metavar="N",
        help="after the smoke, re-run the two chaos kill/resume tests "
        "N times (deflake loop; default 0 = skip)",
    )
    args = parser.parse_args(argv)
    code = asyncio.run(_smoke())
    if code == 0 and args.repeat_chaos > 0:
        code = _repeat_chaos(args.repeat_chaos)
    return code


if __name__ == "__main__":
    sys.exit(main())
