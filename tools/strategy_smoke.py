"""End-to-end smoke of the adaptive strategy arms — the CI adaptive job.

Runs a figure-2 campaign carrying the ``adaptive`` and ``selective``
arms twice — once serially, once sharded over a loopback
:class:`repro.cluster.LocalCluster` with real forked workers and the
real TCP protocol — and asserts the two table artifacts are
byte-identical as canonical JSON.  This is the distributed half of the
strategy-equivalence contract: the incoherence-scored voter must not
care where its stacks are computed.

Also drives the real ``repro fig2 --quick --strategy adaptive`` CLI as
a subprocess and checks the adaptive arm column lands in the emitted
table, so the operator-facing flag path stays wired.

Exits non-zero on any failed check.  Runs in well under a minute::

    PYTHONPATH=src python tools/strategy_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cache import ArtifactCache  # noqa: E402
from repro.cluster import LocalCluster  # noqa: E402
from repro.dag.build import json_payload  # noqa: E402
from repro.dag.scheduler import DagScheduler  # noqa: E402
from repro.experiments import figure2  # noqa: E402

STRATEGIES = ("adaptive", "selective")


def _fig2_table(backend=None) -> str:
    graph = figure2.graph(
        gamma0_grid=(0.001, 0.05),
        lambdas=(50.0,),
        shape=(8, 8),
        n_repeats=2,
        strategies=STRATEGIES,
    )
    scheduler = DagScheduler(cache=ArtifactCache(), backend=backend)
    panels = json_payload(
        scheduler.run(graph, targets=(figure2.TABLE_NODE,))[figure2.TABLE_NODE]
    )
    return json.dumps(panels, sort_keys=True)


def _cluster_vs_serial() -> None:
    serial = _fig2_table()
    for strategy in STRATEGIES:
        assert f"Algo_NGST {strategy} L=50" in serial, (
            f"{strategy} arm missing from the serial table"
        )
    with LocalCluster(n_workers=2) as cluster:
        backend = cluster.backend(
            heartbeat_interval_s=0.2, heartbeat_timeout_s=10.0
        )
        try:
            clustered = _fig2_table(backend)
        finally:
            backend.close()
    assert clustered == serial, "cluster table diverged from serial"
    print(
        f"strategy smoke: serial == 2-worker cluster "
        f"({len(serial)} canonical-JSON bytes, arms: {', '.join(STRATEGIES)})"
    )


def _cli_flag_path() -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    with tempfile.TemporaryDirectory(prefix="repro-strategy-smoke-") as tmp:
        out = Path(tmp) / "fig2.json"
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "fig2", "--quick",
                "--strategy", "adaptive", "--json", str(out),
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        blob = out.read_text()
    assert "Algo_NGST adaptive L=50" in blob, (
        "adaptive arm missing from the CLI fig2 output"
    )
    print("strategy smoke: `repro fig2 --quick --strategy adaptive` OK")


def main() -> int:
    _cluster_vs_serial()
    _cli_flag_path()
    return 0


if __name__ == "__main__":
    sys.exit(main())
